//! Integration test of the §5 case study: the full optimization pipeline on
//! the CLOUDSC proxy is semantics-preserving and at least as fast as the
//! hand-tuned structure under the machine model.

use machine::interp::run_seeded;
use machine::CostModel;
use normalize::Normalizer;
use polybench::cloudsc::{full_model, CloudscSizes, CloudscVariant};
use transforms::fuse_producer_consumers;

#[test]
fn daisy_pipeline_on_cloudsc_is_equivalent_and_not_slower() {
    let mini = CloudscSizes::mini();
    let fortran = full_model(CloudscVariant::Fortran, mini);
    let dace = full_model(CloudscVariant::Dace, mini);
    let daisy_prog = fuse_producer_consumers(&Normalizer::new().run(&dace).unwrap().program);
    assert!(daisy_prog.validate().is_ok());

    // Semantics: the optimized pipeline computes the same physics.
    let reference = run_seeded(&fortran).unwrap();
    let optimized = run_seeded(&daisy_prog).unwrap();
    for array in ["ZTP1", "ZQSMIX", "PLUDE", "PFPLSL"] {
        let diff = reference.max_abs_diff(&optimized, array).unwrap();
        assert!(diff < 1e-9, "array {array} differs by {diff}");
    }

    // Performance shape at the paper's sizes: daisy beats the DaCe structure
    // it started from and is at least competitive with Fortran.
    let paper = CloudscSizes::paper();
    let fortran_large = full_model(CloudscVariant::Fortran, paper);
    let dace_large = full_model(CloudscVariant::Dace, paper);
    let daisy_large = fuse_producer_consumers(&Normalizer::new().run(&dace_large).unwrap().program);
    let model = CostModel::sequential();
    let t_fortran = model.estimate(&fortran_large).seconds;
    let t_dace = model.estimate(&dace_large).seconds;
    let t_daisy = model.estimate(&daisy_large).seconds;
    assert!(
        t_daisy < t_dace,
        "daisy {t_daisy} should beat DaCe {t_dace}"
    );
    assert!(
        t_daisy <= t_fortran * 1.05,
        "daisy {t_daisy} should be competitive with Fortran {t_fortran}"
    );
}
