//! Differential coverage of the block-sharded parallel cache simulation.
//!
//! [`machine::simulate_cache_sharded`] cuts a compiled program's trace into
//! shards (one per block-loop trip, or contiguous run-group windows for
//! non-blocked programs), streams each shard through its own cold
//! [`machine::CacheHierarchy`] replica on a worker pool and merges the
//! counters by shard index. This suite pins the two halves of the
//! determinism contract on random programs:
//!
//! * **worker invariance** — the merged [`machine::ShardedCacheStats`] is
//!   *bit-identical* at worker counts 1, 3 and 8 (the plan is a pure
//!   function of the program, never of the worker count);
//! * **per-shard run compression** — accesses and per-level counters match
//!   the sequential per-access oracle
//!   ([`machine::simulate_cache_sharded_per_access`]) on the same plan,
//!   including ragged and clamped-past-the-end cuts. `probes` is excluded:
//!   run compression probes once per distinct line, the oracle once per
//!   access (the same exclusion `cache_differential` makes).
//!
//! A single all-covering shard must degenerate to exactly the monolithic
//! [`machine::simulate_cache`], and zero-trip block loops to an empty plan
//! with all-zero counters.

use loop_ir::parser::parse_program;
use loop_ir::program::Program;
use machine::{
    simulate_cache, simulate_cache_per_access, simulate_cache_sharded,
    simulate_cache_sharded_per_access, simulate_cache_sharded_with_plan, CompiledProgram,
    MachineConfig, ShardGranularity, ShardPlan, ShardedCacheStats,
};
use proptest::{prop_assert_eq, proptest, ProptestConfig, Strategy};

/// A blocked nest: `NB` trips of a top-level block loop, each reading and
/// writing its own `N`-element rows of `A`/`B` plus a vector `C` shared by
/// every block — deliberately *not* block-disjoint, so the contract is
/// checked on programs where stale lines from earlier blocks could matter.
/// `shape` picks the `B` subscript (unit, reversed, invariant) and whether
/// the body carries a cross-block reduction into `C`.
fn blocked_program(nb: i64, n: i64, shape: u8) -> Program {
    let b_subscript = match shape % 3 {
        0 => "b * N + i",
        1 => "b * N + (N - 1 - i)",
        _ => "b * N",
    };
    let extra = if shape >= 3 {
        "C[i] = C[i] + A[b * N + i];"
    } else {
        ""
    };
    parse_program(&format!(
        "program sharddiff {{
           param NB = {nb}; param N = {n};
           array A[NB * N]; array B[NB * N]; array C[N];
           for b in 0..NB {{
             for i in 0..N {{
               A[b * N + i] = B[{b_subscript}] * 0.5 + C[i];
               {extra}
             }}
           }}
         }}"
    ))
    .expect("generated blocked nest parses")
}

/// Asserts accesses and per-level counters (everything but `probes`) match
/// between a sharded result and its per-access oracle.
fn assert_counters_match(label: &str, fast: &ShardedCacheStats, oracle: &ShardedCacheStats) {
    assert_eq!(fast.accesses(), oracle.accesses(), "{label}: access counts");
    assert_eq!(fast.l1(), oracle.l1(), "{label}: L1 counters");
    assert_eq!(fast.l2(), oracle.l2(), "{label}: L2 counters");
    assert_eq!(fast.shards(), oracle.shards(), "{label}: shard counts");
}

/// Contiguous ragged cuts over `nb` blocks: chunks of `chunk` trips, a
/// ragged last shard, plus one cut reaching past the end (the driver clamps
/// it).
fn ragged_cuts(nb: u64, chunk: u64) -> Vec<(u64, u64)> {
    let mut cuts = Vec::new();
    let mut lo = 0;
    while lo < nb {
        cuts.push((lo, (lo + chunk).min(nb)));
        lo += chunk;
    }
    cuts.push((nb, nb + 3));
    cuts
}

fn arbitrary_blocked_nest() -> impl Strategy<Value = (i64, i64, u8, u64)> {
    (1i64..11, 8i64..25, 0u8..6, 1u64..5).prop_map(|(nb, n, shape, chunk)| (nb, n, shape, chunk))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_blocked_programs_shard_deterministically(
        (nb, n, shape, chunk) in arbitrary_blocked_nest()
    ) {
        let program = blocked_program(nb, n, shape);
        // The tiny machine (1 KiB L1, 4 sets) forces set conflicts and
        // capacity evictions inside each shard replica.
        let machine = MachineConfig::tiny_for_tests();
        let compiled = CompiledProgram::lower(&program).unwrap();

        // The derived plan cuts at block granularity, one shard per trip.
        let plan = ShardPlan::for_program(&compiled).unwrap();
        prop_assert_eq!(plan.granularity(), ShardGranularity::Blocks);
        prop_assert_eq!(plan.len(), nb as usize);

        for plan in [plan, ShardPlan::blocks(ragged_cuts(nb as u64, chunk))] {
            // Worker invariance: bit-identical merged stats at any count.
            let baseline = simulate_cache_sharded_with_plan(&compiled, &plan, &machine, 1).unwrap();
            for workers in [3usize, 8] {
                let threaded =
                    simulate_cache_sharded_with_plan(&compiled, &plan, &machine, workers).unwrap();
                prop_assert_eq!(&threaded, &baseline, "workers = {}", workers);
            }
            // Run compression, shard by shard, against the per-access oracle.
            let oracle = simulate_cache_sharded_per_access(&compiled, &plan, &machine).unwrap();
            assert_counters_match("blocked nest", &baseline, &oracle);
        }
    }
}

#[test]
fn single_covering_shards_degenerate_to_the_monolithic_simulation() {
    let machine = MachineConfig::tiny_for_tests();
    for (nb, n, shape) in [(1i64, 16i64, 0u8), (7, 12, 1), (4, 24, 4)] {
        let program = blocked_program(nb, n, shape);
        let compiled = CompiledProgram::lower(&program).unwrap();
        let plan = ShardPlan::single(&compiled).unwrap();
        assert_eq!(plan.len(), 1);
        let sharded = simulate_cache_sharded_with_plan(&compiled, &plan, &machine, 4).unwrap();

        // One covering shard is the monolithic run-compressed simulation —
        // including probes, the pipelines are identical.
        let monolithic = simulate_cache(&program, &machine).unwrap();
        assert_eq!(sharded.accesses(), monolithic.accesses());
        assert_eq!(sharded.probes(), monolithic.probes());
        assert_eq!(sharded.l1(), monolithic.l1());
        assert_eq!(sharded.l2(), monolithic.l2());

        // And therefore bit-identical (minus probes) to the retained
        // per-access pipeline, closing the loop with cache_differential.
        let base = simulate_cache_per_access(&program, &machine).unwrap();
        assert_eq!(sharded.accesses(), base.accesses());
        assert_eq!(sharded.l1(), base.l1());
        assert_eq!(sharded.l2(), base.l2());
    }
}

#[test]
fn zero_trip_block_loops_shard_to_an_empty_plan_with_zero_counters() {
    let program = parse_program(
        "program shardzero { param NB = 4; param N = 8; param LO = 3; param HI = 3;
           array A[NB * N];
           for b in LO..HI { for i in 0..N { A[b * N + i] = 1.0; } } }",
    )
    .unwrap();
    let machine = MachineConfig::tiny_for_tests();
    let compiled = CompiledProgram::lower(&program).unwrap();
    let plan = ShardPlan::for_program(&compiled).unwrap();
    assert!(plan.is_empty(), "a zero-trip block loop has no shards");
    for workers in [0usize, 1, 8] {
        let stats = simulate_cache_sharded(&program, &machine, workers).unwrap();
        assert_eq!(stats.accesses(), 0);
        assert_eq!(stats.l1(), machine::CacheStats::default());
        assert_eq!(stats.l2(), machine::CacheStats::default());
    }
}

#[test]
fn run_group_fallback_is_worker_invariant_and_matches_the_oracle() {
    // Two top-level nests: no single block loop, so the plan falls back to
    // contiguous run-group windows.
    let program = parse_program(
        "program shardfallback { param N = 24;
           array A[N][N]; array B[N][N];
           for i in 0..N { for j in 0..N { A[i][j] = B[j][i] + 1.0; } }
           for i in 0..N { for j in 0..N { B[i][j] = A[i][j] * 0.5; } } }",
    )
    .unwrap();
    let machine = MachineConfig::tiny_for_tests();
    let compiled = CompiledProgram::lower(&program).unwrap();
    let plan = ShardPlan::for_program(&compiled).unwrap();
    assert_eq!(plan.granularity(), ShardGranularity::RunGroups);
    assert!(plan.len() > 1, "multi-nest programs split into windows");

    let baseline = simulate_cache_sharded_with_plan(&compiled, &plan, &machine, 1).unwrap();
    for workers in [3usize, 8] {
        let threaded =
            simulate_cache_sharded_with_plan(&compiled, &plan, &machine, workers).unwrap();
        assert_eq!(threaded, baseline, "workers = {workers}");
    }
    let oracle = simulate_cache_sharded_per_access(&compiled, &plan, &machine).unwrap();
    assert_counters_match("run-group fallback", &baseline, &oracle);
}
