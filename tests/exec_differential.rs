//! Differential coverage of the compiled execution engine (`machine::exec`).
//!
//! Every workload of the reproduction — the A, B and Python variants of all
//! 15 PolyBench benchmarks plus every CLOUDSC proxy — runs through the
//! retained tree-walking interpreter (`machine::interp::reference`) and the
//! compiled engine, asserting *bit-identical* array state (not a tolerance:
//! the compiled engine evaluates the same floating-point operations in the
//! same order). Property tests then drive the lowering through its edge
//! cases: zero-trip loops, negative access strides, strided domains and
//! scalar-only (loop-free) nests.

use machine::exec::CompiledProgram;
use machine::interp::{reference, ProgramData};
use machine::{Interpreter, MachineError};
use polybench::cloudsc::{
    erosion_optimized, erosion_original, erosion_single_level, full_model, CloudscSizes,
    CloudscVariant,
};
use polybench::{all_benchmarks, Dataset};
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

use loop_ir::program::Program;

/// Runs `program` through both interpreters and asserts bit-identical data
/// and statement counts.
fn assert_differential(program: &Program) {
    let mut slow_data = ProgramData::seeded(program).expect("storage allocates");
    let mut slow = reference::Interpreter::new();
    slow.run(program, &mut slow_data)
        .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", program.name));

    let mut fast_data = ProgramData::seeded(program).expect("storage allocates");
    let mut fast = Interpreter::new();
    fast.run(program, &mut fast_data)
        .unwrap_or_else(|e| panic!("{}: compiled run failed: {e}", program.name));

    assert_eq!(
        slow.executed_statements, fast.executed_statements,
        "{}: statement counts diverge",
        program.name
    );
    assert_eq!(
        slow_data, fast_data,
        "{}: array state diverges between reference and compiled execution",
        program.name
    );
}

#[test]
fn polybench_suite_is_bit_identical_under_the_compiled_engine() {
    for b in all_benchmarks() {
        assert_differential(&(b.a)(Dataset::Mini));
        assert_differential(&(b.b)(Dataset::Mini));
        let (py, _ops) = (b.py)(Dataset::Mini);
        assert_differential(&py);
    }
}

#[test]
fn cloudsc_proxies_are_bit_identical_under_the_compiled_engine() {
    let sizes = CloudscSizes::mini();
    assert_differential(&erosion_original(sizes));
    assert_differential(&erosion_optimized(sizes));
    assert_differential(&erosion_single_level(sizes, false));
    assert_differential(&erosion_single_level(sizes, true));
    for variant in [
        CloudscVariant::Fortran,
        CloudscVariant::C,
        CloudscVariant::Dace,
    ] {
        assert_differential(&full_model(variant, sizes));
    }
}

#[test]
fn normalized_workloads_are_bit_identical_too() {
    // The scheduler executes *normalized* programs; cover that shape as well.
    for program in [
        full_model(CloudscVariant::Dace, CloudscSizes::mini()),
        (all_benchmarks()[0].a)(Dataset::Mini),
    ] {
        let normalized = normalize::Normalizer::new()
            .run(&program)
            .expect("normalizes")
            .program;
        assert_differential(&normalized);
    }
}

#[test]
fn scalar_only_nests_execute_without_loops() {
    // Top-level computations with no enclosing loop: the "scalar-only nest"
    // lowering edge case.
    use loop_ir::nest::{Computation, Node};
    use loop_ir::prelude::*;

    let init = Computation::assign("S0", ArrayRef::new("acc", vec![cst(0)]), fconst(3.5));
    let update = Computation::reduction(
        "S1",
        ArrayRef::new("acc", vec![cst(0)]),
        BinOp::Add,
        load("acc", vec![cst(1)]) * fconst(2.0),
    );
    let p = Program::builder("scalar_only")
        .param("ONE", 2)
        .array("acc", &["ONE"])
        .node(Node::Computation(init))
        .node(Node::Computation(update))
        .build()
        .unwrap();
    assert_differential(&p);
}

#[test]
fn select_guarded_boundary_accesses_stay_valid() {
    // The boundary-condition idiom: `B[i] = i >= 1 ? A[i-1] : 0.0`. The
    // untaken branch at i = 0 indexes A[-1]; the reference interpreter never
    // evaluates it, and the compiled engine must not reject the program by
    // eagerly bounds-checking it either.
    use loop_ir::nest::{Computation, Node};
    use loop_ir::prelude::*;

    let guarded = Computation::assign(
        "S0",
        ArrayRef::new("B", vec![var("i")]),
        ScalarExpr::select(
            ScalarExpr::Index(var("i")),
            CmpOp::Ge,
            fconst(1.0),
            load("A", vec![var("i") - cst(1)]),
            fconst(0.0),
        ),
    );
    let p = Program::builder("boundary")
        .param("N", 8)
        .array("A", &["N"])
        .array("B", &["N"])
        .node(for_loop(
            "i",
            cst(0),
            var("N"),
            vec![Node::Computation(guarded)],
        ))
        .build()
        .unwrap();
    assert_differential(&p);
}

#[test]
fn compiled_engine_reports_oob_like_the_reference() {
    use loop_ir::parser::parse_program;
    let p = parse_program(
        "program oob { param N = 5; array A[N];
           for i in 0..N { A[i + 2] = 1.0; } }",
    )
    .unwrap();
    let mut data = ProgramData::zeroed(&p).unwrap();
    let slow = reference::Interpreter::new()
        .run(&p, &mut data)
        .unwrap_err();
    let mut data = ProgramData::zeroed(&p).unwrap();
    let fast = Interpreter::new().run(&p, &mut data).unwrap_err();
    assert!(matches!(slow, MachineError::OutOfBounds { .. }));
    assert!(matches!(fast, MachineError::OutOfBounds { .. }));
}

// ---------------------------------------------------------------------------
// Property tests: lowering edge cases
// ---------------------------------------------------------------------------

/// Builds a two-loop program whose inner bounds, steps and subscript
/// direction are chosen by the strategy inputs. Subscripts stay in bounds by
/// construction; `reverse` flips the inner access to a negative stride
/// (`A[N - 1 - j]`), and `lo >= hi` produces zero-trip domains.
fn edge_case_program(n: i64, lo: i64, hi: i64, step: i64, reverse: bool, strided: bool) -> Program {
    use loop_ir::parser::parse_program;
    let inner_idx = if reverse {
        "N - 1 - j".to_string()
    } else {
        "j".to_string()
    };
    let outer_step = if strided { 2 } else { 1 };
    parse_program(&format!(
        "program edge {{ param N = {n}; param LO = {lo}; param HI = {hi};
           array A[N]; array B[N]; array C[N][N];
           for i in 0..N step {outer_step} {{
             B[i] = A[i] * 0.5;
             for j in LO..HI step {step} {{
               C[i][j] += A[{inner_idx}] + 1.0;
             }}
           }} }}"
    ))
    .expect("edge-case program parses")
}

fn arbitrary_edge_case() -> impl Strategy<Value = (i64, i64, i64, i64, bool, bool)> {
    (4i64..12, 0i64..12, 0i64..12, 1i64..4).prop_map(|(n, lo, hi, step)| {
        // Clamp the inner domain into the array so subscripts stay legal;
        // lo >= hi (a zero-trip loop) is deliberately kept possible.
        let lo = lo.min(n - 1);
        let hi = hi.min(n);
        let reverse = (n + lo + hi) % 2 == 0;
        let strided = (n + step) % 2 == 0;
        (n, lo, hi, step, reverse, strided)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lowering_edge_cases_match_the_reference(
        (n, lo, hi, step, reverse, strided) in arbitrary_edge_case()
    ) {
        let program = edge_case_program(n, lo, hi, step, reverse, strided);

        let mut slow_data = ProgramData::seeded(&program).unwrap();
        let mut slow = reference::Interpreter::new();
        slow.run(&program, &mut slow_data).unwrap();

        let compiled = CompiledProgram::lower(&program).unwrap();
        let mut fast_data = ProgramData::seeded(&program).unwrap();
        let executed = compiled.execute(&mut fast_data).unwrap();

        prop_assert_eq!(slow.executed_statements, executed);
        prop_assert_eq!(&slow_data, &fast_data);
        if lo >= hi {
            // Zero-trip inner loop: only the outer statement runs.
            let outer_trips = (n + 1) / if strided { 2 } else { 1 };
            prop_assert!(executed <= outer_trips as u64 + n as u64);
        }

        // The trace side of the same lowering must match the symbolic walk.
        let mut compiled_trace = Vec::new();
        let mut sink = CollectSink(&mut compiled_trace);
        compiled.stream(&mut sink).unwrap();
        let mut symbolic = Vec::new();
        machine::trace::walk_accesses_symbolic(&program, |e| symbolic.push(e)).unwrap();
        prop_assert_eq!(compiled_trace, symbolic);
    }
}

struct CollectSink<'a>(&'a mut Vec<machine::TraceEntry>);

impl machine::AccessSink for CollectSink<'_> {
    fn access(&mut self, entry: machine::TraceEntry) {
        self.0.push(entry);
    }
}
