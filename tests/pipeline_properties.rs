//! Property-based tests (proptest) on the core invariants of the pipeline:
//! normalization is semantics-preserving and idempotent on randomly generated
//! affine programs, and legal random permutations never change results.

use loop_ir::prelude::*;
use machine::interp::{Interpreter, ProgramData};
use normalize::Normalizer;
use proptest::prelude::*;

/// Builds a random two-statement, two-deep loop-nest program from a small
/// parameter space: statement order, loop order, access transposition and
/// operation choice.
fn arbitrary_program() -> impl Strategy<Value = Program> {
    (
        0..2usize,       // loop order: (i,j) or (j,i)
        prop::bool::ANY, // transpose the second statement's accesses
        prop::bool::ANY, // second statement reads the first statement's output
        2..6i64,         // extent N
        3..7i64,         // extent M
    )
        .prop_map(|(order, transpose, chained, n, m)| {
            let s1 = Computation::assign(
                "S1",
                ArrayRef::new("B", vec![var("i"), var("j")]),
                load("A", vec![var("i"), var("j")]) * fconst(2.0) + fconst(1.0),
            );
            let second_input = if chained { "B" } else { "C" };
            // The target (and the independent input C) may be transposed; the
            // chained input B keeps its layout so subscripts stay in bounds.
            let t_idx = if transpose {
                vec![var("j"), var("i")]
            } else {
                vec![var("i"), var("j")]
            };
            let s_idx = if chained || !transpose {
                vec![var("i"), var("j")]
            } else {
                vec![var("j"), var("i")]
            };
            let s2 = Computation::assign(
                "S2",
                ArrayRef::new("D", t_idx),
                load(second_input, s_idx) + fconst(3.0),
            );
            let body = vec![Node::Computation(s1), Node::Computation(s2)];
            let nest = if order == 0 {
                for_loop(
                    "i",
                    cst(0),
                    var("N"),
                    vec![for_loop("j", cst(0), var("M"), body)],
                )
            } else {
                for_loop(
                    "j",
                    cst(0),
                    var("M"),
                    vec![for_loop("i", cst(0), var("N"), body)],
                )
            };
            Program::builder("random")
                .param("N", n)
                .param("M", m)
                .array("A", &["N", "M"])
                .array("B", &["N", "M"])
                .array_with_dims(
                    "C",
                    if transpose && !chained {
                        vec![var("M"), var("N")]
                    } else {
                        vec![var("N"), var("M")]
                    },
                )
                .array_with_dims(
                    "D",
                    if transpose {
                        vec![var("M"), var("N")]
                    } else {
                        vec![var("N"), var("M")]
                    },
                )
                .node(nest)
                .build()
                .expect("generated program is well-formed")
        })
}

fn outputs_of(program: &Program) -> ProgramData {
    let mut data = ProgramData::seeded(program).expect("storage allocates");
    Interpreter::new()
        .run(program, &mut data)
        .expect("program executes");
    data
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn normalization_preserves_semantics(program in arbitrary_program()) {
        let normalized = Normalizer::new().run(&program).unwrap();
        prop_assert!(normalized.program.validate().is_ok());
        let before = outputs_of(&program);
        let after = outputs_of(&normalized.program);
        for array in ["B", "D"] {
            let diff = before.max_abs_diff(&after, array).unwrap();
            prop_assert!(diff < 1e-12, "array {array} differs by {diff}");
        }
    }

    #[test]
    fn normalization_is_idempotent(program in arbitrary_program()) {
        let once = Normalizer::new().run(&program).unwrap().program;
        let twice = Normalizer::new().run(&once).unwrap().program;
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn structural_variants_normalize_to_equal_nest_count(program in arbitrary_program()) {
        // Any random legal variant of the program must land on a canonical
        // form with the same number of atomic loop nests.
        let normalized = Normalizer::new().run(&program).unwrap().program;
        let variant = polybench::random_b_variant(&program, 11);
        let normalized_variant = Normalizer::new().run(&variant).unwrap().program;
        prop_assert_eq!(
            normalized.loop_nests().len(),
            normalized_variant.loop_nests().len()
        );
    }

    #[test]
    fn cost_model_is_positive_and_finite(program in arbitrary_program()) {
        let report = machine::CostModel::sequential().estimate(&program);
        prop_assert!(report.seconds.is_finite());
        prop_assert!(report.seconds >= 0.0);
        prop_assert!(report.dram_bytes >= 0.0);
    }
}
