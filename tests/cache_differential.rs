//! Differential coverage of the run-compressed cache simulation pipeline.
//!
//! [`machine::simulate_cache`] feeds the cache simulator whole lockstep
//! [`machine::StrideRun`] groups (one per compiled innermost loop) and the
//! simulator processes them in line phases; this suite pins its
//! [`machine::CacheStats`] *bit-identical* — not approximately equal — to
//! the per-access streaming pipeline retained as
//! [`machine::simulate_cache_per_access`], and both to the naive LRU
//! reference simulator driven by the symbolic walker. Property tests sweep
//! random affine nests through the edge cases the run compression must not
//! get wrong: zero-trip inner loops, negative strides (reversal
//! subscripts), loop-invariant (zero-stride) accesses, strides larger than
//! a cache line (transposed subscripts) and interleaved multi-access bodies
//! whose lines collide in the tiny test cache's few sets.

use loop_ir::parser::parse_program;
use loop_ir::program::Program;
use machine::{simulate_cache, simulate_cache_per_access, simulate_cache_reference, MachineConfig};
use polybench::cloudsc::{erosion_optimized, erosion_original, CloudscSizes};
use polybench::{all_benchmarks, Dataset};
use proptest::{prop, prop_assert_eq, proptest, ProptestConfig, Strategy};

/// Asserts that the run-compressed, per-access and naive-reference
/// simulations of `program` report bit-identical counters.
fn assert_cache_equivalence(program: &Program, machine: &MachineConfig) {
    let fast = simulate_cache(program, machine)
        .unwrap_or_else(|e| panic!("{}: run-compressed simulation failed: {e}", program.name));
    let base = simulate_cache_per_access(program, machine)
        .unwrap_or_else(|e| panic!("{}: per-access simulation failed: {e}", program.name));
    let naive = simulate_cache_reference(program, machine)
        .unwrap_or_else(|e| panic!("{}: reference simulation failed: {e}", program.name));
    for (label, accesses, l1, l2) in [
        ("per-access", base.accesses(), base.l1(), base.l2()),
        ("reference", naive.accesses(), naive.l1(), naive.l2()),
    ] {
        assert_eq!(
            fast.accesses(),
            accesses,
            "{}: access counts diverge from {label}",
            program.name
        );
        assert_eq!(
            fast.l1(),
            l1,
            "{}: L1 counters diverge from {label}",
            program.name
        );
        assert_eq!(
            fast.l2(),
            l2,
            "{}: L2 counters diverge from {label}",
            program.name
        );
    }
}

/// A two-deep affine nest whose inner body interleaves accesses drawn from
/// a menu of stride shapes along `j`: unit (`A[i][j]`), negative
/// (`A[i][N - 1 - j]`), loop-invariant (`C[i]`) and super-line
/// (`B[j][i]`, row stride `8·N` bytes > the 64-byte line for `N > 8`).
fn interleaved_program(
    n: i64,
    lo: i64,
    hi: i64,
    step: i64,
    shape: u8,
    second_stmt: bool,
) -> Program {
    let b_subscript = match shape % 3 {
        0 => "i][j",
        1 => "i][N - 1 - j",
        _ => "j][i",
    };
    let c_subscript = if shape.is_multiple_of(2) { "i" } else { "j" };
    let extra = if second_stmt {
        "A[i][j] += D[i][j] * 2.0;"
    } else {
        ""
    };
    parse_program(&format!(
        "program cachediff {{
           param N = {n}; param LO = {lo}; param HI = {hi};
           array A[N][N]; array B[N][N]; array C[N]; array D[N][N];
           for i in 0..N {{
             C[i] = A[i][0] * 0.5;
             for j in LO..HI step {step} {{
               D[i][j] = A[i][j] + B[{b_subscript}] * C[{c_subscript}];
               {extra}
             }}
           }}
         }}"
    ))
    .expect("generated nest parses")
}

fn arbitrary_nest() -> impl Strategy<Value = (i64, i64, i64, i64, u8, bool)> {
    (9i64..28, 0i64..28, 0i64..28, 1i64..4, 0u8..6).prop_map(|(n, lo, hi, step, shape)| {
        // Clamp the inner domain into the arrays so subscripts stay legal;
        // lo >= hi (a zero-trip inner loop) stays deliberately possible.
        let lo = lo.min(n - 1);
        let hi = hi.min(n);
        let second_stmt = (n + lo + hi) % 2 == 0;
        (n, lo, hi, step, shape, second_stmt)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_affine_nests_simulate_bit_identically(
        (n, lo, hi, step, shape, second_stmt) in arbitrary_nest()
    ) {
        let program = interleaved_program(n, lo, hi, step, shape, second_stmt);
        // The tiny machine (1 KiB L1, 4 sets) forces set conflicts and
        // capacity evictions, exercising the conflict fallback of the
        // run-group fast path.
        let machine = MachineConfig::tiny_for_tests();
        let fast = simulate_cache(&program, &machine).unwrap();
        let base = simulate_cache_per_access(&program, &machine).unwrap();
        prop_assert_eq!(fast.accesses(), base.accesses());
        prop_assert_eq!(fast.l1(), base.l1());
        prop_assert_eq!(fast.l2(), base.l2());
        let naive = simulate_cache_reference(&program, &machine).unwrap();
        prop_assert_eq!(fast.accesses(), naive.accesses());
        prop_assert_eq!(fast.l1(), naive.l1());
        prop_assert_eq!(fast.l2(), naive.l2());
    }
}

/// A 1-D multi-tap stencil over `steps` time steps: the staggered same-array
/// taps are the shape the stagger-merged lane path collapses. `taps` are
/// element offsets relative to a 16-element pad (so negative taps stay in
/// bounds); `reversed` walks the domain through reversal subscripts
/// (negative byte stride).
fn stencil_program(n: i64, steps: i64, taps: &[i64], reversed: bool) -> Program {
    let subscript = |tap: i64| {
        if reversed {
            format!("M - {} - j", 17 - tap)
        } else if 16 + tap == 0 {
            "j".to_string()
        } else {
            format!("j + {}", 16 + tap)
        }
    };
    let sum = taps
        .iter()
        .map(|&t| format!("A[{}]", subscript(t)))
        .collect::<Vec<_>>()
        .join(" + ");
    let out = subscript(0);
    parse_program(&format!(
        "program stencil {{
           param N = {n}; param M = {}; param T = {steps};
           array A[M]; array B[M];
           for t in 0..T {{
             for j in 0..N {{
               B[{out}] = ({sum}) * 0.2;
             }}
           }}
         }}",
        n + 33
    ))
    .expect("generated stencil parses")
}

/// Random tap sets for the stagger proptest: 2-5 taps whose offsets mix
/// signs and deliberately include spreads that straddle line boundaries and
/// spreads wider than a 64-byte line (9+ elements), which must *not* merge.
fn arbitrary_stencil() -> impl Strategy<Value = (i64, i64, Vec<i64>, bool)> {
    (
        10i64..40,
        1i64..3,
        2usize..6,
        (-8i64..9, -8i64..9, -8i64..9, -8i64..9, -8i64..9),
        prop::bool::ANY,
    )
        .prop_map(|(n, steps, k, t, reversed)| {
            let menu = [t.0, t.1, t.2, t.3, t.4];
            (n, steps, menu[..k].to_vec(), reversed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_stagger_stencils_simulate_bit_identically(
        (n, steps, taps, reversed) in arbitrary_stencil()
    ) {
        let program = stencil_program(n, steps, &taps, reversed);
        let machine = MachineConfig::tiny_for_tests();
        let fast = simulate_cache(&program, &machine).unwrap();
        let base = simulate_cache_per_access(&program, &machine).unwrap();
        prop_assert_eq!(fast.accesses(), base.accesses());
        prop_assert_eq!(fast.l1(), base.l1());
        prop_assert_eq!(fast.l2(), base.l2());
        let naive = simulate_cache_reference(&program, &machine).unwrap();
        prop_assert_eq!(fast.l1(), naive.l1());
        prop_assert_eq!(fast.l2(), naive.l2());
    }
}

#[test]
fn directed_stagger_stencils_simulate_bit_identically() {
    let machine = MachineConfig::tiny_for_tests();
    for (n, steps, taps, reversed) in [
        // The classic three-point stencil, forward and reversed.
        (32, 2, vec![-1, 0, 1], false),
        (32, 2, vec![-1, 0, 1], true),
        // Five taps, the widest the merge is expected to pay off on.
        (40, 2, vec![-2, -1, 0, 1, 2], false),
        // Taps straddling a line boundary (8 doubles per 64-byte line).
        (32, 1, vec![-8, -7, 0], false),
        // Taps spread wider than one line: must not merge, must stay exact.
        (32, 1, vec![-8, 0, 8], false),
        (40, 2, vec![-6, -3, 0, 3, 6], true),
        // Duplicate taps (the same subscript twice) and asymmetric spreads.
        (24, 1, vec![0, 0, 1], false),
        (36, 2, vec![-4, 1, 2, 3], false),
    ] {
        assert_cache_equivalence(&stencil_program(n, steps, &taps, reversed), &machine);
    }
    // The paper geometry exercises deeper associativity on the same shapes.
    let xeon = MachineConfig::xeon_e5_2680v3();
    assert_cache_equivalence(&stencil_program(200, 3, &[-2, -1, 0, 1, 2], false), &xeon);
}

#[test]
fn directed_edge_cases_simulate_bit_identically() {
    let machine = MachineConfig::tiny_for_tests();
    // Zero-trip inner loop; pure negative stride; pure super-line stride;
    // all-invariant body; maximal interleaving with a reduction.
    for (n, lo, hi, step, shape, second) in [
        (16, 10, 10, 1, 0, true), // zero-trip inner loop
        (16, 0, 16, 1, 1, false), // negative stride
        (24, 0, 24, 1, 2, true),  // super-line stride (transposed)
        (12, 0, 12, 3, 4, true),  // strided domain, invariant C[i]
        (27, 1, 26, 2, 5, true),  // odd extents, unaligned bases
    ] {
        assert_cache_equivalence(
            &interleaved_program(n, lo, hi, step, shape, second),
            &machine,
        );
    }
}

#[test]
fn workload_suite_simulates_bit_identically() {
    // The real workloads of the reproduction: every PolyBench A variant and
    // the Table 1 CLOUDSC erosion nests, on the paper's machine geometry.
    let machine = MachineConfig::xeon_e5_2680v3();
    for b in all_benchmarks() {
        assert_cache_equivalence(&(b.a)(Dataset::Mini), &machine);
    }
    let sizes = CloudscSizes::mini();
    assert_cache_equivalence(&erosion_original(sizes), &machine);
    assert_cache_equivalence(&erosion_optimized(sizes), &machine);
}
