//! Differential coverage of the run-compressed cache simulation pipeline.
//!
//! [`machine::simulate_cache`] feeds the cache simulator whole lockstep
//! [`machine::StrideRun`] groups (one per compiled innermost loop) and the
//! simulator processes them in line phases; this suite pins its
//! [`machine::CacheStats`] *bit-identical* — not approximately equal — to
//! the per-access streaming pipeline retained as
//! [`machine::simulate_cache_per_access`], and both to the naive LRU
//! reference simulator driven by the symbolic walker. Property tests sweep
//! random affine nests through the edge cases the run compression must not
//! get wrong: zero-trip inner loops, negative strides (reversal
//! subscripts), loop-invariant (zero-stride) accesses, strides larger than
//! a cache line (transposed subscripts) and interleaved multi-access bodies
//! whose lines collide in the tiny test cache's few sets.

use loop_ir::parser::parse_program;
use loop_ir::program::Program;
use machine::{simulate_cache, simulate_cache_per_access, simulate_cache_reference, MachineConfig};
use polybench::cloudsc::{erosion_optimized, erosion_original, CloudscSizes};
use polybench::{all_benchmarks, Dataset};
use proptest::{prop_assert_eq, proptest, ProptestConfig, Strategy};

/// Asserts that the run-compressed, per-access and naive-reference
/// simulations of `program` report bit-identical counters.
fn assert_cache_equivalence(program: &Program, machine: &MachineConfig) {
    let fast = simulate_cache(program, machine)
        .unwrap_or_else(|e| panic!("{}: run-compressed simulation failed: {e}", program.name));
    let base = simulate_cache_per_access(program, machine)
        .unwrap_or_else(|e| panic!("{}: per-access simulation failed: {e}", program.name));
    let naive = simulate_cache_reference(program, machine)
        .unwrap_or_else(|e| panic!("{}: reference simulation failed: {e}", program.name));
    for (label, accesses, l1, l2) in [
        ("per-access", base.accesses(), base.l1(), base.l2()),
        ("reference", naive.accesses(), naive.l1(), naive.l2()),
    ] {
        assert_eq!(
            fast.accesses(),
            accesses,
            "{}: access counts diverge from {label}",
            program.name
        );
        assert_eq!(
            fast.l1(),
            l1,
            "{}: L1 counters diverge from {label}",
            program.name
        );
        assert_eq!(
            fast.l2(),
            l2,
            "{}: L2 counters diverge from {label}",
            program.name
        );
    }
}

/// A two-deep affine nest whose inner body interleaves accesses drawn from
/// a menu of stride shapes along `j`: unit (`A[i][j]`), negative
/// (`A[i][N - 1 - j]`), loop-invariant (`C[i]`) and super-line
/// (`B[j][i]`, row stride `8·N` bytes > the 64-byte line for `N > 8`).
fn interleaved_program(
    n: i64,
    lo: i64,
    hi: i64,
    step: i64,
    shape: u8,
    second_stmt: bool,
) -> Program {
    let b_subscript = match shape % 3 {
        0 => "i][j",
        1 => "i][N - 1 - j",
        _ => "j][i",
    };
    let c_subscript = if shape.is_multiple_of(2) { "i" } else { "j" };
    let extra = if second_stmt {
        "A[i][j] += D[i][j] * 2.0;"
    } else {
        ""
    };
    parse_program(&format!(
        "program cachediff {{
           param N = {n}; param LO = {lo}; param HI = {hi};
           array A[N][N]; array B[N][N]; array C[N]; array D[N][N];
           for i in 0..N {{
             C[i] = A[i][0] * 0.5;
             for j in LO..HI step {step} {{
               D[i][j] = A[i][j] + B[{b_subscript}] * C[{c_subscript}];
               {extra}
             }}
           }}
         }}"
    ))
    .expect("generated nest parses")
}

fn arbitrary_nest() -> impl Strategy<Value = (i64, i64, i64, i64, u8, bool)> {
    (9i64..28, 0i64..28, 0i64..28, 1i64..4, 0u8..6).prop_map(|(n, lo, hi, step, shape)| {
        // Clamp the inner domain into the arrays so subscripts stay legal;
        // lo >= hi (a zero-trip inner loop) stays deliberately possible.
        let lo = lo.min(n - 1);
        let hi = hi.min(n);
        let second_stmt = (n + lo + hi) % 2 == 0;
        (n, lo, hi, step, shape, second_stmt)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_affine_nests_simulate_bit_identically(
        (n, lo, hi, step, shape, second_stmt) in arbitrary_nest()
    ) {
        let program = interleaved_program(n, lo, hi, step, shape, second_stmt);
        // The tiny machine (1 KiB L1, 4 sets) forces set conflicts and
        // capacity evictions, exercising the conflict fallback of the
        // run-group fast path.
        let machine = MachineConfig::tiny_for_tests();
        let fast = simulate_cache(&program, &machine).unwrap();
        let base = simulate_cache_per_access(&program, &machine).unwrap();
        prop_assert_eq!(fast.accesses(), base.accesses());
        prop_assert_eq!(fast.l1(), base.l1());
        prop_assert_eq!(fast.l2(), base.l2());
        let naive = simulate_cache_reference(&program, &machine).unwrap();
        prop_assert_eq!(fast.accesses(), naive.accesses());
        prop_assert_eq!(fast.l1(), naive.l1());
        prop_assert_eq!(fast.l2(), naive.l2());
    }
}

#[test]
fn directed_edge_cases_simulate_bit_identically() {
    let machine = MachineConfig::tiny_for_tests();
    // Zero-trip inner loop; pure negative stride; pure super-line stride;
    // all-invariant body; maximal interleaving with a reduction.
    for (n, lo, hi, step, shape, second) in [
        (16, 10, 10, 1, 0, true), // zero-trip inner loop
        (16, 0, 16, 1, 1, false), // negative stride
        (24, 0, 24, 1, 2, true),  // super-line stride (transposed)
        (12, 0, 12, 3, 4, true),  // strided domain, invariant C[i]
        (27, 1, 26, 2, 5, true),  // odd extents, unaligned bases
    ] {
        assert_cache_equivalence(
            &interleaved_program(n, lo, hi, step, shape, second),
            &machine,
        );
    }
}

#[test]
fn workload_suite_simulates_bit_identically() {
    // The real workloads of the reproduction: every PolyBench A variant and
    // the Table 1 CLOUDSC erosion nests, on the paper's machine geometry.
    let machine = MachineConfig::xeon_e5_2680v3();
    for b in all_benchmarks() {
        assert_cache_equivalence(&(b.a)(Dataset::Mini), &machine);
    }
    let sizes = CloudscSizes::mini();
    assert_cache_equivalence(&erosion_original(sizes), &machine);
    assert_cache_equivalence(&erosion_optimized(sizes), &machine);
}
