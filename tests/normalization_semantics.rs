//! Cross-crate integration tests: normalization and scheduling preserve the
//! semantics of every benchmark, and the daisy scheduler is robust across the
//! A/B/Py structural families.

use baselines::{clang_schedule, icc_schedule, polly_schedule};
use daisy::{DaisyConfig, DaisyScheduler};
use machine::interp::run_seeded;
use normalize::Normalizer;
use polybench::{all_benchmarks, random_b_variant, Dataset};

fn assert_equivalent(
    name: &str,
    reference: &loop_ir::Program,
    candidate: &loop_ir::Program,
    arrays: &[&str],
) {
    let a = run_seeded(reference).unwrap_or_else(|e| panic!("{name}: reference fails: {e}"));
    let b = run_seeded(candidate).unwrap_or_else(|e| panic!("{name}: candidate fails: {e}"));
    for array in arrays {
        let diff = a
            .max_abs_diff(&b, array)
            .unwrap_or_else(|| panic!("{name}: array {array} missing or reshaped"));
        assert!(diff < 1e-9, "{name}: array {array} differs by {diff}");
    }
}

#[test]
fn normalization_preserves_semantics_of_every_benchmark() {
    let normalizer = Normalizer::new();
    for b in all_benchmarks() {
        for (label, program) in [("A", (b.a)(Dataset::Mini)), ("B", (b.b)(Dataset::Mini))] {
            let normalized = normalizer
                .run(&program)
                .unwrap_or_else(|e| panic!("{} {label}: normalization fails: {e}", b.name));
            assert!(normalized.program.validate().is_ok());
            assert_equivalent(
                &format!("{} {label}", b.name),
                &program,
                &normalized.program,
                b.outputs,
            );
        }
    }
}

#[test]
fn a_and_b_variants_of_every_benchmark_are_equivalent() {
    for b in all_benchmarks() {
        assert_equivalent(
            b.name,
            &(b.a)(Dataset::Mini),
            &(b.b)(Dataset::Mini),
            b.outputs,
        );
    }
}

#[test]
fn python_variants_are_equivalent_to_the_c_variants() {
    for b in all_benchmarks() {
        let (py, ops) = (b.py)(Dataset::Mini);
        assert!(!ops.is_empty(), "{} should report framework ops", b.name);
        assert_equivalent(b.name, &(b.a)(Dataset::Mini), &py, b.outputs);
    }
}

#[test]
fn baseline_schedulers_do_not_change_program_results() {
    // Schedule annotations (tiling, parallel marks) must not change what the
    // interpreter computes.
    for b in all_benchmarks().into_iter().take(5) {
        let program = (b.a)(Dataset::Mini);
        for (label, scheduled) in [
            ("clang", clang_schedule(&program)),
            ("icc", icc_schedule(&program)),
            ("polly", polly_schedule(&program)),
        ] {
            assert_equivalent(
                &format!("{} {label}", b.name),
                &program,
                &scheduled,
                b.outputs,
            );
        }
    }
}

#[test]
fn daisy_schedules_a_and_b_variants_to_similar_estimated_runtimes() {
    let dataset = Dataset::Large;
    let mut scheduler = DaisyScheduler::new(DaisyConfig::default());
    let seeds: Vec<_> = ["gemm", "2mm", "mvt", "jacobi-2d"]
        .iter()
        .map(|n| (polybench::benchmark(n).unwrap().a)(dataset))
        .collect();
    scheduler.seed_from_programs(&seeds);
    for name in ["gemm", "2mm", "mvt", "jacobi-2d"] {
        let b = polybench::benchmark(name).unwrap();
        let a_time = scheduler.schedule(&(b.a)(dataset)).seconds();
        let b_time = scheduler.schedule(&(b.b)(dataset)).seconds();
        let gap = (b_time / a_time - 1.0).abs();
        assert!(
            gap < 0.30,
            "{name}: A/B estimated runtime gap {gap:.2} exceeds 30% (A={a_time}, B={b_time})"
        );
    }
}

#[test]
fn randomly_generated_variants_stay_equivalent_after_normalization() {
    let normalizer = Normalizer::new();
    for b in all_benchmarks().into_iter().take(4) {
        let a = (b.a)(Dataset::Mini);
        for seed in 0..3u64 {
            let variant = random_b_variant(&a, seed);
            let normalized = normalizer.run(&variant).unwrap().program;
            assert_equivalent(
                &format!("{} seed {seed}", b.name),
                &a,
                &normalized,
                b.outputs,
            );
        }
    }
}
