//! Stride minimization (the second normalization criterion, §2.2).

use dependence::{analyze, is_permutation_legal, DependenceGraph};
use loop_ir::expr::Var;
use loop_ir::nest::{Loop, Node};
use loop_ir::program::Program;
use transforms::interchange::{interchange, perfect_chain};

use crate::stride::{iterator_stride_weights, sum_of_strides};

/// Nests whose perfect chain is deeper than this are not exhaustively
/// enumerated; the grouped-sorting approximation is used instead, as proposed
/// by the paper for deep loop nests.
const ENUMERATION_LIMIT: usize = 6;

/// The stride-minimization normalization pass.
///
/// For every top-level loop nest of the program, the legal permutation of its
/// perfectly nested loops with the smallest [`sum_of_strides`] cost replaces
/// the nest. The pass assumes maximal loop fission already ran (§2.2: "We
/// assume the stride minimization criterion is applied after the maximal loop
/// fission criterion"), but is safe on any program: imperfectly nested parts
/// simply stay where they are.
#[derive(Debug, Clone, Default)]
pub struct StrideMinimization {
    /// Maximum perfect-chain depth for exhaustive permutation enumeration.
    pub enumeration_limit: usize,
}

/// Statistics reported by the stride-minimization pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PermutationStats {
    /// Number of loop nests examined.
    pub nests_examined: usize,
    /// Number of nests whose loop order changed.
    pub nests_permuted: usize,
    /// Number of nests handled by the grouped-sorting approximation.
    pub approximated: usize,
    /// Total stride cost before the pass (sum over nests).
    pub cost_before: f64,
    /// Total stride cost after the pass (sum over nests).
    pub cost_after: f64,
}

impl StrideMinimization {
    /// Creates the pass with the default enumeration limit.
    pub fn new() -> Self {
        StrideMinimization {
            enumeration_limit: ENUMERATION_LIMIT,
        }
    }

    /// Runs the pass, returning the permuted program and statistics.
    pub fn run(&self, program: &Program) -> (Program, PermutationStats) {
        let graph = analyze(program);
        let mut stats = PermutationStats::default();
        let mut out = program.clone();
        out.body = program
            .body
            .iter()
            .map(|node| match node {
                Node::Loop(nest) => {
                    Node::Loop(self.minimize_nest(program, &graph, nest, &mut stats))
                }
                other => other.clone(),
            })
            .collect();
        (out, stats)
    }

    /// Finds and applies the minimal-stride legal permutation for one nest,
    /// then recurses into loop nests below the perfect chain (imperfectly
    /// nested programs such as time-stepped stencils carry their permutable
    /// spatial nests *inside* the sequential time loop).
    pub fn minimize_nest(
        &self,
        program: &Program,
        graph: &DependenceGraph,
        nest: &Loop,
        stats: &mut PermutationStats,
    ) -> Loop {
        stats.nests_examined += 1;
        let chain: Vec<Var> = perfect_chain(nest).iter().map(|l| l.iter.clone()).collect();
        let original_cost = sum_of_strides(program, nest, &chain);
        stats.cost_before += original_cost;

        let mut result = if chain.len() < 2 {
            stats.cost_after += original_cost;
            nest.clone()
        } else {
            let limit = if self.enumeration_limit == 0 {
                ENUMERATION_LIMIT
            } else {
                self.enumeration_limit
            };
            let best_order = if chain.len() <= limit {
                self.enumerate(program, graph, nest, &chain)
            } else {
                stats.approximated += 1;
                self.grouped_sort(program, graph, nest, &chain)
            };
            match best_order {
                Some(order) if order != chain => match interchange(nest, &order) {
                    Ok(permuted) => {
                        stats.nests_permuted += 1;
                        stats.cost_after += sum_of_strides(program, &permuted, &order);
                        permuted
                    }
                    Err(_) => {
                        stats.cost_after += original_cost;
                        nest.clone()
                    }
                },
                _ => {
                    stats.cost_after += original_cost;
                    nest.clone()
                }
            }
        };

        // Recurse into the loops below the end of the perfect chain.
        self.minimize_below_chain(program, graph, &mut result, stats);
        result
    }

    fn minimize_below_chain(
        &self,
        program: &Program,
        graph: &DependenceGraph,
        nest: &mut Loop,
        stats: &mut PermutationStats,
    ) {
        // Find the innermost loop of the perfect chain.
        let chain_len = perfect_chain(nest).len();
        let mut current: &mut Loop = nest;
        for _ in 1..chain_len {
            let Some(Node::Loop(inner)) = current.body.iter_mut().next() else {
                return;
            };
            current = inner;
        }
        // If the innermost chain loop has several children, each child loop
        // is itself a nest to minimize.
        if current.body.len() <= 1 {
            return;
        }
        current.body = current
            .body
            .iter()
            .map(|node| match node {
                Node::Loop(sub) => Node::Loop(self.minimize_nest(program, graph, sub, stats)),
                other => other.clone(),
            })
            .collect();
    }

    /// Exhaustive enumeration of legal permutations (§2.2: "the minimum can
    /// simply be found by enumeration for many practically-relevant loop
    /// nests").
    fn enumerate(
        &self,
        program: &Program,
        graph: &DependenceGraph,
        nest: &Loop,
        chain: &[Var],
    ) -> Option<Vec<Var>> {
        let mut best: Option<(f64, Vec<Var>, Vec<f64>)> = None;
        for order in permutations(chain) {
            if !is_permutation_legal(graph, nest, &order) {
                continue;
            }
            // Triangular bounds make some orders structurally impossible;
            // interchange reports those, so probe it.
            if interchange(nest, &order).is_err() {
                continue;
            }
            let cost = sum_of_strides(program, nest, &order);
            // Deterministic tie-break independent of the incoming loop order:
            // prefer the order whose per-level stride weights decrease from
            // outermost to innermost, comparing the weight vectors
            // lexicographically (largest-stride iterators outermost), and
            // finally the iterator names.
            let weights = iterator_stride_weights(program, nest);
            let key: Vec<f64> = order.iter().map(|v| -weights[v]).collect();
            let better = match &best {
                None => true,
                Some((best_cost, best_order, best_key)) => {
                    cost < best_cost - 1e-9
                        || ((cost - best_cost).abs() <= 1e-9
                            && (compare_keys(&key, best_key) == std::cmp::Ordering::Less
                                || (compare_keys(&key, best_key) == std::cmp::Ordering::Equal
                                    && order < *best_order)))
                }
            };
            if better {
                best = Some((cost, order, key));
            }
        }
        best.map(|(_, order, _)| order)
    }

    /// Grouped-sorting approximation for deep nests: sort iterators by their
    /// total stride weight, largest strides outermost, and accept the order
    /// only if it is legal.
    fn grouped_sort(
        &self,
        program: &Program,
        graph: &DependenceGraph,
        nest: &Loop,
        chain: &[Var],
    ) -> Option<Vec<Var>> {
        let weights = iterator_stride_weights(program, nest);
        let mut order = chain.to_vec();
        order.sort_by(|a, b| {
            weights[b]
                .partial_cmp(&weights[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });
        if is_permutation_legal(graph, nest, &order) && interchange(nest, &order).is_ok() {
            Some(order)
        } else {
            None
        }
    }
}

fn compare_keys(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        match x.partial_cmp(y) {
            Some(std::cmp::Ordering::Equal) | None => continue,
            Some(other) => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// All permutations of a slice (Heap's algorithm, iterative collection).
fn permutations(items: &[Var]) -> Vec<Vec<Var>> {
    let mut out = Vec::new();
    let mut current = items.to_vec();
    heap_permute(current.len(), &mut current, &mut out);
    out
}

fn heap_permute(k: usize, items: &mut Vec<Var>, out: &mut Vec<Vec<Var>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(k - 1, items, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;
    use loop_ir::prelude::*;

    fn order_of(program: &Program, nest_index: usize) -> Vec<String> {
        program.loop_nests()[nest_index]
            .nested_iterators()
            .iter()
            .map(|v| v.to_string())
            .collect()
    }

    fn gemm_update(order: &str) -> Program {
        let loops: Vec<char> = order.chars().collect();
        let src = format!(
            r#"
            program gemm_{order} {{
              param NI = 64; param NJ = 64; param NK = 64;
              array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
              for {a} in 0..N{au} {{ for {b} in 0..N{bu} {{ for {c} in 0..N{cu} {{
                C[i][j] += A[i][k] * B[k][j];
              }} }} }}
            }}
            "#,
            a = loops[0],
            b = loops[1],
            c = loops[2],
            au = loops[0].to_uppercase(),
            bu = loops[1].to_uppercase(),
            cu = loops[2].to_uppercase(),
        );
        parse_program(&src).unwrap()
    }

    #[test]
    fn all_gemm_orders_normalize_to_the_same_canonical_order() {
        let canonical = {
            let p = gemm_update("ikj");
            let (n, _) = StrideMinimization::new().run(&p);
            order_of(&n, 0)
        };
        for variant in ["ijk", "ikj", "jik", "jki", "kij", "kji"] {
            let p = gemm_update(variant);
            let (n, _) = StrideMinimization::new().run(&p);
            assert_eq!(
                order_of(&n, 0),
                canonical,
                "variant {variant} should normalize to the canonical order"
            );
        }
        assert_eq!(canonical, vec!["i", "k", "j"]);
    }

    #[test]
    fn permutation_is_semantically_valid_program() {
        let p = gemm_update("kji");
        let (n, stats) = StrideMinimization::new().run(&p);
        assert!(n.validate().is_ok());
        assert_eq!(stats.nests_examined, 1);
        assert_eq!(stats.nests_permuted, 1);
        assert!(stats.cost_after <= stats.cost_before);
    }

    #[test]
    fn stencil_with_carried_dependence_keeps_legal_order() {
        // A[i][j] = A[i-1][j+1]: interchanging i and j is illegal, so the
        // pass must keep (i, j) even though (j, i) is never better anyway.
        let src = r#"
            program skewed {
              param N = 32;
              array A[N][N];
              for i in 1..N { for j in 0..N - 1 {
                A[i][j] = A[i - 1][j + 1] + 1.0;
              } }
            }
        "#;
        let p = parse_program(src).unwrap();
        let (n, _) = StrideMinimization::new().run(&p);
        assert_eq!(order_of(&n, 0), vec!["i", "j"]);
    }

    #[test]
    fn column_major_copy_is_transposed() {
        let src = r#"
            program copy_t {
              param N = 64; param M = 32;
              array C[M][N]; array D[M][N];
              for i in 0..N { for j in 0..M {
                D[j][i] = C[j][i];
              } }
            }
        "#;
        let p = parse_program(src).unwrap();
        let (n, stats) = StrideMinimization::new().run(&p);
        assert_eq!(order_of(&n, 0), vec!["j", "i"]);
        assert_eq!(stats.nests_permuted, 1);
        assert!(stats.cost_after < stats.cost_before);
    }

    #[test]
    fn single_loop_nest_is_untouched() {
        let src = r#"
            program one {
              param N = 16;
              array A[N];
              for i in 0..N { A[i] = 1.0; }
            }
        "#;
        let p = parse_program(src).unwrap();
        let (n, stats) = StrideMinimization::new().run(&p);
        assert_eq!(n, p);
        assert_eq!(stats.nests_permuted, 0);
    }

    #[test]
    fn triangular_nests_keep_structurally_required_order() {
        let src = r#"
            program tri {
              param N = 32;
              array C[N][N];
              for i in 0..N { for j in 0..i + 1 {
                C[j][i] = 1.0;
              } }
            }
        "#;
        let p = parse_program(src).unwrap();
        let (n, _) = StrideMinimization::new().run(&p);
        // (j, i) would have better strides but is structurally impossible
        // because j's bound depends on i.
        assert_eq!(order_of(&n, 0), vec!["i", "j"]);
    }

    #[test]
    fn deep_nests_use_grouped_sorting() {
        let s = Computation::assign(
            "S1",
            ArrayRef::new(
                "A",
                vec![
                    var("a"),
                    var("b"),
                    var("c"),
                    var("d"),
                    var("e"),
                    var("f"),
                    var("g"),
                ],
            ),
            fconst(1.0),
        );
        let mut node = Node::Computation(s);
        for iter in ["g", "f", "e", "d", "c", "b", "a"] {
            node = for_loop(iter, cst(0), cst(4), vec![node]);
        }
        let p = Program::builder("deep")
            .array_with_dims(
                "A",
                vec![cst(4), cst(4), cst(4), cst(4), cst(4), cst(4), cst(4)],
            )
            .node(node)
            .build()
            .unwrap();
        let pass = StrideMinimization::new();
        let (n, stats) = pass.run(&p);
        assert_eq!(stats.approximated, 1);
        // Grouped sorting orders by descending stride weight: a, b, …, g.
        assert_eq!(order_of(&n, 0), vec!["a", "b", "c", "d", "e", "f", "g"]);
    }

    #[test]
    fn pass_is_idempotent() {
        let p = gemm_update("jki");
        let (once, _) = StrideMinimization::new().run(&p);
        let (twice, stats) = StrideMinimization::new().run(&once);
        assert_eq!(once, twice);
        assert_eq!(stats.nests_permuted, 0);
    }

    #[test]
    fn permutations_helper_generates_all() {
        let items: Vec<Var> = ["a", "b", "c"].iter().map(|s| Var::new(*s)).collect();
        let perms = permutations(&items);
        assert_eq!(perms.len(), 6);
        let unique: std::collections::BTreeSet<Vec<Var>> = perms.into_iter().collect();
        assert_eq!(unique.len(), 6);
    }
}
