//! # normalize — a priori loop nest normalization
//!
//! This crate implements the paper's contribution: the two normalization
//! criteria that map loop nests with different memory access patterns to the
//! same canonical form *before* any auto-scheduling (§2):
//!
//! 1. **Maximal loop fission** ([`fission::MaximalFission`]): computations
//!    and loops at the same level of a nest are divided across separate loop
//!    nests whenever no data or loop-carried dependence forces them together,
//!    applied to a fixed point. The result is a sequence of "atomic" loop
//!    nests.
//! 2. **Stride minimization** ([`permute::StrideMinimization`]): each atomic
//!    loop nest is replaced by the legal permutation of its loops with the
//!    smallest total access stride, computed from the symbolic access
//!    expressions ([`stride`]).
//!
//! [`pipeline::Normalizer`] chains the two passes exactly as in the paper's
//! Figure 5 and reports what changed.
//!
//! ```
//! use loop_ir::parser::parse_program;
//! use normalize::Normalizer;
//!
//! // A GEMM update written with the k loop outermost — a structurally poor
//! // variant.
//! let program = parse_program(r#"
//!     program gemm_variant {
//!       param NI = 32; param NJ = 32; param NK = 32;
//!       array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
//!       for k in 0..NK { for j in 0..NJ { for i in 0..NI {
//!         C[i][j] += A[i][k] * B[k][j];
//!       } } }
//!     }
//! "#).unwrap();
//! let normalized = Normalizer::new().run(&program).unwrap();
//! // The canonical form puts the unit-stride iterators innermost (i, k, j).
//! let order: Vec<String> = normalized.program.loop_nests()[0]
//!     .nested_iterators().iter().map(|v| v.to_string()).collect();
//! assert_eq!(order, vec!["i", "k", "j"]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fission;
pub mod permute;
pub mod pipeline;
pub mod stride;

pub use fission::MaximalFission;
pub use permute::StrideMinimization;
pub use pipeline::{NormalizationStats, NormalizedProgram, Normalizer, NormalizerConfig};
pub use stride::{out_of_order_cost, sum_of_strides, StrideCost};
