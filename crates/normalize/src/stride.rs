//! Stride cost functions for loop orders (§2.2).
//!
//! The paper defines a generic criterion `stride(loop)` mapping the
//! subsequent memory accesses of a loop nest to a real value and proposes the
//! *sum of all distances between two subsequent accesses to all arrays over
//! all computations* as a suitable instance, with the *number of out-of-order
//! accesses* as the fallback when array extents are not statically known.
//! Both are implemented here.

use std::collections::BTreeMap;

use loop_ir::expr::Var;
use loop_ir::nest::Loop;
use loop_ir::program::Program;

/// Weight ratio between adjacent loop levels in [`sum_of_strides`]: a stride
/// along the innermost loop is traversed this many times more often than the
/// same stride one level further out (a coarse stand-in for the trip count,
/// which keeps the cost comparable across nests with symbolic extents).
const LEVEL_WEIGHT: f64 = 8.0;

/// A stride cost value. Lower is better; the canonical permutation is the
/// legal permutation with the minimal cost.
pub type StrideCost = f64;

/// Computes the sum-of-strides cost of executing `nest` with its loops in
/// the order `order` (outermost first).
///
/// For every memory access of every computation in the nest, the linearized
/// row-major offset is expressed as an affine function of the loop iterators;
/// the absolute coefficient of an iterator is the distance (in elements)
/// between the accesses of two subsequent iterations of that loop. Distances
/// are weighted by how frequently the corresponding loop advances
/// (innermost loops advance most often), so the cost rewards placing
/// small-stride iterators innermost.
///
/// Accesses whose subscripts are not affine, or arrays whose extents cannot
/// be evaluated, contribute a large penalty rather than failing, so the cost
/// is total over all nests.
pub fn sum_of_strides(program: &Program, nest: &Loop, order: &[Var]) -> StrideCost {
    let mut cost = 0.0;
    let depth = order.len().max(1);
    for comp in nest.computations() {
        for access in comp.accesses() {
            let Ok(array) = program.array(&access.array_ref.array) else {
                cost += penalty(depth);
                continue;
            };
            let Some(offset) = access.array_ref.linear_offset(array, &program.params) else {
                cost += penalty(depth);
                continue;
            };
            for (position, iter) in order.iter().enumerate() {
                let stride = offset.coefficient(iter).unsigned_abs() as f64;
                // position 0 = outermost (lowest weight), innermost loops
                // advance most often and dominate the cost.
                cost += stride * LEVEL_WEIGHT.powi(position as i32);
            }
        }
    }
    cost
}

fn penalty(depth: usize) -> f64 {
    // A non-analyzable access is treated as a full cache-line miss per
    // iteration at every level.
    64.0 * LEVEL_WEIGHT.powi(depth as i32 - 1) * depth as f64
}

/// Counts out-of-order accesses for the given loop order: for every access,
/// every pair of subscript dimensions whose iterators appear in the opposite
/// relative order in `order` compared to the array's dimension order counts
/// as one out-of-order access pair. This is the paper's alternative criterion
/// for when array extents are unknown.
pub fn out_of_order_cost(nest: &Loop, order: &[Var]) -> f64 {
    let position: BTreeMap<&Var, usize> = order.iter().enumerate().map(|(i, v)| (v, i)).collect();
    let mut count = 0usize;
    for comp in nest.computations() {
        for access in comp.accesses() {
            // For each subscript dimension, find the deepest loop iterator it
            // uses (the one that changes it most frequently).
            let dim_positions: Vec<Option<usize>> = access
                .array_ref
                .indices
                .iter()
                .map(|idx| {
                    idx.vars()
                        .iter()
                        .filter_map(|v| position.get(v))
                        .max()
                        .copied()
                })
                .collect();
            for a in 0..dim_positions.len() {
                for b in (a + 1)..dim_positions.len() {
                    if let (Some(pa), Some(pb)) = (dim_positions[a], dim_positions[b]) {
                        // Dimension `a` is outer in memory (larger stride);
                        // its iterator should be at a shallower loop position
                        // than dimension `b`'s iterator.
                        if pa > pb {
                            count += 1;
                        }
                    }
                }
            }
        }
    }
    count as f64
}

/// Convenience: the per-iterator total absolute stride over all accesses of a
/// nest, used for the grouped-sorting approximation on deep nests and as a
/// deterministic tie-breaker.
pub fn iterator_stride_weights(program: &Program, nest: &Loop) -> BTreeMap<Var, f64> {
    let mut weights: BTreeMap<Var, f64> = BTreeMap::new();
    for iter in nest.nested_iterators() {
        weights.entry(iter).or_insert(0.0);
    }
    for comp in nest.computations() {
        for access in comp.accesses() {
            let Ok(array) = program.array(&access.array_ref.array) else {
                continue;
            };
            let Some(offset) = access.array_ref.linear_offset(array, &program.params) else {
                continue;
            };
            for (iter, weight) in weights.iter_mut() {
                *weight += offset.coefficient(iter).unsigned_abs() as f64;
            }
        }
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::prelude::*;

    fn gemm_program() -> Program {
        let update = Computation::reduction(
            "S1",
            ArrayRef::new("C", vec![var("i"), var("j")]),
            BinOp::Add,
            load("A", vec![var("i"), var("k")]) * load("B", vec![var("k"), var("j")]),
        );
        Program::builder("gemm")
            .param("NI", 100)
            .param("NJ", 100)
            .param("NK", 100)
            .array("A", &["NI", "NK"])
            .array("B", &["NK", "NJ"])
            .array("C", &["NI", "NJ"])
            .node(for_loop(
                "i",
                cst(0),
                var("NI"),
                vec![for_loop(
                    "j",
                    cst(0),
                    var("NJ"),
                    vec![for_loop(
                        "k",
                        cst(0),
                        var("NK"),
                        vec![Node::Computation(update)],
                    )],
                )],
            ))
            .build()
            .unwrap()
    }

    fn order(names: &[&str]) -> Vec<Var> {
        names.iter().map(|n| Var::new(*n)).collect()
    }

    #[test]
    fn gemm_ikj_beats_ijk_and_kji() {
        let p = gemm_program();
        let nest = p.loop_nests()[0];
        let ikj = sum_of_strides(&p, nest, &order(&["i", "k", "j"]));
        let ijk = sum_of_strides(&p, nest, &order(&["i", "j", "k"]));
        let kji = sum_of_strides(&p, nest, &order(&["k", "j", "i"]));
        assert!(ikj < ijk, "ikj={ikj} should beat ijk={ijk}");
        assert!(ikj < kji, "ikj={ikj} should beat kji={kji}");
    }

    #[test]
    fn gemm_all_orders_ranked_sensibly() {
        // The two orders with unit-stride innermost accesses (ikj, kij) must
        // rank above the two orders with column-major innermost accesses
        // (jki, kji).
        let p = gemm_program();
        let nest = p.loop_nests()[0];
        let cost = |names: &[&str]| sum_of_strides(&p, nest, &order(names));
        let best = cost(&["i", "k", "j"]).min(cost(&["k", "i", "j"]));
        let worst = cost(&["j", "k", "i"]).min(cost(&["k", "j", "i"]));
        assert!(best < worst);
    }

    #[test]
    fn transposed_copy_prefers_matching_order() {
        // B[i][j] = A[i][j] prefers (i, j); D[j][i] = C[j][i] prefers (j, i)
        // when loops are named (i, j) over those subscripts.
        let s = Computation::assign(
            "S1",
            ArrayRef::new("D", vec![var("j"), var("i")]),
            load("C", vec![var("j"), var("i")]),
        );
        let p = Program::builder("copy_t")
            .param("N", 64)
            .param("M", 64)
            .array("C", &["M", "N"])
            .array("D", &["M", "N"])
            .node(for_loop(
                "i",
                cst(0),
                var("N"),
                vec![for_loop("j", cst(0), var("M"), vec![Node::Computation(s)])],
            ))
            .build()
            .unwrap();
        let nest = p.loop_nests()[0];
        let ij = sum_of_strides(&p, nest, &order(&["i", "j"]));
        let ji = sum_of_strides(&p, nest, &order(&["j", "i"]));
        assert!(ji < ij);
    }

    #[test]
    fn out_of_order_cost_detects_transposed_access() {
        let s = Computation::assign(
            "S1",
            ArrayRef::new("D", vec![var("j"), var("i")]),
            load("C", vec![var("j"), var("i")]),
        );
        let p = Program::builder("copy_t")
            .param("N", 8)
            .param("M", 8)
            .array("C", &["M", "N"])
            .array("D", &["M", "N"])
            .node(for_loop(
                "i",
                cst(0),
                var("N"),
                vec![for_loop("j", cst(0), var("M"), vec![Node::Computation(s)])],
            ))
            .build()
            .unwrap();
        let nest = p.loop_nests()[0];
        assert_eq!(out_of_order_cost(nest, &order(&["i", "j"])), 2.0);
        assert_eq!(out_of_order_cost(nest, &order(&["j", "i"])), 0.0);
    }

    #[test]
    fn out_of_order_cost_for_gemm() {
        let p = gemm_program();
        let nest = p.loop_nests()[0];
        // (i, k, j): A[i][k] in order, B[k][j] in order, C[i][j] in order
        // (reads + reduction read + write of C count separately).
        assert_eq!(out_of_order_cost(nest, &order(&["i", "k", "j"])), 0.0);
        // (j, k, i): every 2-D access is reversed.
        assert!(out_of_order_cost(nest, &order(&["j", "k", "i"])) >= 4.0);
    }

    #[test]
    fn iterator_weights_reflect_linearized_strides() {
        let p = gemm_program();
        let nest = p.loop_nests()[0];
        let w = iterator_stride_weights(&p, nest);
        // i appears with stride 100 in A and twice (read+write) with stride
        // 100 in C; j with stride 1 in B and C (x2 for C), k with stride 1 in
        // A and 100 in B.
        assert_eq!(w[&Var::new("i")], 300.0);
        assert_eq!(w[&Var::new("j")], 3.0);
        assert_eq!(w[&Var::new("k")], 101.0);
    }

    #[test]
    fn temporal_reuse_is_free() {
        // s[0] += A[i]: the write target has stride 0 along i.
        let s = Computation::reduction(
            "S1",
            ArrayRef::new("s", vec![cst(0)]),
            BinOp::Add,
            load("A", vec![var("i")]),
        );
        let p = Program::builder("reduce")
            .param("N", 64)
            .param("ONE", 1)
            .array("A", &["N"])
            .array("s", &["ONE"])
            .node(for_loop("i", cst(0), var("N"), vec![Node::Computation(s)]))
            .build()
            .unwrap();
        let nest = p.loop_nests()[0];
        let cost = sum_of_strides(&p, nest, &order(&["i"]));
        // Only the A[i] load contributes stride 1; the two accesses to s are
        // free.
        assert!((cost - 1.0).abs() < 1e-9);
    }
}
