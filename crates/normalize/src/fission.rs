//! Maximal loop fission (the first normalization criterion, §2.1).

use dependence::{analyze, sccs_of_body, DependenceGraph};
use loop_ir::nest::{Loop, Node};
use loop_ir::program::Program;
use transforms::fission::distribute;

/// The maximal-loop-fission normalization pass.
///
/// Every loop body is distributed into one loop per strongly connected
/// component of the dependence graph restricted to that body, recursively and
/// to a fixed point. The resulting loop nests are "atomic": their bodies
/// contain computations and loops that cannot be separated due to data
/// dependences.
#[derive(Debug, Clone, Default)]
pub struct MaximalFission {
    /// Upper bound on fixed-point iterations (a safety net; one bottom-up
    /// sweep already reaches the fixed point for well-formed programs).
    pub max_iterations: usize,
}

/// Statistics reported by the fission pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FissionStats {
    /// Number of loops whose body was split.
    pub loops_split: usize,
    /// Number of top-level loop nests before the pass.
    pub nests_before: usize,
    /// Number of top-level loop nests after the pass.
    pub nests_after: usize,
    /// Number of fixed-point iterations executed.
    pub iterations: usize,
}

impl MaximalFission {
    /// Creates the pass with the default iteration bound.
    pub fn new() -> Self {
        MaximalFission { max_iterations: 8 }
    }

    /// Runs the pass on a program, returning the fissioned program and
    /// statistics. Computation identifiers are preserved.
    pub fn run(&self, program: &Program) -> (Program, FissionStats) {
        let mut stats = FissionStats {
            nests_before: program.loop_nests().len(),
            ..FissionStats::default()
        };
        let mut current = program.clone();
        let limit = self.max_iterations.max(1);
        for _ in 0..limit {
            stats.iterations += 1;
            // Fission never changes any computation, so the dependence graph
            // of the original program stays valid across iterations; it is
            // recomputed per iteration only to keep the pass self-contained.
            let graph = analyze(&current);
            let mut split_count = 0usize;
            let mut new_body = Vec::new();
            for node in &current.body {
                new_body.extend(fission_node(node, &graph, &mut split_count));
            }
            let changed = split_count > 0;
            stats.loops_split += split_count;
            current.body = new_body;
            if !changed {
                break;
            }
        }
        stats.nests_after = current.loop_nests().len();
        (current, stats)
    }
}

/// Recursively fissions a node bottom-up: inner loops first, then the node's
/// own body is distributed by dependence SCCs.
fn fission_node(node: &Node, graph: &DependenceGraph, split_count: &mut usize) -> Vec<Node> {
    match node {
        Node::Computation(_) | Node::Call(_) => vec![node.clone()],
        Node::Loop(l) => {
            // First, maximally fission every child.
            let mut new_body = Vec::new();
            for child in &l.body {
                new_body.extend(fission_node(child, graph, split_count));
            }
            let mut rebuilt = Loop::new(l.iter.clone(), l.lower.clone(), l.upper.clone(), new_body);
            rebuilt.step = l.step;
            rebuilt.schedule = l.schedule;

            if rebuilt.body.len() <= 1 {
                return vec![Node::Loop(rebuilt)];
            }
            // Distribute the body by dependence SCCs, in topological order.
            let groups = sccs_of_body(graph, &rebuilt.body);
            if groups.len() <= 1 {
                return vec![Node::Loop(rebuilt)];
            }
            *split_count += 1;
            distribute(&rebuilt, &groups)
                .expect("SCC indices are valid body indices")
                .into_iter()
                .map(Node::Loop)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::prelude::*;

    /// The paper's Figure 3a: two independent computations with contiguous
    /// and strided accesses sharing one loop nest.
    fn figure3a() -> Program {
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("B", vec![var("i"), var("j")]),
            load("A", vec![var("i"), var("j")]) * fconst(2.0),
        );
        let s2 = Computation::assign(
            "S2",
            ArrayRef::new("D", vec![var("j"), var("i")]),
            load("C", vec![var("j"), var("i")]) + fconst(1.0),
        );
        Program::builder("figure3a")
            .param("N", 16)
            .param("M", 16)
            .array("A", &["N", "M"])
            .array("B", &["N", "M"])
            .array("C", &["M", "N"])
            .array("D", &["M", "N"])
            .node(for_loop(
                "i",
                cst(0),
                var("N"),
                vec![for_loop(
                    "j",
                    cst(0),
                    var("M"),
                    vec![Node::Computation(s1), Node::Computation(s2)],
                )],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn figure3a_splits_into_two_nests() {
        let (fissioned, stats) = MaximalFission::new().run(&figure3a());
        // The inner loop is split and then the outer loop is split around the
        // two inner loops, yielding two separate two-deep nests (Fig. 3b).
        assert_eq!(fissioned.loop_nests().len(), 2);
        assert_eq!(stats.nests_before, 1);
        assert_eq!(stats.nests_after, 2);
        assert!(stats.loops_split >= 2);
        assert!(fissioned.validate().is_ok());
        let first = fissioned.loop_nests()[0];
        let second = fissioned.loop_nests()[1];
        assert_eq!(first.computations()[0].name, "S1");
        assert_eq!(second.computations()[0].name, "S2");
        assert_eq!(first.depth(), 2);
        assert_eq!(second.depth(), 2);
    }

    #[test]
    fn fission_preserves_computation_ids() {
        let p = figure3a();
        let ids_before: Vec<_> = p.computations().iter().map(|c| c.id).collect();
        let (fissioned, _) = MaximalFission::new().run(&p);
        let mut ids_after: Vec<_> = fissioned.computations().iter().map(|c| c.id).collect();
        ids_after.sort();
        let mut expected = ids_before.clone();
        expected.sort();
        assert_eq!(ids_after, expected);
    }

    #[test]
    fn dependent_statements_stay_together() {
        // S1 consumes A produced by S2 in the *previous* iteration, and S2
        // consumes T produced by S1 in the *same* iteration: a genuine
        // cross-iteration cycle, so the two statements cannot be separated.
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("T", vec![var("i")]),
            load("A", vec![var("i") - cst(1)]),
        );
        let s2 = Computation::assign(
            "S2",
            ArrayRef::new("A", vec![var("i")]),
            load("T", vec![var("i")]) + fconst(1.0),
        );
        let p = Program::builder("cycle")
            .param("N", 16)
            .array("A", &["N"])
            .array("T", &["N"])
            .node(for_loop(
                "i",
                cst(1),
                var("N"),
                vec![Node::Computation(s1), Node::Computation(s2)],
            ))
            .build()
            .unwrap();
        let (fissioned, stats) = MaximalFission::new().run(&p);
        // S2 writes A which S1 reads in a later iteration, and S1 writes T
        // which S2 reads in the same iteration: a dependence cycle, so the
        // statements must stay in one loop.
        assert_eq!(fissioned.loop_nests().len(), 1);
        assert_eq!(stats.loops_split, 0);
        assert_eq!(fissioned.loop_nests()[0].computations().len(), 2);
    }

    #[test]
    fn producer_consumer_is_distributed_in_order() {
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("T", vec![var("i")]),
            load("A", vec![var("i")]),
        );
        let s2 = Computation::assign(
            "S2",
            ArrayRef::new("B", vec![var("i")]),
            load("T", vec![var("i")]) * fconst(3.0),
        );
        let p = Program::builder("prodcons")
            .param("N", 16)
            .array("A", &["N"])
            .array("B", &["N"])
            .array("T", &["N"])
            .node(for_loop(
                "i",
                cst(0),
                var("N"),
                vec![Node::Computation(s1), Node::Computation(s2)],
            ))
            .build()
            .unwrap();
        let (fissioned, _) = MaximalFission::new().run(&p);
        assert_eq!(fissioned.loop_nests().len(), 2);
        // Producer loop must come first.
        assert_eq!(fissioned.loop_nests()[0].computations()[0].name, "S1");
        assert_eq!(fissioned.loop_nests()[1].computations()[0].name, "S2");
    }

    #[test]
    fn gemm_init_and_update_separate() {
        // The classic PolyBench GEMM: C[i][j] *= beta; then k-loop update.
        // Fission separates the scaling statement from the reduction loop.
        let init = Computation::assign(
            "S0",
            ArrayRef::new("C", vec![var("i"), var("j")]),
            load("C", vec![var("i"), var("j")]) * param("beta"),
        );
        let update = Computation::reduction(
            "S1",
            ArrayRef::new("C", vec![var("i"), var("j")]),
            BinOp::Add,
            load("A", vec![var("i"), var("k")]) * load("B", vec![var("k"), var("j")]),
        );
        let p = Program::builder("gemm")
            .param("NI", 8)
            .param("NJ", 8)
            .param("NK", 8)
            .scalar("beta", 1.2)
            .array("A", &["NI", "NK"])
            .array("B", &["NK", "NJ"])
            .array("C", &["NI", "NJ"])
            .node(for_loop(
                "i",
                cst(0),
                var("NI"),
                vec![for_loop(
                    "j",
                    cst(0),
                    var("NJ"),
                    vec![
                        Node::Computation(init),
                        for_loop("k", cst(0), var("NK"), vec![Node::Computation(update)]),
                    ],
                )],
            ))
            .build()
            .unwrap();
        let (fissioned, _) = MaximalFission::new().run(&p);
        assert_eq!(fissioned.loop_nests().len(), 2);
        let first = fissioned.loop_nests()[0];
        let second = fissioned.loop_nests()[1];
        assert_eq!(first.computations()[0].name, "S0");
        assert_eq!(first.depth(), 2);
        assert_eq!(second.computations()[0].name, "S1");
        assert_eq!(second.depth(), 3);
        assert!(second.is_perfect_nest());
    }

    #[test]
    fn already_atomic_program_is_unchanged() {
        let p = figure3a();
        let (once, _) = MaximalFission::new().run(&p);
        let (twice, stats) = MaximalFission::new().run(&once);
        assert_eq!(once, twice);
        assert_eq!(stats.loops_split, 0);
        assert_eq!(stats.iterations, 1);
    }

    #[test]
    fn iteration_bound_is_respected() {
        let pass = MaximalFission { max_iterations: 1 };
        let (fissioned, stats) = pass.run(&figure3a());
        assert_eq!(stats.iterations, 1);
        // One bottom-up sweep already reaches the fixed point.
        assert_eq!(fissioned.loop_nests().len(), 2);
    }
}
