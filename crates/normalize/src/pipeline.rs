//! The two-step normalization pipeline (paper Figure 5).

use loop_ir::program::Program;

use crate::fission::{FissionStats, MaximalFission};
use crate::permute::{PermutationStats, StrideMinimization};

/// Which steps of the pipeline to run. Used by the ablation study (Figure 7),
/// which compares optimization with and without prior normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalizerConfig {
    /// Run maximal loop fission.
    pub fission: bool,
    /// Run stride minimization.
    pub stride_minimization: bool,
}

impl Default for NormalizerConfig {
    fn default() -> Self {
        NormalizerConfig {
            fission: true,
            stride_minimization: true,
        }
    }
}

/// Aggregated statistics of a normalization run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NormalizationStats {
    /// Statistics of the maximal-fission step (zeroed if skipped).
    pub fission: FissionStats,
    /// Statistics of the stride-minimization step (zeroed if skipped).
    pub permutation: PermutationStats,
}

/// A normalized program together with the statistics of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedProgram {
    /// The canonical-form program.
    pub program: Program,
    /// What the pipeline changed.
    pub stats: NormalizationStats,
}

/// The a priori loop nest normalization pipeline: maximal loop fission
/// followed by stride minimization.
#[derive(Debug, Clone, Default)]
pub struct Normalizer {
    config: NormalizerConfig,
    fission: MaximalFission,
    stride: StrideMinimization,
}

impl Normalizer {
    /// Creates the full pipeline (both criteria enabled).
    pub fn new() -> Self {
        Normalizer {
            config: NormalizerConfig::default(),
            fission: MaximalFission::new(),
            stride: StrideMinimization::new(),
        }
    }

    /// Creates a pipeline with an explicit step selection (for ablations).
    pub fn with_config(config: NormalizerConfig) -> Self {
        Normalizer {
            config,
            fission: MaximalFission::new(),
            stride: StrideMinimization::new(),
        }
    }

    /// The configured step selection.
    pub fn config(&self) -> NormalizerConfig {
        self.config
    }

    /// Runs the pipeline on a program.
    ///
    /// # Errors
    /// Returns the first validation error if a pass produced an ill-formed
    /// program — this is a bug guard; a well-formed input always normalizes
    /// to a well-formed output.
    pub fn run(&self, program: &Program) -> loop_ir::Result<NormalizedProgram> {
        let mut stats = NormalizationStats::default();
        let mut current = program.clone();
        if self.config.fission {
            let (fissioned, fission_stats) = self.fission.run(&current);
            current = fissioned;
            stats.fission = fission_stats;
        }
        if self.config.stride_minimization {
            let (permuted, permute_stats) = self.stride.run(&current);
            current = permuted;
            stats.permutation = permute_stats;
        }
        current.validate()?;
        Ok(NormalizedProgram {
            program: current,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;

    /// The paper's running example (Figure 3): two independent computations
    /// with contiguous and strided accesses in a single loop, normalized into
    /// two loop nests with minimized strides (Figure 3c).
    const FIGURE3: &str = r#"
        program figure3 {
          param N = 32; param M = 48;
          array A[N][M]; array B[N][M];
          array C[M][N]; array D[M][N];
          for i in 0..N {
            for j in 0..M {
              B[i][j] = A[i][j] * 2.0;
              D[j][i] = C[j][i] + 1.0;
            }
          }
        }
    "#;

    #[test]
    fn figure3_normalizes_to_two_stride_minimal_nests() {
        let p = parse_program(FIGURE3).unwrap();
        let normalized = Normalizer::new().run(&p).unwrap();
        let nests = normalized.program.loop_nests();
        assert_eq!(nests.len(), 2);
        // First nest keeps (i, j) for the row-major access B[i][j] = A[i][j].
        let first: Vec<String> = nests[0]
            .nested_iterators()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(first, vec!["i", "j"]);
        // Second nest is permuted to (j, i) so that D[j][i] = C[j][i] becomes
        // unit-stride innermost (Figure 3c).
        let second: Vec<String> = nests[1]
            .nested_iterators()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(second, vec!["j", "i"]);
        assert!(normalized.stats.fission.loops_split >= 1);
        assert_eq!(normalized.stats.permutation.nests_permuted, 1);
    }

    #[test]
    fn config_controls_which_steps_run() {
        let p = parse_program(FIGURE3).unwrap();
        let fission_only = Normalizer::with_config(NormalizerConfig {
            fission: true,
            stride_minimization: false,
        })
        .run(&p)
        .unwrap();
        assert_eq!(fission_only.program.loop_nests().len(), 2);
        assert_eq!(fission_only.stats.permutation.nests_examined, 0);

        let stride_only = Normalizer::with_config(NormalizerConfig {
            fission: false,
            stride_minimization: true,
        })
        .run(&p)
        .unwrap();
        // Without fission the single fused nest cannot pick a good order for
        // both statements at once; it stays a single nest.
        assert_eq!(stride_only.program.loop_nests().len(), 1);
        assert_eq!(stride_only.stats.fission.loops_split, 0);

        let disabled = Normalizer::with_config(NormalizerConfig {
            fission: false,
            stride_minimization: false,
        })
        .run(&p)
        .unwrap();
        assert_eq!(disabled.program, p);
    }

    #[test]
    fn normalization_is_idempotent() {
        let p = parse_program(FIGURE3).unwrap();
        let once = Normalizer::new().run(&p).unwrap();
        let twice = Normalizer::new().run(&once.program).unwrap();
        assert_eq!(once.program, twice.program);
        assert_eq!(twice.stats.fission.loops_split, 0);
        assert_eq!(twice.stats.permutation.nests_permuted, 0);
    }

    #[test]
    fn semantically_equivalent_variants_reach_the_same_canonical_form() {
        // The same two computations written the other way around and with the
        // loops interchanged must normalize to the same canonical program
        // body (modulo statement names).
        let variant = r#"
            program figure3_variant {
              param N = 32; param M = 48;
              array A[N][M]; array B[N][M];
              array C[M][N]; array D[M][N];
              for j in 0..M {
                for i in 0..N {
                  D[j][i] = C[j][i] + 1.0;
                  B[i][j] = A[i][j] * 2.0;
                }
              }
            }
        "#;
        let a = Normalizer::new()
            .run(&parse_program(FIGURE3).unwrap())
            .unwrap();
        let b = Normalizer::new()
            .run(&parse_program(variant).unwrap())
            .unwrap();
        // Compare canonical structure: the set of (iterator order, statement
        // target array) pairs per nest.
        let shape = |p: &loop_ir::Program| {
            let mut nests: Vec<(Vec<String>, Vec<String>)> = p
                .loop_nests()
                .iter()
                .map(|l| {
                    (
                        l.nested_iterators().iter().map(|v| v.to_string()).collect(),
                        l.computations()
                            .iter()
                            .map(|c| c.target.array.to_string())
                            .collect(),
                    )
                })
                .collect();
            nests.sort();
            nests
        };
        assert_eq!(shape(&a.program), shape(&b.program));
    }

    #[test]
    fn default_normalizer_enables_both_steps() {
        let n = Normalizer::default();
        // Default-constructed config mirrors `new`.
        assert_eq!(n.config(), NormalizerConfig::default());
        assert!(NormalizerConfig::default().fission);
        assert!(NormalizerConfig::default().stride_minimization);
    }
}
