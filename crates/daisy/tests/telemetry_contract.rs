//! Instrumentation contracts of the scheduling stack, asserted through a
//! [`CollectingRecorder`]: which spans a cold seeding emits, that a warm
//! start emits **zero** `search.generation` spans (the whole point of the
//! persistent store), that `schedule()` reports its four phases, and that
//! counter values are deterministic across identical runs.
//!
//! Every test runs inside `telemetry::with_recorder`, which serializes on
//! the process-global recorder — tests in this file can run on any number
//! of harness threads without cross-contaminating each other's sinks.

use std::sync::Arc;

use daisy::{DaisyConfig, DaisyScheduler};
use loop_ir::parser::parse_program;
use loop_ir::program::Program;
use telemetry::{with_recorder, CollectingRecorder, Event};

fn gemm(n: i64) -> Program {
    parse_program(&format!(
        "program gemm_a {{ param NI = {n}; param NJ = {n}; param NK = {n};
           scalar alpha = 1.5; scalar beta = 1.2;
           array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
           for i in 0..NI {{ for j in 0..NJ {{
             C[i][j] = C[i][j] * beta;
             for k in 0..NK {{ C[i][j] += alpha * A[i][k] * B[k][j]; }}
           }} }} }}"
    ))
    .unwrap()
}

fn config() -> DaisyConfig {
    DaisyConfig {
        idiom_detection: false,
        ..DaisyConfig::default()
    }
}

/// Completed span paths whose leaf segment is `search.generation`,
/// wherever they are rooted (seeding fans out to worker threads, whose
/// spans root at `search`).
fn generation_spans(sink: &CollectingRecorder) -> usize {
    sink.events()
        .iter()
        .filter(|e| {
            matches!(e, Event::SpanExit { path, .. }
                if path == "search.generation" || path.ends_with(".search.generation"))
        })
        .count()
}

#[test]
fn cold_seeding_emits_search_generation_spans_and_search_counters() {
    let sink = Arc::new(CollectingRecorder::default());
    with_recorder(sink.clone(), || {
        let mut scheduler = DaisyScheduler::new(config());
        scheduler.seed_from_programs(&[gemm(128)]);
    });
    assert_eq!(sink.span_count("seeding"), 1);
    assert!(
        generation_spans(&sink) > 0,
        "a cold seeding runs the evolutionary search: {:?}",
        sink.span_paths()
    );
    assert!(
        sink.counter_total("daisy.search.candidates") > 0,
        "the search scores candidates"
    );
    assert!(
        sink.counter_total("daisy.search.candidates")
            >= sink.counter_total("daisy.search.deduped_recipes"),
        "dedupes are a subset of candidates"
    );
}

#[test]
fn warm_start_emits_zero_search_generation_spans() {
    let dir = std::env::temp_dir().join(format!("daisy-telemetry-{}", std::process::id()));
    let path = dir.join("warm.tunedb");
    std::fs::create_dir_all(&dir).unwrap();
    let program = gemm(128);

    // Seed + persist OUTSIDE the recorder scope: only the warm run is
    // under observation.
    let mut cold = DaisyScheduler::new(config());
    cold.seed_from_programs(std::slice::from_ref(&program));
    cold.persist(&path).unwrap();
    let cold_outcome = cold.schedule(&program);

    let sink = Arc::new(CollectingRecorder::default());
    let warm_outcome = with_recorder(sink.clone(), || {
        let mut warm = DaisyScheduler::new(config());
        warm.warm_start(&path).unwrap();
        warm.schedule(&program)
    });
    assert_eq!(cold_outcome, warm_outcome, "warm must match cold");
    assert_eq!(
        generation_spans(&sink),
        0,
        "a warm-started schedule must never re-run the search: {:?}",
        sink.span_paths()
    );
    assert_eq!(sink.span_count("seeding"), 0);
    assert_eq!(sink.span_count("schedule"), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn schedule_reports_its_four_phases_as_nested_spans() {
    let sink = Arc::new(CollectingRecorder::default());
    let outcome = with_recorder(sink.clone(), || {
        DaisyScheduler::new(config()).schedule(&gemm(64))
    });
    for phase in [
        "schedule.normalize",
        "schedule.seed",
        "schedule.search",
        "schedule.cost",
    ] {
        assert_eq!(sink.span_count(phase), 1, "missing {phase}");
    }
    assert_eq!(sink.span_count("schedule"), 1);
    assert!(outcome.phase_timings.total_ns() > 0);
    assert_eq!(sink.counter_total("daisy.schedule.calls"), 1);
}

#[test]
fn counter_values_are_deterministic_across_identical_runs() {
    let run = || {
        let sink = Arc::new(CollectingRecorder::default());
        with_recorder(sink.clone(), || {
            let mut scheduler = DaisyScheduler::new(config());
            scheduler.seed_from_programs(&[gemm(96)]);
            scheduler.schedule(&gemm(96));
        });
        [
            "daisy.search.candidates",
            "daisy.search.deduped_recipes",
            "daisy.search.rejected_precost",
            "daisy.search.rewrites_priced",
            "daisy.plan.candidates_priced",
            "daisy.plan.recipes_applied",
            "daisy.schedule.nests",
            "daisy.seed.nests",
        ]
        .map(|name| (name, sink.counter_total(name)))
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "decision counters must be stable across identical runs"
    );
}
