//! End-to-end crash recovery through the scheduler: seeding is journaled
//! into a `DurableStore` over the fault-injecting storage, the power is
//! cut at sampled operation indices, and the recovered database must be a
//! prefix of the acknowledged seeding sequence — with every surviving
//! entry producing bit-identical [`ScheduleOutcome`]s to a scheduler that
//! never crashed.

use std::path::PathBuf;
use std::sync::Arc;

use daisy::{DaisyConfig, DaisyScheduler};
use loop_ir::parser::parse_program;
use loop_ir::Program;
use tunestore::{
    is_power_cut, FaultPlan, FaultStorage, Snapshot, SourceState, Storage, StoreError,
};

/// PolyBench-style GEMM (A variant), small enough to seed quickly.
fn gemm_a(n: i64) -> Program {
    parse_program(&format!(
        "program gemm_a {{ param NI = {n}; param NJ = {n}; param NK = {n};
           scalar alpha = 1.5; scalar beta = 1.2;
           array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
           for i in 0..NI {{ for j in 0..NJ {{
             C[i][j] = C[i][j] * beta;
             for k in 0..NK {{ C[i][j] += alpha * A[i][k] * B[k][j]; }}
           }} }} }}"
    ))
    .unwrap()
}

/// Equivalent B variant scheduled through transfer tuning, to check the
/// recovered database actually drives scheduling decisions.
fn gemm_b(n: i64) -> Program {
    parse_program(&format!(
        "program gemm_b {{ param NI = {n}; param NJ = {n}; param NK = {n};
           scalar alpha = 1.5; scalar beta = 1.2;
           array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
           for j in 0..NJ {{ for i in 0..NI {{
             C[i][j] = C[i][j] * beta;
           }} }}
           for k in 0..NK {{ for j in 0..NJ {{ for i in 0..NI {{
             C[i][j] += alpha * A[i][k] * B[k][j];
           }} }} }} }}"
    ))
    .unwrap()
}

fn config() -> DaisyConfig {
    // Idiom detection off so the GEMM nests are database-tuned, keeping
    // database entries (and thus the store) on the critical path.
    DaisyConfig {
        idiom_detection: false,
        ..DaisyConfig::default()
    }
}

fn store_path() -> PathBuf {
    PathBuf::from("dir/warm.tunedb")
}

/// Opens the store and seeds into it; any error is returned with however
/// far seeding got already journaled.
fn seed(
    scheduler: &mut DaisyScheduler,
    storage: &Arc<FaultStorage>,
    programs: &[Program],
) -> Result<(), StoreError> {
    let mut store =
        scheduler.open_store_with(Arc::clone(storage) as Arc<dyn Storage>, store_path())?;
    scheduler.seed_into_store(programs, &mut store)?;
    Ok(())
}

#[test]
fn sampled_crash_points_recover_a_bit_identical_prefix() {
    let programs = vec![gemm_a(64)];
    let a = gemm_a(64);
    let b = gemm_b(64);

    // Dry run: no faults. This is the never-crashed reference.
    let dry_storage = Arc::new(FaultStorage::default());
    let mut reference = DaisyScheduler::new(config());
    seed(&mut reference, &dry_storage, &programs).expect("dry seeding succeeds");
    let total = dry_storage.ops();
    let full = reference.database().entries().to_vec();
    assert!(!full.is_empty(), "seeding must produce database entries");
    let reference_a = reference.schedule(&a);
    let reference_b = reference.schedule(&b);

    // Sample crash points across the whole op range (the per-op exhaustive
    // matrix lives in tunestore's crash_matrix; here each trial re-runs
    // the evolutionary search, so we sample).
    let step = (total / 7).max(1) as usize;
    for cut in (0..total).step_by(step) {
        let storage = Arc::new(FaultStorage::new(FaultPlan {
            seed: cut.wrapping_mul(0x2545_F491_4F6C_DD1D),
            crash_at_op: Some(cut),
            flip_bit_on_crash: cut % 2 == 1,
            ..FaultPlan::default()
        }));
        let mut crashed = DaisyScheduler::new(config());
        let error = seed(&mut crashed, &storage, &programs)
            .expect_err("a cut inside the op range must interrupt seeding");
        match &error {
            StoreError::Io(io) => assert!(is_power_cut(io), "cut {cut}: {io}"),
            other => panic!("cut {cut}: unexpected error {other}"),
        }
        storage.crash();
        storage.set_plan(FaultPlan::default());

        // Degrading warm start over the crash image.
        let mut warm = DaisyScheduler::new(config());
        let warm_start = warm
            .warm_start_resilient_with(Arc::clone(&storage) as Arc<dyn Storage>, store_path())
            .expect("recovery after reboot succeeds");
        assert_eq!(warm_start.skipped, 0, "cut {cut}: nothing unrepresentable");
        for source in [&warm_start.health.snapshot, &warm_start.health.journal] {
            assert!(
                !matches!(
                    source,
                    SourceState::Quarantined { .. } | SourceState::Foreign { .. }
                ),
                "cut {cut}: a power cut must only tear, not quarantine: {source}"
            );
        }

        // The recovered database is a prefix of the acknowledged seeding
        // sequence, entry for entry.
        let recovered = warm.database().entries();
        assert!(
            recovered.len() <= full.len(),
            "cut {cut}: recovery cannot invent entries"
        );
        for (index, (got, want)) in recovered.iter().zip(full.iter()).enumerate() {
            assert_eq!(
                got, want,
                "cut {cut}: entry {index} must round-trip exactly"
            );
        }

        // Bit-identity on the surviving entries: the warm scheduler must
        // schedule exactly like a scheduler given the same entries through
        // the strict snapshot path (and, when everything survived, exactly
        // like the reference that never crashed).
        let snapshot = Snapshot {
            fingerprint: warm.store_fingerprint(),
            entries: recovered.iter().map(|e| e.to_stored()).collect(),
        };
        let control_path = std::env::temp_dir().join(format!(
            "daisy-crash-control-{}-{cut}.tunedb",
            std::process::id()
        ));
        snapshot.save(&control_path).unwrap();
        let mut control = DaisyScheduler::new(config());
        control.warm_start(&control_path).unwrap();
        std::fs::remove_file(&control_path).ok();
        assert_eq!(
            warm.schedule(&a),
            control.schedule(&a),
            "cut {cut}: journal-path and snapshot-path scheduling must agree"
        );
        assert_eq!(warm.schedule(&b), control.schedule(&b), "cut {cut}");
        if recovered.len() == full.len() {
            assert_eq!(
                warm.schedule(&a),
                reference_a,
                "cut {cut}: full recovery must match the never-crashed reference"
            );
            assert_eq!(warm.schedule(&b), reference_b, "cut {cut}");
        }
    }
}

#[test]
fn a_crash_free_store_warm_starts_bit_identical_to_cold() {
    let programs = vec![gemm_a(64)];
    let storage = Arc::new(FaultStorage::default());
    let mut cold = DaisyScheduler::new(config());
    seed(&mut cold, &storage, &programs).unwrap();

    let mut warm = DaisyScheduler::new(config());
    let warm_start = warm
        .warm_start_resilient_with(Arc::clone(&storage) as Arc<dyn Storage>, store_path())
        .unwrap();
    assert!(warm_start.is_clean(), "{}", warm_start.health);
    assert_eq!(warm_start.loaded, cold.database().len());
    assert_eq!(warm.database().entries(), cold.database().entries());
    let b = gemm_b(64);
    assert_eq!(warm.schedule(&b), cold.schedule(&b));
}
