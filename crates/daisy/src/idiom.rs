//! BLAS idiom detection.
//!
//! The paper's scheduling database contains, "for each loop nest
//! corresponding to a BLAS-3 kernel, an optimization recipe to perform idiom
//! detection, i.e., replacing the loop nest with the matching BLAS library
//! call" (§4). This module implements the matcher: a normalized, rectangular,
//! perfectly nested loop nest whose single computation has the contraction
//! structure of GEMM / SYRK / SYR2K / GEMV is rewritten into a
//! [`BlasCall`] node.
//!
//! Detection runs on the *normalized* form; the evaluation (§4.3) shows that
//! without normalization the lifting fails on several benchmarks because the
//! loop structure hides the idiom.

use loop_ir::array::ArrayRef;
use loop_ir::expr::{Expr, Var};
use loop_ir::nest::{BlasCall, BlasKind, Computation, Loop};
use loop_ir::program::Program;
use loop_ir::scalar::{BinOp, ScalarExpr};
use transforms::perfect_chain;

/// Attempts to recognize a BLAS kernel in a loop nest.
///
/// Returns the library call that computes the same update, or `None` when
/// the nest does not match any known idiom. Only rectangular (non-triangular)
/// perfect nests with a single reduction computation are considered, so the
/// replacement is always semantics-preserving.
pub fn detect_blas_idiom(program: &Program, nest: &Loop) -> Option<BlasCall> {
    let chain = perfect_chain(nest);
    // Rectangular bounds only: a triangular SYRK updates half the matrix and
    // must not be replaced by a full-matrix library call.
    let chain_iters: Vec<Var> = chain.iter().map(|l| l.iter.clone()).collect();
    for l in &chain {
        for bound in [&l.lower, &l.upper] {
            if bound.vars().iter().any(|v| chain_iters.contains(v)) {
                return None;
            }
        }
    }
    let comps = nest.computations();
    if comps.len() != 1 {
        return None;
    }
    let comp = comps[0];
    if comp.reduction != Some(BinOp::Add) {
        return None;
    }
    match chain.len() {
        3 => detect_level3(program, &chain, comp),
        2 => detect_gemv(program, &chain, comp),
        _ => None,
    }
}

/// Extent of a loop as a symbolic expression.
fn extent(l: &Loop) -> Expr {
    (l.upper.clone() - l.lower.clone()).simplify()
}

/// Splits a product expression into its scalar factors (constants and
/// parameters) and its array loads. Returns `None` if the expression is not a
/// pure product.
fn product_factors(expr: &ScalarExpr) -> Option<(ScalarExpr, Vec<ArrayRef>)> {
    let mut scalars: Vec<ScalarExpr> = Vec::new();
    let mut loads: Vec<ArrayRef> = Vec::new();
    collect_product(expr, &mut scalars, &mut loads)?;
    let alpha = scalars
        .into_iter()
        .fold(None::<ScalarExpr>, |acc, s| match acc {
            None => Some(s),
            Some(prev) => Some(prev * s),
        })
        .unwrap_or(ScalarExpr::Const(1.0));
    Some((alpha, loads))
}

fn collect_product(
    expr: &ScalarExpr,
    scalars: &mut Vec<ScalarExpr>,
    loads: &mut Vec<ArrayRef>,
) -> Option<()> {
    match expr {
        ScalarExpr::Binary(BinOp::Mul, a, b) => {
            collect_product(a, scalars, loads)?;
            collect_product(b, scalars, loads)
        }
        ScalarExpr::Load(r) => {
            loads.push(r.clone());
            Some(())
        }
        ScalarExpr::Const(_) | ScalarExpr::Param(_) => {
            scalars.push(expr.clone());
            Some(())
        }
        _ => None,
    }
}

/// The loop iterator a subscript consists of, if it is exactly one variable.
fn subscript_var(e: &Expr) -> Option<Var> {
    match e {
        Expr::Var(v) => Some(v.clone()),
        _ => None,
    }
}

fn loop_by_iter<'a>(chain: &'a [&'a Loop], iter: &Var) -> Option<&'a Loop> {
    chain.iter().find(|l| &l.iter == iter).copied()
}

fn detect_level3(program: &Program, chain: &[&Loop], comp: &Computation) -> Option<BlasCall> {
    // Target must be C[a][b] with a, b plain loop iterators.
    if comp.target.rank() != 2 {
        return None;
    }
    let a = subscript_var(&comp.target.indices[0])?;
    let b = subscript_var(&comp.target.indices[1])?;
    let chain_iters: Vec<Var> = chain.iter().map(|l| l.iter.clone()).collect();
    if !chain_iters.contains(&a) || !chain_iters.contains(&b) || a == b {
        return None;
    }
    let c = chain_iters.iter().find(|v| **v != a && **v != b)?.clone();

    match comp.value.clone() {
        // SYR2K: C[a][b] += alpha*A[a][c]*B[b][c] + alpha*B[a][c]*A[b][c]
        ScalarExpr::Binary(BinOp::Add, lhs, rhs) => {
            let (alpha1, loads1) = product_factors(&lhs)?;
            let (_alpha2, loads2) = product_factors(&rhs)?;
            if loads1.len() != 2 || loads2.len() != 2 {
                return None;
            }
            let pair = |loads: &[ArrayRef]| -> Option<(Var, Var)> {
                let first = &loads[0];
                let second = &loads[1];
                let ok = |r: &ArrayRef, row: &Var| {
                    r.rank() == 2
                        && subscript_var(&r.indices[0]).as_ref() == Some(row)
                        && subscript_var(&r.indices[1]).as_ref() == Some(&c)
                };
                if ok(first, &a) && ok(second, &b) {
                    Some((first.array.clone(), second.array.clone()))
                } else {
                    None
                }
            };
            let (x1, y1) = pair(&loads1)?;
            let (x2, y2) = pair(&loads2)?;
            // The two terms must use the two matrices in swapped roles.
            if x1 == y2 && y1 == x2 && x1 != y1 {
                let n = extent(loop_by_iter(chain, &a)?);
                let k = extent(loop_by_iter(chain, &c)?);
                return Some(BlasCall {
                    kind: BlasKind::Syr2k,
                    output: comp.target.array.clone(),
                    inputs: vec![x1, y1],
                    dims: vec![n, k],
                    alpha: alpha1,
                    beta: ScalarExpr::Const(1.0),
                });
            }
            None
        }
        // GEMM / SYRK: C[a][b] += alpha * X[a][c] * Y[c][b]  (GEMM)
        //              C[a][b] += alpha * X[a][c] * X[b][c]  (SYRK)
        value => {
            let (alpha, loads) = product_factors(&value)?;
            if loads.len() != 2 {
                return None;
            }
            let (first, second) = (&loads[0], &loads[1]);
            if first.rank() != 2 || second.rank() != 2 {
                return None;
            }
            let sub = |r: &ArrayRef, i: usize| subscript_var(&r.indices[i]);
            // Try GEMM in both factor orders.
            for (x, y) in [(first, second), (second, first)] {
                let gemm_shape = sub(x, 0) == Some(a.clone())
                    && sub(x, 1) == Some(c.clone())
                    && sub(y, 0) == Some(c.clone())
                    && sub(y, 1) == Some(b.clone());
                if gemm_shape {
                    let m = extent(loop_by_iter(chain, &a)?);
                    let n = extent(loop_by_iter(chain, &b)?);
                    let k = extent(loop_by_iter(chain, &c)?);
                    return Some(BlasCall {
                        kind: BlasKind::Gemm,
                        output: comp.target.array.clone(),
                        inputs: vec![x.array.clone(), y.array.clone()],
                        dims: vec![m, n, k],
                        alpha,
                        beta: ScalarExpr::Const(1.0),
                    });
                }
            }
            // SYRK: both loads from the same array, rows a and b, column c.
            if first.array == second.array {
                for (x, y) in [(first, second), (second, first)] {
                    let syrk_shape = sub(x, 0) == Some(a.clone())
                        && sub(x, 1) == Some(c.clone())
                        && sub(y, 0) == Some(b.clone())
                        && sub(y, 1) == Some(c.clone());
                    if syrk_shape {
                        let n = extent(loop_by_iter(chain, &a)?);
                        let k = extent(loop_by_iter(chain, &c)?);
                        return Some(BlasCall {
                            kind: BlasKind::Syrk,
                            output: comp.target.array.clone(),
                            inputs: vec![first.array.clone()],
                            dims: vec![n, k],
                            alpha,
                            beta: ScalarExpr::Const(1.0),
                        });
                    }
                }
            }
            let _ = program;
            None
        }
    }
}

fn detect_gemv(program: &Program, chain: &[&Loop], comp: &Computation) -> Option<BlasCall> {
    let _ = program;
    if comp.target.rank() != 1 {
        return None;
    }
    let i = subscript_var(&comp.target.indices[0])?;
    let chain_iters: Vec<Var> = chain.iter().map(|l| l.iter.clone()).collect();
    if !chain_iters.contains(&i) {
        return None;
    }
    let j = chain_iters.iter().find(|v| **v != i)?.clone();
    let (alpha, loads) = product_factors(&comp.value)?;
    if loads.len() != 2 {
        return None;
    }
    for (mat, vec) in [(&loads[0], &loads[1]), (&loads[1], &loads[0])] {
        if mat.rank() == 2
            && vec.rank() == 1
            && subscript_var(&mat.indices[0]) == Some(i.clone())
            && subscript_var(&mat.indices[1]) == Some(j.clone())
            && subscript_var(&vec.indices[0]) == Some(j.clone())
        {
            let m = extent(loop_by_iter(chain, &i)?);
            let n = extent(loop_by_iter(chain, &j)?);
            return Some(BlasCall {
                kind: BlasKind::Gemv,
                output: comp.target.array.clone(),
                inputs: vec![mat.array.clone(), vec.array.clone()],
                dims: vec![m, n],
                alpha,
                beta: ScalarExpr::Const(1.0),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;

    fn first_nest(program: &Program) -> &Loop {
        program.loop_nests()[0]
    }

    #[test]
    fn gemm_update_is_detected_in_any_loop_order() {
        for order in ["i j k", "i k j", "k i j"] {
            let loops: Vec<&str> = order.split(' ').collect();
            let bound = |it: &str| match it {
                "i" => "NI",
                "j" => "NJ",
                _ => "NK",
            };
            let p = parse_program(&format!(
                "program gemm {{ param NI = 8; param NJ = 9; param NK = 10;
                   scalar alpha = 1.5;
                   array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
                   for {l0} in 0..{b0} {{ for {l1} in 0..{b1} {{ for {l2} in 0..{b2} {{
                     C[i][j] += alpha * A[i][k] * B[k][j];
                   }} }} }} }}",
                l0 = loops[0],
                l1 = loops[1],
                l2 = loops[2],
                b0 = bound(loops[0]),
                b1 = bound(loops[1]),
                b2 = bound(loops[2]),
            ))
            .unwrap();
            let call = detect_blas_idiom(&p, first_nest(&p)).expect("gemm should be detected");
            assert_eq!(call.kind, BlasKind::Gemm);
            assert_eq!(call.output, Var::new("C"));
            assert_eq!(call.inputs, vec![Var::new("A"), Var::new("B")]);
            let dims: Vec<i64> = call
                .dims
                .iter()
                .map(|d| d.eval(&p.params).unwrap())
                .collect();
            assert_eq!(dims, vec![8, 9, 10]);
        }
    }

    #[test]
    fn syrk_full_update_is_detected() {
        let p = parse_program(
            "program syrk { param N = 8; param M = 6; scalar alpha = 2.0;
               array A[N][M]; array C[N][N];
               for i in 0..N { for j in 0..N { for k in 0..M {
                 C[i][j] += alpha * A[i][k] * A[j][k];
               } } } }",
        )
        .unwrap();
        let call = detect_blas_idiom(&p, first_nest(&p)).expect("syrk detected");
        assert_eq!(call.kind, BlasKind::Syrk);
        assert_eq!(call.inputs, vec![Var::new("A")]);
    }

    #[test]
    fn syr2k_is_detected() {
        let p = parse_program(
            "program syr2k { param N = 8; param M = 6; scalar alpha = 2.0;
               array A[N][M]; array B[N][M]; array C[N][N];
               for i in 0..N { for j in 0..N { for k in 0..M {
                 C[i][j] += alpha * A[i][k] * B[j][k] + alpha * B[i][k] * A[j][k];
               } } } }",
        )
        .unwrap();
        let call = detect_blas_idiom(&p, first_nest(&p)).expect("syr2k detected");
        assert_eq!(call.kind, BlasKind::Syr2k);
        assert_eq!(call.inputs.len(), 2);
    }

    #[test]
    fn gemv_is_detected() {
        let p = parse_program(
            "program gemv { param N = 8; param M = 6;
               array A[N][M]; array x[M]; array y[N];
               for i in 0..N { for j in 0..M {
                 y[i] += A[i][j] * x[j];
               } } }",
        )
        .unwrap();
        let call = detect_blas_idiom(&p, first_nest(&p)).expect("gemv detected");
        assert_eq!(call.kind, BlasKind::Gemv);
        assert_eq!(call.inputs, vec![Var::new("A"), Var::new("x")]);
    }

    #[test]
    fn triangular_syrk_is_not_replaced() {
        let p = parse_program(
            "program syrk_tri { param N = 8; param M = 6;
               array A[N][M]; array C[N][N];
               for i in 0..N { for j in 0..i + 1 { for k in 0..M {
                 C[i][j] += A[i][k] * A[j][k];
               } } } }",
        )
        .unwrap();
        assert!(detect_blas_idiom(&p, first_nest(&p)).is_none());
    }

    #[test]
    fn elementwise_and_multi_statement_nests_are_rejected() {
        let elementwise = parse_program(
            "program ew { param N = 8; array A[N][N]; array B[N][N];
               for i in 0..N { for j in 0..N { B[i][j] = A[i][j] * 2.0; } } }",
        )
        .unwrap();
        assert!(detect_blas_idiom(&elementwise, first_nest(&elementwise)).is_none());

        let fused = parse_program(
            "program fused { param N = 8; scalar beta = 0.5;
               array A[N][N]; array B[N][N]; array C[N][N];
               for i in 0..N { for j in 0..N {
                 C[i][j] = C[i][j] * beta;
                 for k in 0..N { C[i][j] += A[i][k] * B[k][j]; }
               } } }",
        )
        .unwrap();
        // The fused (unnormalized) GEMM is not recognized — exactly the
        // failure mode normalization removes.
        assert!(detect_blas_idiom(&fused, first_nest(&fused)).is_none());
    }

    #[test]
    fn unrelated_contraction_is_not_misdetected() {
        // C[i][j] += A[i][k] * B[j][k] is a GEMM with B transposed, which the
        // matcher deliberately does not claim (it is neither plain GEMM nor
        // SYRK because the arrays differ).
        let p = parse_program(
            "program nt { param N = 8; array A[N][N]; array B[N][N]; array C[N][N];
               for i in 0..N { for j in 0..N { for k in 0..N {
                 C[i][j] += A[i][k] * B[j][k];
               } } } }",
        )
        .unwrap();
        assert!(detect_blas_idiom(&p, first_nest(&p)).is_none());
    }

    #[test]
    fn alpha_factor_is_preserved() {
        let p = parse_program(
            "program gemm { param N = 4; scalar alpha = 3.0;
               array A[N][N]; array B[N][N]; array C[N][N];
               for i in 0..N { for j in 0..N { for k in 0..N {
                 C[i][j] += alpha * A[i][k] * B[k][j];
               } } } }",
        )
        .unwrap();
        let call = detect_blas_idiom(&p, first_nest(&p)).unwrap();
        match call.alpha {
            ScalarExpr::Param(ref v) => assert_eq!(v, &Var::new("alpha")),
            ref other => panic!("expected alpha parameter, got {other:?}"),
        }
    }
}
