//! # daisy — the normalized auto-scheduler
//!
//! The paper's auto-scheduler (§4) combines a priori loop nest normalization
//! with similarity-based transfer tuning:
//!
//! 1. programs are normalized ([`normalize::Normalizer`]),
//! 2. loop nests matching a BLAS-3 kernel are replaced with library calls
//!    ([`idiom`]),
//! 3. for the remaining nests, a database of `(performance embedding,
//!    transformation recipe)` pairs ([`database`]) is queried by Euclidean
//!    distance of the embeddings ([`embedding`]); the database is seeded from
//!    the normalized A variants using an evolutionary search ([`search`]),
//! 4. the chosen recipes (interchange, tiling, parallelization,
//!    vectorization) are applied and the result is costed on the machine
//!    model.
//!
//! The entry point is [`scheduler::DaisyScheduler`]. A seeded database can
//! be persisted to disk ([`DaisyScheduler::persist`]) and reloaded
//! ([`DaisyScheduler::warm_start`]) through the `tunestore` snapshot
//! format, skipping the seeding search entirely while producing
//! bit-identical schedules.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod database;
pub mod embedding;
pub mod idiom;
pub mod scheduler;
pub mod search;

pub use database::{nest_key, DatabaseEntry, TuningDatabase};
pub use embedding::PerformanceEmbedding;
pub use idiom::detect_blas_idiom;
pub use scheduler::{DaisyConfig, DaisyScheduler, ScheduleOutcome, WarmStart};
pub use search::{
    nest_scoped_graph, recipe_is_semantically_legal, EvolutionarySearch, SearchConfig,
};
