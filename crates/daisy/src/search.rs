//! Evolutionary search for optimization recipes.
//!
//! The paper seeds the scheduling database with recipes found by an
//! evolutionary search: the first epoch's population is seeded by the
//! Tiramisu auto-scheduler's proposals and refined through mutation and
//! selection with the measured runtime as fitness; later epochs re-seed from
//! the best recipes of the most similar loop nests (§4). Here the fitness is
//! the analytical cost model and the initial proposals come from a
//! structural proposal generator playing the role of the Tiramisu seed.
//!
//! # Evaluation pipeline
//!
//! Candidate evaluation — the dominant cost of the search — is incremental
//! and staged so the expensive part runs as rarely and as concurrently as
//! possible. The base program's per-node costs are priced once; a candidate
//! then differs from the base only in the nest the recipe rewrote, so its
//! score is the base costs with that one slot re-priced (summed in the same
//! order as a full [`CostModel::estimate`], so scores are bit-identical to
//! the naive path). Per candidate:
//!
//! 1. **Dedupe.** Recipes are fingerprinted; one identical to a recipe
//!    already scored anywhere in this search reuses its score without even
//!    being re-applied. (The duplicate stays in the population — selection
//!    dynamics are unchanged — it is only never re-evaluated.) Distinct
//!    recipes whose rewrites happen to be structurally identical are caught
//!    one stage later by the cost model's structural-hash memo.
//! 2. **Early reject.** A surviving recipe is checked against the nest's
//!    dependence graph — parallelizing a loop that carries a dependence or
//!    requesting a lexicographically negative permutation scores
//!    `f64::INFINITY` outright (previously the cost model's atomic penalty
//!    merely down-ranked such candidates) — and then *applied to the nest
//!    alone* (cheap, structural — no program clone); recipes whose
//!    transform legality check fails are likewise rejected without ever
//!    reaching the cost model.
//! 3. **Batched costing.** The unique legal rewrites of a generation are
//!    grouped by the rewrite's structural hash — distinct recipes that
//!    converge on the same lowered rewrite share one pricing — and the
//!    groups are priced on scoped worker threads (adaptively — tiny batches
//!    stay on the calling thread), each worker sharing the model's memo
//!    tables (per-nest costs and per-computation run summaries, so even
//!    structurally distinct candidates that merely permute or re-annotate
//!    outer loops re-price from cached run summaries).
//!
//! Results are deterministic: mutation draws happen on the single-threaded
//! RNG before evaluation, and scores are written back by candidate index.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};

use dependence::{is_permutation_legal, DependenceGraph};
use loop_ir::expr::Var;
use loop_ir::nest::{Loop, Node};
use loop_ir::program::Program;
use loop_ir::structural_hash_nodes;
use machine::CostModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use transforms::{perfect_chain, Recipe, Transform};

/// Maps `f` over `items` on scoped worker threads, preserving order.
pub(crate) fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    parallel_map_with(0, items, f)
}

/// The worker-thread count [`parallel_map_with`] actually uses for a
/// request: `0` means "the machine decides"; any explicit request is clamped
/// to [`std::thread::available_parallelism`] — oversubscribing cores only
/// adds spawn and scheduling overhead (a 12-worker request on a 1-core
/// machine made the PR 4 parallel scheduler ~0.84x of sequential, see
/// `BENCH_PR4.json`) — and to the item count.
pub(crate) fn effective_workers(requested: usize, items: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let requested = if requested == 0 {
        available
    } else {
        requested.min(available)
    };
    requested.min(items)
}

/// Maps `f` over `items` on `workers` scoped worker threads, preserving
/// order. `workers == 0` uses the machine's available parallelism; `1` runs
/// on the calling thread; larger requests are clamped by
/// [`effective_workers`]. Results are written back by item index, so the
/// output is independent of the worker count for any pure `f`.
///
/// A panic inside `f` is contained to the item that raised it: the worker
/// catches it, leaves the slot empty, and keeps draining the queue, so one
/// poisoned item can never take a whole seeding or scheduling fan-out down
/// with it. Each poisoned item is then retried *sequentially* on the
/// calling thread — a transient panic heals, and a deterministic one
/// re-raises there with an intact single-threaded backtrace instead of a
/// cross-thread join error.
pub(crate) fn parallel_map_with<T: Sync, R: Send>(
    workers: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let workers = effective_workers(workers, items.len());
    if !items.is_empty() {
        // Worker utilization: how many jobs a fan-out had, how many
        // workers served it. The per-worker item distribution (histogram)
        // is inherently racy — the counters are the deterministic part.
        telemetry::counter("daisy.parallel.jobs", items.len() as u64);
        telemetry::counter("daisy.parallel.workers", workers.max(1) as u64);
    }
    if workers <= 1 {
        // Same containment contract as the threaded path: one caught
        // attempt, then a bare retry that lets a persistent panic surface.
        return items
            .iter()
            .map(|item| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)))
                    .unwrap_or_else(|_| f(item))
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= items.len() {
                            return out;
                        }
                        let item = &items[index];
                        let attempt =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
                        if let Ok(value) = attempt {
                            out.push((index, value));
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            // A worker body only exits by returning `out`; a join error
            // would mean a panic escaped catch_unwind (an abort-on-unwind
            // payload) — skip it and let the sequential retry decide.
            let Ok(chunk) = handle.join() else { continue };
            telemetry::histogram("daisy.parallel.worker_items", chunk.len() as u64);
            for (index, value) in chunk {
                results[index] = Some(value);
            }
        }
    });
    items
        .iter()
        .zip(results)
        .map(|(item, slot)| match slot {
            Some(value) => value,
            None => f(item),
        })
        .collect()
}

/// Configuration of the evolutionary search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Number of epochs (the paper uses three).
    pub epochs: usize,
    /// Refinement iterations per epoch (the paper uses three).
    pub iterations_per_epoch: usize,
    /// Population size.
    pub population: usize,
    /// RNG seed, fixed for reproducibility.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            epochs: 3,
            iterations_per_epoch: 3,
            population: 12,
            seed: 0xDA15F,
        }
    }
}

/// The evolutionary recipe search.
#[derive(Debug, Clone)]
pub struct EvolutionarySearch {
    config: SearchConfig,
    tile_sizes: Vec<i64>,
    parallel: bool,
    reference_eval: bool,
}

impl Default for EvolutionarySearch {
    fn default() -> Self {
        EvolutionarySearch::new(SearchConfig::default())
    }
}

impl EvolutionarySearch {
    /// Creates a search with the given configuration, evaluating candidates
    /// in parallel with structural dedupe.
    pub fn new(config: SearchConfig) -> Self {
        EvolutionarySearch {
            config,
            tile_sizes: vec![16, 32, 64, 128],
            parallel: true,
            reference_eval: false,
        }
    }

    /// Enables or disables parallel candidate evaluation. Disabled, unique
    /// candidates are costed one at a time on the calling thread (the
    /// incremental scoring and dedupe stay on) — useful under an outer
    /// parallel loop such as database seeding. Scores are identical either
    /// way.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Switches candidate scoring to the pre-refactor path: every candidate
    /// program is materialized and fully re-priced, sequentially, with no
    /// dedupe. Kept as the baseline the benches measure the overhauled
    /// pipeline against; finds identical recipes and scores.
    pub fn reference_evaluation(mut self) -> Self {
        self.reference_eval = true;
        self
    }

    /// Searches for the best recipe for `nest_index`-th top-level nest of the
    /// program, seeding the population with `seeds` (recipes of similar loop
    /// nests in later epochs, or the proposal generator's candidates) and
    /// evaluating fitness with `model`.
    ///
    /// Returns the best recipe found together with its estimated runtime.
    pub fn search(
        &self,
        program: &Program,
        nest_index: usize,
        model: &CostModel,
        seeds: &[Recipe],
    ) -> (Recipe, f64) {
        let Some(Node::Loop(nest)) = program.body.get(nest_index) else {
            return (Recipe::identity(), f64::INFINITY);
        };
        let _span = telemetry::span("search");
        let chain: Vec<Var> = perfect_chain(nest).iter().map(|l| l.iter.clone()).collect();
        // Dependences of the nest under search, computed once: the semantic
        // gate consults them for every candidate.
        let graph = nest_scoped_graph(program, nest);
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let mut population: Vec<Recipe> = Vec::new();
        population.push(Recipe::identity());
        population.extend(self.proposals(nest));
        population.extend(seeds.iter().cloned());
        population.truncate(self.config.population.max(4));

        // Per-node costs of the base program: candidates only ever rewrite
        // `nest_index`, so these are priced exactly once per search.
        let node_costs: Vec<f64> = if self.reference_eval {
            Vec::new()
        } else {
            model
                .estimate(program)
                .per_nest
                .iter()
                .map(|cost| cost.seconds)
                .collect()
        };
        let context = ScoreContext {
            program,
            nest_index,
            nest,
            node_costs: &node_costs,
            graph: &graph,
        };

        // Scores of every candidate evaluated anywhere in this search, keyed
        // by recipe fingerprint (identical recipes dedupe here; distinct
        // recipes with structurally identical rewrites dedupe one level
        // down, in the cost model's memo).
        let mut seen: HashMap<u64, f64> = HashMap::new();

        let scores = self.score_batch(&context, &population, model, &mut seen);
        let mut scored: Vec<(f64, Recipe)> = scores.into_iter().zip(population).collect();
        sort_by_fitness(&mut scored);

        for _epoch in 0..self.config.epochs.max(1) {
            for _iter in 0..self.config.iterations_per_epoch.max(1) {
                let _generation = telemetry::span("generation");
                // Keep the better half, refill with mutations of survivors.
                let keep = (scored.len() / 2).max(2);
                scored.truncate(keep);
                let survivors: Vec<Recipe> = scored.iter().map(|(_, r)| r.clone()).collect();
                // Draw the whole refill batch from the (single-threaded) RNG
                // first, then evaluate it in one deduped, parallel pass.
                let mut children = Vec::new();
                while scored.len() + children.len() < self.config.population.max(4) {
                    let parent = survivors
                        .choose(&mut rng)
                        .cloned()
                        .unwrap_or_else(Recipe::identity);
                    children.push(self.mutate(&parent, &chain, &mut rng));
                }
                let scores = self.score_batch(&context, &children, model, &mut seen);
                scored.extend(scores.into_iter().zip(children));
                sort_by_fitness(&mut scored);
            }
            // Re-seed the next epoch with fresh mutations of the incumbent,
            // mirroring the paper's re-seeding from the most similar nests.
            let best = scored[0].1.clone();
            let reseed = self.mutate(&best, &chain, &mut rng);
            let batch = [reseed];
            let f = self.score_batch(&context, &batch, model, &mut seen)[0];
            let [reseed] = batch;
            scored.push((f, reseed));
            sort_by_fitness(&mut scored);
        }
        let (best_time, best) = (scored[0].0, scored[0].1.clone());
        (best, best_time)
    }

    /// Scores a batch of recipes: early-reject, structural dedupe, then
    /// (adaptively parallel) incremental costing of the unique survivors,
    /// batched so each distinct lowered rewrite is priced exactly once.
    /// Returns one score per recipe, in order; `seen` accumulates scores
    /// across batches.
    fn score_batch(
        &self,
        context: &ScoreContext<'_>,
        recipes: &[Recipe],
        model: &CostModel,
        seen: &mut HashMap<u64, f64>,
    ) -> Vec<f64> {
        if self.reference_eval {
            // Pre-refactor path: materialize and fully re-price every
            // candidate program, one at a time. The semantic gate applies
            // here too, so both paths still find identical recipes.
            return recipes
                .iter()
                .map(|recipe| {
                    if !recipe_is_semantically_legal(context.graph, context.nest, recipe) {
                        return f64::INFINITY;
                    }
                    evaluate_recipe(context.program, context.nest_index, recipe, model)
                        .unwrap_or(f64::INFINITY)
                })
                .collect();
        }

        // Stage 1: dedupe by recipe fingerprint — a recipe identical to one
        // already scored anywhere in this search skips even the rewrite.
        let keys: Vec<u64> = recipes.iter().map(recipe_fingerprint).collect();
        let mut jobs: Vec<(u64, &Recipe)> = Vec::new();
        for (key, recipe) in keys.iter().zip(recipes) {
            if !seen.contains_key(key) && jobs.iter().all(|(k, _)| k != key) {
                jobs.push((*key, recipe));
            }
        }
        telemetry::counter("daisy.search.candidates", recipes.len() as u64);
        telemetry::counter(
            "daisy.search.deduped_recipes",
            (recipes.len() - jobs.len()) as u64,
        );

        // Stage 2: rewrite the unique recipes on the calling thread (cheap,
        // structural). The semantic gate and recipes that fail to apply
        // score infinity without ever reaching the cost model.
        let rewrites: Vec<Option<Vec<Node>>> = jobs
            .iter()
            .map(|(_, recipe)| {
                if !recipe_is_semantically_legal(context.graph, context.nest, recipe) {
                    return None;
                }
                recipe.apply_to_nest(context.nest).ok()
            })
            .collect();
        telemetry::counter(
            "daisy.search.rejected_precost",
            rewrites.iter().filter(|r| r.is_none()).count() as u64,
        );

        // Stage 3: batch the candidate costing — one lowered rewrite per
        // structurally identical variant group. Distinct recipes of a
        // generation routinely converge on the same rewrite (step
        // reorderings, annotation toggles that cancel), so group by the
        // rewrite's structural hash and price each group exactly once.
        // Fan-out is adaptive: the first group is timed on the calling
        // thread, and the rest go to worker threads only when the remaining
        // work is long enough to amortize spawning them (cheap single-nest
        // programs stay sequential; multi-nest programs like CLOUDSC fan
        // out). Scores are identical at any fan-out.
        let mut group_of: Vec<Option<usize>> = vec![None; jobs.len()];
        let mut groups: Vec<(u64, &Vec<Node>)> = Vec::new();
        for (index, rewrite) in rewrites.iter().enumerate() {
            let Some(rewrite) = rewrite else { continue };
            let hash = structural_hash_nodes(rewrite);
            let group = groups
                .iter()
                .position(|(h, _)| *h == hash)
                .unwrap_or_else(|| {
                    groups.push((hash, rewrite));
                    groups.len() - 1
                });
            group_of[index] = Some(group);
        }
        telemetry::counter("daisy.search.rewrites_priced", groups.len() as u64);
        let price = |&(_, rewrite): &(u64, &Vec<Node>)| context.score_rewrite(rewrite, model);
        let group_costs: Vec<f64> = if self.parallel && groups.len() > 1 {
            let start = std::time::Instant::now();
            let first = price(&groups[0]);
            let elapsed = start.elapsed();
            let remaining = &groups[1..];
            let mut costs = vec![first];
            if elapsed * remaining.len() as u32 > std::time::Duration::from_micros(500) {
                costs.extend(parallel_map(remaining, price));
            } else {
                costs.extend(remaining.iter().map(price));
            }
            costs
        } else {
            groups.iter().map(price).collect()
        };
        for ((key, _), group) in jobs.iter().zip(&group_of) {
            let cost = group.map_or(f64::INFINITY, |g| group_costs[g]);
            seen.insert(*key, cost);
        }

        keys.into_iter().map(|key| seen[&key]).collect()
    }

    /// Structural proposals playing the role of the Tiramisu-seeded initial
    /// population: combinations of outer-loop parallelization, innermost
    /// vectorization and square tiling.
    pub fn proposals(&self, nest: &Loop) -> Vec<Recipe> {
        let chain: Vec<Var> = perfect_chain(nest).iter().map(|l| l.iter.clone()).collect();
        let mut out = Vec::new();
        if chain.is_empty() {
            return out;
        }
        let outer = chain[0].clone();
        let inner = chain[chain.len() - 1].clone();
        out.push(Recipe::new(vec![Transform::Parallelize {
            iter: outer.clone(),
        }]));
        out.push(Recipe::new(vec![Transform::Vectorize {
            iter: inner.clone(),
        }]));
        out.push(Recipe::new(vec![
            Transform::Parallelize {
                iter: outer.clone(),
            },
            Transform::Vectorize {
                iter: inner.clone(),
            },
        ]));
        if chain.len() >= 2 {
            for &tile in &[32i64, 64] {
                let tiles: Vec<(Var, i64)> = chain.iter().cloned().map(|v| (v, tile)).collect();
                out.push(Recipe::new(vec![
                    Transform::Tile { tiles },
                    Transform::Parallelize {
                        iter: Var::new(format!("{outer}_t")),
                    },
                    Transform::Vectorize {
                        iter: inner.clone(),
                    },
                ]));
            }
        }
        out
    }

    fn mutate(&self, parent: &Recipe, chain: &[Var], rng: &mut StdRng) -> Recipe {
        let mut steps = parent.steps.clone();
        if chain.is_empty() {
            return parent.clone();
        }
        let choice = rng.gen_range(0..4);
        match choice {
            // Toggle parallelization of the outermost loop (or its tile loop).
            0 => {
                let has_par = steps
                    .iter()
                    .any(|s| matches!(s, Transform::Parallelize { .. }));
                if has_par {
                    steps.retain(|s| !matches!(s, Transform::Parallelize { .. }));
                } else {
                    let target = if steps.iter().any(|s| matches!(s, Transform::Tile { .. })) {
                        Var::new(format!("{}_t", chain[0]))
                    } else {
                        chain[0].clone()
                    };
                    steps.push(Transform::Parallelize { iter: target });
                }
            }
            // Toggle vectorization of the innermost loop.
            1 => {
                let has_vec = steps
                    .iter()
                    .any(|s| matches!(s, Transform::Vectorize { .. }));
                if has_vec {
                    steps.retain(|s| !matches!(s, Transform::Vectorize { .. }));
                } else {
                    steps.push(Transform::Vectorize {
                        iter: chain[chain.len() - 1].clone(),
                    });
                }
            }
            // Add / resize tiling.
            2 => {
                let size = *self.tile_sizes.choose(rng).unwrap_or(&32);
                steps.retain(|s| !matches!(s, Transform::Tile { .. }));
                if chain.len() >= 2 && rng.gen_bool(0.8) {
                    let tiles: Vec<(Var, i64)> = chain.iter().cloned().map(|v| (v, size)).collect();
                    // Tiling must run before annotations that reference tile
                    // loops; put it first and re-point parallelization.
                    steps.insert(0, Transform::Tile { tiles });
                    for s in steps.iter_mut() {
                        if let Transform::Parallelize { iter } = s {
                            if !iter.as_str().ends_with("_t") && chain.contains(iter) {
                                *iter = Var::new(format!("{iter}_t"));
                            }
                        }
                    }
                } else {
                    // Tiling removed: re-point parallelization back to the
                    // original loops.
                    for s in steps.iter_mut() {
                        if let Transform::Parallelize { iter } = s {
                            if let Some(stripped) = iter.as_str().strip_suffix("_t") {
                                *iter = Var::new(stripped);
                            }
                        }
                    }
                }
            }
            // Add an unroll of the innermost loop.
            _ => {
                steps.retain(|s| !matches!(s, Transform::Unroll { .. }));
                if rng.gen_bool(0.5) {
                    steps.push(Transform::Unroll {
                        iter: chain[chain.len() - 1].clone(),
                        factor: *[2u32, 4, 8].choose(rng).unwrap_or(&4),
                    });
                }
            }
        }
        Recipe {
            steps,
            blas: parent.blas,
        }
    }
}

/// Dependence graph of one top-level nest in isolation.
///
/// The whole-program graph would let an iterator name shared between
/// unrelated top-level nests (ubiquitous in CLOUDSC, where every nest loops
/// over `jl`/`jk`) leak dependences across nests and veto legal
/// parallelizations; analyzing a single-nest copy of the program scopes
/// every query to the nest under search.
pub fn nest_scoped_graph(program: &Program, nest: &Loop) -> DependenceGraph {
    // Clone only the environment and the nest under analysis — a whole
    // program.clone() would deep-copy every other top-level nest just to
    // throw it away, O(program) per query.
    let sub = Program {
        name: program.name.clone(),
        params: program.params.clone(),
        scalar_params: program.scalar_params.clone(),
        arrays: program.arrays.clone(),
        body: vec![Node::Loop(nest.clone())],
    };
    dependence::analyze(&sub)
}

/// Semantic legality gate for a recipe against a nest's dependence graph:
///
/// * `interchange(order)` is illegal when the permuted direction vector of
///   any dependence becomes lexicographically negative,
/// * `tile(x:..)` is illegal when any dependence direction on a tiled
///   iterator admits `>`: `tile_band` hoists the tile loops outermost, and
///   a hoisted `>` level can run sink iterations before their source while
///   every other tile loop sits at "same tile" — the same reordering an
///   `interchange` to that order would be rejected for,
/// * `parallelize(x)` is illegal when `x` carries a dependence at its
///   position in the *final* loop order — a parallel mark travels with its
///   loop through later interchanges, so marks are validated after the
///   whole recipe's order is known, not at the step that set them,
/// * `parallelize(x_t)` (the hoisted tile loop of `x`) is illegal whenever
///   any dependence admits `<` in `x`: the tile loop runs above the whole
///   band, where no other loop can discharge the dependence (outer tile
///   loops always admit "same tile").
///
/// Tile loops are handled conservatively throughout: an outer tile loop
/// never discharges a dependence (the source and sink may fall into the
/// same tile), so parallelizing a point loop whose iterator carries a
/// dependence stays illegal even below its own tile loop.
///
/// Vectorization and unrolling are left to the cost model: the machine
/// model prices them as in-order SIMD/ILP, which is semantics-preserving
/// for the dependence patterns the IR can express.
pub fn recipe_is_semantically_legal(graph: &DependenceGraph, nest: &Loop, recipe: &Recipe) -> bool {
    let iters = nest.nested_iterators();
    // The loop order as the recipe unfolds, original iterators only (tile
    // loops are tracked through `tiled`: each `x_t` chunks `x` in place).
    let mut order = iters.clone();
    let mut tiled: BTreeSet<Var> = BTreeSet::new();
    let mut parallel_points: BTreeSet<Var> = BTreeSet::new();
    let mut parallel_tiles: BTreeSet<Var> = BTreeSet::new();
    for step in &recipe.steps {
        match step {
            Transform::Parallelize { iter } => {
                match iter.as_str().strip_suffix("_t") {
                    Some(stripped) if !iters.contains(iter) => {
                        parallel_tiles.insert(Var::new(stripped));
                    }
                    _ => {
                        parallel_points.insert(iter.clone());
                    }
                };
            }
            Transform::Interchange { order: new_order } => {
                let distinct: BTreeSet<&Var> = new_order.iter().collect();
                let applies = new_order.iter().all(|v| iters.contains(v))
                    && distinct.len() == new_order.len();
                if !applies {
                    continue;
                }
                if !is_permutation_legal(graph, nest, new_order) {
                    return false;
                }
                // The step names the new absolute order; iterators it does
                // not mention keep their previous relative order behind it.
                let mut next = new_order.clone();
                next.extend(order.iter().filter(|v| !new_order.contains(v)).cloned());
                order = next;
            }
            Transform::Tile { tiles } => {
                // The hoisted tile loop of `v` replays `v`'s direction
                // above the whole band; a direction admitting `>` there
                // makes some dependence vector lexicographically negative
                // (outer tile loops can always sit at "same tile", i.e.
                // `=`), so the reordering is illegal.
                let hoisted_negative = graph.all().iter().any(|dep| {
                    tiles.iter().any(|(v, _)| {
                        iters.contains(v) && dep.direction_of(v).is_some_and(|d| d.may_be_gt())
                    })
                });
                if hoisted_negative {
                    return false;
                }
                tiled.extend(tiles.iter().map(|(v, _)| v.clone()));
            }
            _ => {}
        }
    }
    // A tile loop sits above the whole band where nothing discharges a
    // dependence, so any `<` direction in its base iterator is carried.
    for base in &parallel_tiles {
        let carried = graph
            .all()
            .iter()
            .any(|dep| dep.direction_of(base).is_some_and(|d| d.may_be_lt()));
        if carried {
            return false;
        }
    }
    // Point-loop marks are judged at their position in the final order:
    // carried when the dependence can run in `base`'s direction while
    // every outer non-tile loop admits `=`.
    for base in &parallel_points {
        let Some(pos) = order.iter().position(|v| v == base) else {
            continue;
        };
        let carried = graph.all().iter().any(|dep| {
            dep.direction_of(base).is_some_and(|d| d.may_be_lt())
                && order[..pos]
                    .iter()
                    .all(|u| tiled.contains(u) || dep.direction_of(u).is_none_or(|d| d.may_be_eq()))
        });
        if carried {
            return false;
        }
    }
    true
}

/// Fingerprint of a recipe: a structural hash over its rendered steps and
/// BLAS marker. Two recipes share a fingerprint exactly when they contain the
/// same steps in the same order.
fn recipe_fingerprint(recipe: &Recipe) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = loop_ir::StructuralHasher::default();
    recipe.steps.len().hash(&mut hasher);
    for step in &recipe.steps {
        step.to_string().hash(&mut hasher);
    }
    recipe.blas.hash(&mut hasher);
    hasher.finish()
}

/// Everything the incremental scorer needs about the program under search.
struct ScoreContext<'a> {
    program: &'a Program,
    nest_index: usize,
    /// The nest being rewritten (`program.body[nest_index]`).
    nest: &'a Loop,
    /// Per-node seconds of the base program, aligned with `program.body`.
    node_costs: &'a [f64],
    /// Dependences of `nest` in isolation, for the semantic legality gate.
    graph: &'a DependenceGraph,
}

impl ScoreContext<'_> {
    /// Whole-program seconds of the candidate that replaces the nest with
    /// `rewrite`. Summed node by node in body order — the exact order
    /// [`CostModel::estimate`] uses — so the result is bit-identical to
    /// pricing the materialized candidate program.
    fn score_rewrite(&self, rewrite: &[Node], model: &CostModel) -> f64 {
        let mut seconds = 0.0;
        for &cost in &self.node_costs[..self.nest_index] {
            seconds += cost;
        }
        for node in rewrite {
            seconds += model.node_cost(self.program, node).seconds;
        }
        for &cost in &self.node_costs[self.nest_index + 1..] {
            seconds += cost;
        }
        seconds
    }
}

fn sort_by_fitness(scored: &mut [(f64, Recipe)]) {
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
}

/// Applies a recipe to the `nest_index`-th top-level node of a program and
/// returns the estimated runtime of the *whole* program, or `None` if the
/// recipe cannot be applied.
pub fn evaluate_recipe(
    program: &Program,
    nest_index: usize,
    recipe: &Recipe,
    model: &CostModel,
) -> Option<f64> {
    let candidate = apply_recipe_to_program(program, nest_index, recipe)?;
    Some(model.estimate(&candidate).seconds)
}

/// Builds a copy of the program with the recipe applied to one top-level
/// nest. Returns `None` when the recipe does not apply.
pub fn apply_recipe_to_program(
    program: &Program,
    nest_index: usize,
    recipe: &Recipe,
) -> Option<Program> {
    let Node::Loop(nest) = program.body.get(nest_index)? else {
        return None;
    };
    let replacement = recipe.apply_to_nest(nest).ok()?;
    let mut out = program.clone();
    out.body.splice(nest_index..=nest_index, replacement);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;
    use machine::MachineConfig;

    fn gemm(n: i64) -> Program {
        parse_program(&format!(
            "program gemm {{ param N = {n};
               array A[N][N]; array B[N][N]; array C[N][N];
               for i in 0..N {{ for k in 0..N {{ for j in 0..N {{
                 C[i][j] += A[i][k] * B[k][j];
               }} }} }} }}"
        ))
        .unwrap()
    }

    #[test]
    fn proposals_cover_parallel_vector_tile() {
        let p = gemm(256);
        let search = EvolutionarySearch::default();
        let proposals = search.proposals(p.loop_nests()[0]);
        assert!(proposals.len() >= 4);
        assert!(proposals
            .iter()
            .any(|r| r.steps.iter().any(|s| matches!(s, Transform::Tile { .. }))));
        assert!(proposals.iter().any(|r| r
            .steps
            .iter()
            .any(|s| matches!(s, Transform::Parallelize { .. }))));
    }

    #[test]
    fn search_beats_the_identity_schedule() {
        let p = gemm(512);
        let model = CostModel::new(MachineConfig::xeon_e5_2680v3(), 12);
        let baseline = model.estimate(&p).seconds;
        let search = EvolutionarySearch::new(SearchConfig {
            epochs: 2,
            iterations_per_epoch: 2,
            population: 8,
            seed: 7,
        });
        let (best, time) = search.search(&p, 0, &model, &[]);
        assert!(
            time < baseline,
            "search ({time}) should beat identity ({baseline})"
        );
        assert!(!best.is_identity());
    }

    #[test]
    fn search_is_deterministic_for_a_fixed_seed() {
        let p = gemm(128);
        let model = CostModel::sequential();
        let search = EvolutionarySearch::default();
        let (a, ta) = search.search(&p, 0, &model, &[]);
        let (b, tb) = search.search(&p, 0, &model, &[]);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn seeds_participate_in_the_population() {
        let p = gemm(256);
        let model = CostModel::new(MachineConfig::xeon_e5_2680v3(), 8);
        let seed_recipe = Recipe::new(vec![
            Transform::Tile {
                tiles: vec![
                    (Var::new("i"), 64),
                    (Var::new("k"), 64),
                    (Var::new("j"), 64),
                ],
            },
            Transform::Parallelize {
                iter: Var::new("i_t"),
            },
            Transform::Vectorize {
                iter: Var::new("j"),
            },
        ]);
        let search = EvolutionarySearch::new(SearchConfig {
            epochs: 1,
            iterations_per_epoch: 1,
            population: 6,
            seed: 3,
        });
        let (_, with_seed) = search.search(&p, 0, &model, std::slice::from_ref(&seed_recipe));
        let seed_time = evaluate_recipe(&p, 0, &seed_recipe, &model).unwrap();
        assert!(with_seed <= seed_time + 1e-12);
    }

    #[test]
    fn invalid_recipe_evaluates_to_none() {
        let p = gemm(64);
        let model = CostModel::sequential();
        let bad = Recipe::new(vec![Transform::Parallelize {
            iter: Var::new("does_not_exist"),
        }]);
        assert!(evaluate_recipe(&p, 0, &bad, &model).is_none());
        assert!(apply_recipe_to_program(&p, 5, &Recipe::identity()).is_none());
    }

    #[test]
    fn parallel_and_sequential_evaluation_agree() {
        let p = gemm(192);
        let config = SearchConfig {
            epochs: 2,
            iterations_per_epoch: 2,
            population: 8,
            seed: 11,
        };
        let model_a = CostModel::new(MachineConfig::xeon_e5_2680v3(), 8);
        let model_b = CostModel::new(MachineConfig::xeon_e5_2680v3(), 8);
        let (r_par, t_par) = EvolutionarySearch::new(config.clone()).search(&p, 0, &model_a, &[]);
        let (r_seq, t_seq) =
            EvolutionarySearch::new(config)
                .with_parallel(false)
                .search(&p, 0, &model_b, &[]);
        assert_eq!(r_par, r_seq);
        assert_eq!(t_par, t_seq);
    }

    /// Builds a scoring context over the program's only nest.
    fn context_of<'a>(
        p: &'a Program,
        node_costs: &'a [f64],
        graph: &'a DependenceGraph,
    ) -> ScoreContext<'a> {
        let Node::Loop(nest) = &p.body[0] else {
            panic!("first node is a nest");
        };
        ScoreContext {
            program: p,
            nest_index: 0,
            nest,
            node_costs,
            graph,
        }
    }

    #[test]
    fn illegal_recipes_are_rejected_without_costing() {
        let p = gemm(64);
        let model = CostModel::sequential();
        let node_costs: Vec<f64> = model
            .estimate(&p)
            .per_nest
            .iter()
            .map(|c| c.seconds)
            .collect();
        let search = EvolutionarySearch::default();
        let mut seen = HashMap::new();
        let graph = nest_scoped_graph(&p, p.loop_nests()[0]);
        let batch = [
            Recipe::new(vec![Transform::Parallelize {
                iter: Var::new("nope"),
            }]),
            Recipe::identity(),
        ];
        let scores = search.score_batch(
            &context_of(&p, &node_costs, &graph),
            &batch,
            &model,
            &mut seen,
        );
        assert_eq!(scores[0], f64::INFINITY);
        assert!(scores[1].is_finite());
        // Both recipes were fingerprinted (the illegal one caches its
        // rejection), but only the legal rewrite reached the cost model —
        // and it shares the base nest's memo entry.
        assert_eq!(seen.len(), 2);
        assert_eq!(model.memo_entries(), 1);
    }

    #[test]
    fn duplicate_candidates_are_priced_once() {
        let p = gemm(64);
        let model = CostModel::sequential();
        let node_costs: Vec<f64> = model
            .estimate(&p)
            .per_nest
            .iter()
            .map(|c| c.seconds)
            .collect();
        let search = EvolutionarySearch::default();
        let mut seen = HashMap::new();
        let graph = nest_scoped_graph(&p, p.loop_nests()[0]);
        let vectorize = Recipe::new(vec![Transform::Vectorize {
            iter: Var::new("j"),
        }]);
        let batch = [vectorize.clone(), vectorize.clone(), vectorize];
        let scores = search.score_batch(
            &context_of(&p, &node_costs, &graph),
            &batch,
            &model,
            &mut seen,
        );
        assert_eq!(scores[0], scores[1]);
        assert_eq!(scores[1], scores[2]);
        assert_eq!(seen.len(), 1, "one structural hash, one evaluation");
    }

    #[test]
    fn incremental_scoring_matches_the_reference_path_exactly() {
        // Multi-nest program: the incremental scorer must fold unchanged
        // nest costs in body order so scores stay bit-identical.
        let p = parse_program(
            "program multi { param N = 96; array A[N][N]; array B[N][N]; array C[N][N];
               for a in 0..N { for b in 0..N { B[a][b] = A[a][b] * 2.0; } }
               for i in 0..N { for k in 0..N { for j in 0..N {
                 C[i][j] += A[i][k] * B[k][j];
               } } }
               for x in 0..N { for y in 0..N { A[x][y] = C[x][y] + 1.0; } } }",
        )
        .unwrap();
        let config = SearchConfig {
            epochs: 2,
            iterations_per_epoch: 2,
            population: 8,
            seed: 5,
        };
        let (r_new, s_new) =
            EvolutionarySearch::new(config.clone()).search(&p, 1, &CostModel::sequential(), &[]);
        let (r_ref, s_ref) = EvolutionarySearch::new(config)
            .reference_evaluation()
            .search(&p, 1, &CostModel::sequential().without_memoization(), &[]);
        assert_eq!(r_new, r_ref);
        assert_eq!(s_new, s_ref, "scores must be bit-identical");
    }

    #[test]
    fn carried_dependences_veto_parallelization_before_costing() {
        // A[i][j] = A[i-1][j] + 1: the i loop carries a dependence, j does
        // not. Parallelizing i (or its tile loop) must be rejected by the
        // dependence gate without reaching the cost model; parallelizing j
        // stays legal.
        let p = parse_program(
            "program stencil { param N = 64; array A[N][N];
               for i in 1..N { for j in 0..N { A[i][j] = A[i - 1][j] + 1.0; } } }",
        )
        .unwrap();
        let Node::Loop(nest) = &p.body[0] else {
            panic!("first node is a nest");
        };
        let graph = nest_scoped_graph(&p, nest);
        let par_i = Recipe::new(vec![Transform::Parallelize {
            iter: Var::new("i"),
        }]);
        let par_j = Recipe::new(vec![Transform::Parallelize {
            iter: Var::new("j"),
        }]);
        let tiled_par_i = Recipe::new(vec![
            Transform::Tile {
                tiles: vec![(Var::new("i"), 16), (Var::new("j"), 16)],
            },
            Transform::Parallelize {
                iter: Var::new("i_t"),
            },
        ]);
        assert!(!recipe_is_semantically_legal(&graph, nest, &par_i));
        assert!(recipe_is_semantically_legal(&graph, nest, &par_j));
        assert!(!recipe_is_semantically_legal(&graph, nest, &tiled_par_i));
        // Tiling does not launder the carried dependence onto the point
        // loop either: parallelize(i) below its own tile loop stays
        // illegal (source and sink may share a tile).
        let tiled_par_point_i = Recipe::new(vec![
            Transform::Tile {
                tiles: vec![(Var::new("i"), 16)],
            },
            Transform::Parallelize {
                iter: Var::new("i"),
            },
        ]);
        assert!(!recipe_is_semantically_legal(
            &graph,
            nest,
            &tiled_par_point_i
        ));

        // The gate follows interchanges: after swapping to (j, i), the
        // dependence A[i][j] = A[i-1][j] is carried by i at the *inner*
        // level only while j stays `=` — so parallelizing the new
        // outermost j is legal, and parallelizing i is still illegal
        // (j admits `=`, letting the dependence run in i).
        let swap_par_j = Recipe::new(vec![
            Transform::Interchange {
                order: vec![Var::new("j"), Var::new("i")],
            },
            Transform::Parallelize {
                iter: Var::new("j"),
            },
        ]);
        let swap_par_i = Recipe::new(vec![
            Transform::Interchange {
                order: vec![Var::new("j"), Var::new("i")],
            },
            Transform::Parallelize {
                iter: Var::new("i"),
            },
        ]);
        assert!(recipe_is_semantically_legal(&graph, nest, &swap_par_j));
        assert!(!recipe_is_semantically_legal(&graph, nest, &swap_par_i));

        // A diagonal dependence A[i][j] = A[i-1][j-1]: in the original
        // order i carries it and j is parallel; after interchange to
        // (j, i) the roles flip — j carries it, i becomes parallel. The
        // pre-fix gate consulted the original order for both and got both
        // post-interchange answers wrong.
        let diag = parse_program(
            "program diag { param N = 64; array A[N][N];
               for i in 1..N { for j in 1..N { A[i][j] = A[i - 1][j - 1] + 1.0; } } }",
        )
        .unwrap();
        let Node::Loop(diag_nest) = &diag.body[0] else {
            panic!("first node is a nest");
        };
        let diag_graph = nest_scoped_graph(&diag, diag_nest);
        assert!(recipe_is_semantically_legal(&diag_graph, diag_nest, &par_j));
        assert!(!recipe_is_semantically_legal(
            &diag_graph,
            diag_nest,
            &swap_par_j
        ));
        assert!(recipe_is_semantically_legal(
            &diag_graph,
            diag_nest,
            &swap_par_i
        ));

        // tile_band hoists j_t above i, where nothing discharges the
        // diagonal dependence — parallelize(j_t) must be illegal even
        // though j's original position sits below the carrying i.
        let tile_par_jt = Recipe::new(vec![
            Transform::Tile {
                tiles: vec![(Var::new("j"), 16)],
            },
            Transform::Parallelize {
                iter: Var::new("j_t"),
            },
        ]);
        assert!(!recipe_is_semantically_legal(
            &diag_graph,
            diag_nest,
            &tile_par_jt
        ));

        // A parallel mark travels with its loop through a later
        // interchange: parallelize(j) is legal in order (i, j), but the
        // subsequent swap moves the marked j outermost where it carries
        // the diagonal dependence.
        let par_j_then_swap = Recipe::new(vec![
            Transform::Parallelize {
                iter: Var::new("j"),
            },
            Transform::Interchange {
                order: vec![Var::new("j"), Var::new("i")],
            },
        ]);
        assert!(!recipe_is_semantically_legal(
            &diag_graph,
            diag_nest,
            &par_j_then_swap
        ));

        // The gate rejects before costing: the illegal candidate scores
        // infinity and leaves no memo entry.
        let model = CostModel::sequential();
        let node_costs: Vec<f64> = model
            .estimate(&p)
            .per_nest
            .iter()
            .map(|c| c.seconds)
            .collect();
        let search = EvolutionarySearch::default();
        let mut seen = HashMap::new();
        let batch = [par_i.clone()];
        let scores = search.score_batch(
            &context_of(&p, &node_costs, &graph),
            &batch,
            &model,
            &mut seen,
        );
        assert_eq!(scores[0], f64::INFINITY);
        assert_eq!(
            model.memo_entries(),
            1,
            "only the base estimate is memoized"
        );

        // And the full search never emits an illegal parallelization.
        let (best, _) = search.search(&p, 0, &model, std::slice::from_ref(&par_i));
        for step in &best.steps {
            if let Transform::Parallelize { iter } = step {
                assert_eq!(iter, &Var::new("j"), "only j may be parallelized");
            }
        }
    }

    #[test]
    fn illegal_interchange_is_gated() {
        // A[i][j] = A[i-1][j+1]: direction (<, >); swapping i and j flips it
        // to (>, <), lexicographically negative.
        let p = parse_program(
            "program skew { param N = 8; array A[N][N];
               for i in 1..N { for j in 0..N - 1 { A[i][j] = A[i - 1][j + 1] + 1.0; } } }",
        )
        .unwrap();
        let Node::Loop(nest) = &p.body[0] else {
            panic!("first node is a nest");
        };
        let graph = nest_scoped_graph(&p, nest);
        let swap = Recipe::new(vec![Transform::Interchange {
            order: vec![Var::new("j"), Var::new("i")],
        }]);
        let keep = Recipe::new(vec![Transform::Interchange {
            order: vec![Var::new("i"), Var::new("j")],
        }]);
        assert!(!recipe_is_semantically_legal(&graph, nest, &swap));
        assert!(recipe_is_semantically_legal(&graph, nest, &keep));
        // A recipe naming unknown iterators is left to the structural gate.
        let unknown = Recipe::new(vec![Transform::Interchange {
            order: vec![Var::new("x"), Var::new("y")],
        }]);
        assert!(recipe_is_semantically_legal(&graph, nest, &unknown));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map(&empty, |&x: &usize| x).is_empty());
    }

    #[test]
    fn parallel_map_contains_worker_panics_and_retries_sequentially() {
        use std::sync::atomic::AtomicUsize;

        // Item 41 panics on its first (parallel) attempt only; the fan-out
        // must survive, retry it on the calling thread, and still produce
        // every result in order.
        let attempts_on_41 = AtomicUsize::new(0);
        let items: Vec<usize> = (0..128).collect();
        let results = parallel_map_with(4, &items, |&x| {
            if x == 41 && attempts_on_41.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient failure on item {x}");
            }
            x * 3
        });
        assert_eq!(results, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        assert_eq!(attempts_on_41.load(Ordering::SeqCst), 2, "one retry");
    }

    #[test]
    fn parallel_map_repanics_deterministic_failures_on_the_caller() {
        let items: Vec<usize> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            parallel_map_with(4, &items, |&x| {
                if x == 13 {
                    panic!("deterministically poisoned item");
                }
                x
            })
        });
        assert!(caught.is_err(), "a persistent panic must still surface");
    }

    #[test]
    fn requested_workers_clamp_to_available_parallelism() {
        // Regression for the BENCH_PR4 observation: an explicit 12-worker
        // request on a 1-core machine oversubscribed the scheduler to 0.84x
        // of sequential. Requests must never exceed the machine.
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(effective_workers(0, 64), available.min(64));
        assert!(effective_workers(12, 1024) <= available);
        assert!(effective_workers(usize::MAX, 1024) <= available);
        assert_eq!(effective_workers(1, 8), 1);
        assert_eq!(effective_workers(8, 3), available.min(8).min(3));
        assert_eq!(effective_workers(4, 0), 0);
        // An oversubscribed request still maps correctly after clamping.
        let items: Vec<usize> = (0..100).collect();
        assert_eq!(
            parallel_map_with(1024, &items, |&x| x + 1),
            (1..101).collect::<Vec<_>>()
        );
    }

    #[test]
    fn recipes_converging_on_one_rewrite_are_priced_once() {
        // [Par, Vec] and [Vec, Par] are distinct recipes (different
        // fingerprints) whose lowered rewrites are structurally identical;
        // the batched costing must price that rewrite exactly once. The
        // observable: both score identically and the model memoizes only
        // the base nest and the one rewritten nest.
        let p = gemm(64);
        let model = CostModel::sequential();
        let node_costs: Vec<f64> = model
            .estimate(&p)
            .per_nest
            .iter()
            .map(|c| c.seconds)
            .collect();
        let search = EvolutionarySearch::default();
        let mut seen = HashMap::new();
        let graph = nest_scoped_graph(&p, p.loop_nests()[0]);
        let par = Transform::Parallelize {
            iter: Var::new("i"),
        };
        let vec = Transform::Vectorize {
            iter: Var::new("j"),
        };
        let batch = [
            Recipe::new(vec![par.clone(), vec.clone()]),
            Recipe::new(vec![vec, par]),
        ];
        let scores = search.score_batch(
            &context_of(&p, &node_costs, &graph),
            &batch,
            &model,
            &mut seen,
        );
        assert_eq!(scores[0], scores[1]);
        assert_eq!(seen.len(), 2, "two fingerprints, one shared score");
        assert_eq!(
            model.memo_entries(),
            2,
            "base nest + one rewrite: the duplicate rewrite never reached the model"
        );
    }

    #[test]
    fn apply_recipe_replaces_only_the_target_nest() {
        let p = parse_program(
            "program two { param N = 32; array A[N]; array B[N];
               for i in 0..N { A[i] = 1.0; }
               for j in 0..N { B[j] = 2.0; } }",
        )
        .unwrap();
        let recipe = Recipe::new(vec![Transform::Vectorize {
            iter: Var::new("j"),
        }]);
        let out = apply_recipe_to_program(&p, 1, &recipe).unwrap();
        assert!(!out.loop_nests()[0].schedule.vectorize);
        assert!(out.loop_nests()[1].schedule.vectorize);
    }
}
