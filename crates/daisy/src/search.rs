//! Evolutionary search for optimization recipes.
//!
//! The paper seeds the scheduling database with recipes found by an
//! evolutionary search: the first epoch's population is seeded by the
//! Tiramisu auto-scheduler's proposals and refined through mutation and
//! selection with the measured runtime as fitness; later epochs re-seed from
//! the best recipes of the most similar loop nests (§4). Here the fitness is
//! the analytical cost model and the initial proposals come from a
//! structural proposal generator playing the role of the Tiramisu seed.

use loop_ir::expr::Var;
use loop_ir::nest::{Loop, Node};
use loop_ir::program::Program;
use machine::CostModel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use transforms::{perfect_chain, Recipe, Transform};

/// Configuration of the evolutionary search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Number of epochs (the paper uses three).
    pub epochs: usize,
    /// Refinement iterations per epoch (the paper uses three).
    pub iterations_per_epoch: usize,
    /// Population size.
    pub population: usize,
    /// RNG seed, fixed for reproducibility.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            epochs: 3,
            iterations_per_epoch: 3,
            population: 12,
            seed: 0xDA15F,
        }
    }
}

/// The evolutionary recipe search.
#[derive(Debug, Clone)]
pub struct EvolutionarySearch {
    config: SearchConfig,
    tile_sizes: Vec<i64>,
}

impl Default for EvolutionarySearch {
    fn default() -> Self {
        EvolutionarySearch::new(SearchConfig::default())
    }
}

impl EvolutionarySearch {
    /// Creates a search with the given configuration.
    pub fn new(config: SearchConfig) -> Self {
        EvolutionarySearch {
            config,
            tile_sizes: vec![16, 32, 64, 128],
        }
    }

    /// Searches for the best recipe for `nest_index`-th top-level nest of the
    /// program, seeding the population with `seeds` (recipes of similar loop
    /// nests in later epochs, or the proposal generator's candidates) and
    /// evaluating fitness with `model`.
    ///
    /// Returns the best recipe found together with its estimated runtime.
    pub fn search(
        &self,
        program: &Program,
        nest_index: usize,
        model: &CostModel,
        seeds: &[Recipe],
    ) -> (Recipe, f64) {
        let Some(Node::Loop(nest)) = program.body.get(nest_index) else {
            return (Recipe::identity(), f64::INFINITY);
        };
        let chain: Vec<Var> = perfect_chain(nest).iter().map(|l| l.iter.clone()).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let mut population: Vec<Recipe> = Vec::new();
        population.push(Recipe::identity());
        population.extend(self.proposals(nest));
        population.extend(seeds.iter().cloned());
        population.truncate(self.config.population.max(4));

        let fitness = |recipe: &Recipe| -> f64 {
            evaluate_recipe(program, nest_index, recipe, model).unwrap_or(f64::INFINITY)
        };

        let mut scored: Vec<(f64, Recipe)> = population
            .into_iter()
            .map(|r| (fitness(&r), r))
            .collect();
        sort_by_fitness(&mut scored);

        for _epoch in 0..self.config.epochs.max(1) {
            for _iter in 0..self.config.iterations_per_epoch.max(1) {
                // Keep the better half, refill with mutations of survivors.
                let keep = (scored.len() / 2).max(2);
                scored.truncate(keep);
                let survivors: Vec<Recipe> = scored.iter().map(|(_, r)| r.clone()).collect();
                while scored.len() < self.config.population.max(4) {
                    let parent = survivors
                        .choose(&mut rng)
                        .cloned()
                        .unwrap_or_else(Recipe::identity);
                    let child = self.mutate(&parent, &chain, &mut rng);
                    let f = fitness(&child);
                    scored.push((f, child));
                }
                sort_by_fitness(&mut scored);
            }
            // Re-seed the next epoch with fresh mutations of the incumbent,
            // mirroring the paper's re-seeding from the most similar nests.
            let best = scored[0].1.clone();
            let reseed = self.mutate(&best, &chain, &mut rng);
            let f = fitness(&reseed);
            scored.push((f, reseed));
            sort_by_fitness(&mut scored);
        }
        let (best_time, best) = (scored[0].0, scored[0].1.clone());
        (best, best_time)
    }

    /// Structural proposals playing the role of the Tiramisu-seeded initial
    /// population: combinations of outer-loop parallelization, innermost
    /// vectorization and square tiling.
    pub fn proposals(&self, nest: &Loop) -> Vec<Recipe> {
        let chain: Vec<Var> = perfect_chain(nest).iter().map(|l| l.iter.clone()).collect();
        let mut out = Vec::new();
        if chain.is_empty() {
            return out;
        }
        let outer = chain[0].clone();
        let inner = chain[chain.len() - 1].clone();
        out.push(Recipe::new(vec![Transform::Parallelize {
            iter: outer.clone(),
        }]));
        out.push(Recipe::new(vec![Transform::Vectorize {
            iter: inner.clone(),
        }]));
        out.push(Recipe::new(vec![
            Transform::Parallelize { iter: outer.clone() },
            Transform::Vectorize { iter: inner.clone() },
        ]));
        if chain.len() >= 2 {
            for &tile in &[32i64, 64] {
                let tiles: Vec<(Var, i64)> = chain.iter().cloned().map(|v| (v, tile)).collect();
                out.push(Recipe::new(vec![
                    Transform::Tile { tiles },
                    Transform::Parallelize {
                        iter: Var::new(format!("{outer}_t")),
                    },
                    Transform::Vectorize { iter: inner.clone() },
                ]));
            }
        }
        out
    }

    fn mutate(&self, parent: &Recipe, chain: &[Var], rng: &mut StdRng) -> Recipe {
        let mut steps = parent.steps.clone();
        if chain.is_empty() {
            return parent.clone();
        }
        let choice = rng.gen_range(0..4);
        match choice {
            // Toggle parallelization of the outermost loop (or its tile loop).
            0 => {
                let has_par = steps
                    .iter()
                    .any(|s| matches!(s, Transform::Parallelize { .. }));
                if has_par {
                    steps.retain(|s| !matches!(s, Transform::Parallelize { .. }));
                } else {
                    let target = if steps.iter().any(|s| matches!(s, Transform::Tile { .. })) {
                        Var::new(format!("{}_t", chain[0]))
                    } else {
                        chain[0].clone()
                    };
                    steps.push(Transform::Parallelize { iter: target });
                }
            }
            // Toggle vectorization of the innermost loop.
            1 => {
                let has_vec = steps
                    .iter()
                    .any(|s| matches!(s, Transform::Vectorize { .. }));
                if has_vec {
                    steps.retain(|s| !matches!(s, Transform::Vectorize { .. }));
                } else {
                    steps.push(Transform::Vectorize {
                        iter: chain[chain.len() - 1].clone(),
                    });
                }
            }
            // Add / resize tiling.
            2 => {
                let size = *self.tile_sizes.choose(rng).unwrap_or(&32);
                steps.retain(|s| !matches!(s, Transform::Tile { .. }));
                if chain.len() >= 2 && rng.gen_bool(0.8) {
                    let tiles: Vec<(Var, i64)> =
                        chain.iter().cloned().map(|v| (v, size)).collect();
                    // Tiling must run before annotations that reference tile
                    // loops; put it first and re-point parallelization.
                    steps.insert(0, Transform::Tile { tiles });
                    for s in steps.iter_mut() {
                        if let Transform::Parallelize { iter } = s {
                            if !iter.as_str().ends_with("_t") && chain.contains(iter) {
                                *iter = Var::new(format!("{iter}_t"));
                            }
                        }
                    }
                } else {
                    // Tiling removed: re-point parallelization back to the
                    // original loops.
                    for s in steps.iter_mut() {
                        if let Transform::Parallelize { iter } = s {
                            if let Some(stripped) = iter.as_str().strip_suffix("_t") {
                                *iter = Var::new(stripped);
                            }
                        }
                    }
                }
            }
            // Add an unroll of the innermost loop.
            _ => {
                steps.retain(|s| !matches!(s, Transform::Unroll { .. }));
                if rng.gen_bool(0.5) {
                    steps.push(Transform::Unroll {
                        iter: chain[chain.len() - 1].clone(),
                        factor: *[2u32, 4, 8].choose(rng).unwrap_or(&4),
                    });
                }
            }
        }
        Recipe { steps, blas: parent.blas }
    }
}

fn sort_by_fitness(scored: &mut [(f64, Recipe)]) {
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
}

/// Applies a recipe to the `nest_index`-th top-level node of a program and
/// returns the estimated runtime of the *whole* program, or `None` if the
/// recipe cannot be applied.
pub fn evaluate_recipe(
    program: &Program,
    nest_index: usize,
    recipe: &Recipe,
    model: &CostModel,
) -> Option<f64> {
    let candidate = apply_recipe_to_program(program, nest_index, recipe)?;
    Some(model.estimate(&candidate).seconds)
}

/// Builds a copy of the program with the recipe applied to one top-level
/// nest. Returns `None` when the recipe does not apply.
pub fn apply_recipe_to_program(
    program: &Program,
    nest_index: usize,
    recipe: &Recipe,
) -> Option<Program> {
    let Node::Loop(nest) = program.body.get(nest_index)? else {
        return None;
    };
    let replacement = recipe.apply_to_nest(nest).ok()?;
    let mut out = program.clone();
    out.body.splice(nest_index..=nest_index, replacement);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;
    use machine::MachineConfig;

    fn gemm(n: i64) -> Program {
        parse_program(&format!(
            "program gemm {{ param N = {n};
               array A[N][N]; array B[N][N]; array C[N][N];
               for i in 0..N {{ for k in 0..N {{ for j in 0..N {{
                 C[i][j] += A[i][k] * B[k][j];
               }} }} }} }}"
        ))
        .unwrap()
    }

    #[test]
    fn proposals_cover_parallel_vector_tile() {
        let p = gemm(256);
        let search = EvolutionarySearch::default();
        let proposals = search.proposals(p.loop_nests()[0]);
        assert!(proposals.len() >= 4);
        assert!(proposals
            .iter()
            .any(|r| r.steps.iter().any(|s| matches!(s, Transform::Tile { .. }))));
        assert!(proposals
            .iter()
            .any(|r| r.steps.iter().any(|s| matches!(s, Transform::Parallelize { .. }))));
    }

    #[test]
    fn search_beats_the_identity_schedule() {
        let p = gemm(512);
        let model = CostModel::new(MachineConfig::xeon_e5_2680v3(), 12);
        let baseline = model.estimate(&p).seconds;
        let search = EvolutionarySearch::new(SearchConfig {
            epochs: 2,
            iterations_per_epoch: 2,
            population: 8,
            seed: 7,
        });
        let (best, time) = search.search(&p, 0, &model, &[]);
        assert!(time < baseline, "search ({time}) should beat identity ({baseline})");
        assert!(!best.is_identity());
    }

    #[test]
    fn search_is_deterministic_for_a_fixed_seed() {
        let p = gemm(128);
        let model = CostModel::sequential();
        let search = EvolutionarySearch::default();
        let (a, ta) = search.search(&p, 0, &model, &[]);
        let (b, tb) = search.search(&p, 0, &model, &[]);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn seeds_participate_in_the_population() {
        let p = gemm(256);
        let model = CostModel::new(MachineConfig::xeon_e5_2680v3(), 8);
        let seed_recipe = Recipe::new(vec![
            Transform::Tile {
                tiles: vec![
                    (Var::new("i"), 64),
                    (Var::new("k"), 64),
                    (Var::new("j"), 64),
                ],
            },
            Transform::Parallelize {
                iter: Var::new("i_t"),
            },
            Transform::Vectorize {
                iter: Var::new("j"),
            },
        ]);
        let search = EvolutionarySearch::new(SearchConfig {
            epochs: 1,
            iterations_per_epoch: 1,
            population: 6,
            seed: 3,
        });
        let (_, with_seed) = search.search(&p, 0, &model, &[seed_recipe.clone()]);
        let seed_time = evaluate_recipe(&p, 0, &seed_recipe, &model).unwrap();
        assert!(with_seed <= seed_time + 1e-12);
    }

    #[test]
    fn invalid_recipe_evaluates_to_none() {
        let p = gemm(64);
        let model = CostModel::sequential();
        let bad = Recipe::new(vec![Transform::Parallelize {
            iter: Var::new("does_not_exist"),
        }]);
        assert!(evaluate_recipe(&p, 0, &bad, &model).is_none());
        assert!(apply_recipe_to_program(&p, 5, &Recipe::identity()).is_none());
    }

    #[test]
    fn apply_recipe_replaces_only_the_target_nest() {
        let p = parse_program(
            "program two { param N = 32; array A[N]; array B[N];
               for i in 0..N { A[i] = 1.0; }
               for j in 0..N { B[j] = 2.0; } }",
        )
        .unwrap();
        let recipe = Recipe::new(vec![Transform::Vectorize {
            iter: Var::new("j"),
        }]);
        let out = apply_recipe_to_program(&p, 1, &recipe).unwrap();
        assert!(!out.loop_nests()[0].schedule.vectorize);
        assert!(out.loop_nests()[1].schedule.vectorize);
    }
}
