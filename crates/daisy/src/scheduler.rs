//! The daisy auto-scheduler: normalization + idiom detection + transfer
//! tuning (§4, "Optimization Algorithm").

use std::collections::HashSet;
use std::path::Path;
use std::sync::Arc;

use loop_ir::expr::Var;
use loop_ir::nest::Node;
use loop_ir::program::Program;
use machine::{CostMode, CostModel, CostReport, MachineConfig, PricedWith};
use normalize::{Normalizer, NormalizerConfig};
use transforms::{perfect_chain, Recipe};
use tunestore::{DurableStore, OsStorage, Snapshot, Storage, StoreError, StoreHealth};

use crate::database::{nest_key, DatabaseEntry, TuningDatabase};
use crate::embedding::PerformanceEmbedding;
use crate::idiom::detect_blas_idiom;
use crate::search::{
    apply_recipe_to_program, nest_scoped_graph, recipe_is_semantically_legal, EvolutionarySearch,
    SearchConfig,
};

/// Configuration of the daisy scheduler. The ablation study (Fig. 7) toggles
/// `normalize` and `transfer_tuning` independently.
#[derive(Debug, Clone, PartialEq)]
pub struct DaisyConfig {
    /// Run a priori loop nest normalization before optimizing.
    pub normalize: bool,
    /// Query the transfer-tuning database (and fall back to the evolutionary
    /// search when seeding).
    pub transfer_tuning: bool,
    /// Replace recognized BLAS-3 loop nests with library calls.
    pub idiom_detection: bool,
    /// Number of threads the generated schedule may use. This is a cost
    /// model parameter (it changes the estimated runtimes and therefore the
    /// chosen schedules) and is part of the store fingerprint.
    pub threads: usize,
    /// Machine the schedules are costed on.
    pub machine: MachineConfig,
    /// How many nearest database entries to try per nest.
    pub neighbors: usize,
    /// Worker threads used by the scheduler itself: database seeding fans
    /// the per-nest searches out, and [`DaisyScheduler::schedule`] plans
    /// independent top-level nests concurrently. `0` uses the machine's
    /// available parallelism; `1` is fully sequential. Unlike
    /// [`threads`](DaisyConfig::threads) this knob never changes results —
    /// [`ScheduleOutcome`]s are bit-identical at any value — so it is *not*
    /// part of the store fingerprint.
    pub parallelism: usize,
    /// Worker threads used by the cache simulator when costing multi-block
    /// computations through the sharded trace driver
    /// ([`machine::simulate_cache_sharded`]). `0` uses the machine's
    /// available parallelism; `1` is fully sequential. Like
    /// [`parallelism`](DaisyConfig::parallelism) this knob never changes
    /// results — sharded [`machine::CacheStats`] counters are bit-identical
    /// at any worker count — so it is *not* part of the store fingerprint.
    pub simulation_parallelism: usize,
    /// Which cache tier [`machine::CostModel::assess_cache`] answers from
    /// when pricing cache behaviour ([`CostMode::Exact`], the analytic
    /// closed-form tier, or [`CostMode::Auto`] — analytic during search,
    /// exact for the final winner). Candidate *ranking* is roofline-only
    /// (the evolutionary search never consults the cache tier), so this
    /// knob cannot change the chosen schedule and is *not* part of the
    /// store fingerprint; [`ScheduleOutcome::priced_with`] records which
    /// tier prices the winner.
    pub cache_mode: CostMode,
}

impl Default for DaisyConfig {
    fn default() -> Self {
        DaisyConfig {
            normalize: true,
            transfer_tuning: true,
            idiom_detection: true,
            threads: 12,
            machine: MachineConfig::xeon_e5_2680v3(),
            neighbors: 3,
            parallelism: 0,
            simulation_parallelism: 0,
            cache_mode: CostMode::Exact,
        }
    }
}

impl DaisyConfig {
    /// Returns this configuration with the given scheduler parallelism.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Returns this configuration with the given cache-simulation
    /// parallelism.
    pub fn with_simulation_parallelism(mut self, workers: usize) -> Self {
        self.simulation_parallelism = workers;
        self
    }

    /// Returns this configuration with the given cache-pricing mode.
    pub fn with_cache_mode(mut self, mode: CostMode) -> Self {
        self.cache_mode = mode;
        self
    }
}

/// The result of scheduling a program.
///
/// `PartialEq` compares the optimized program, the full cost report and the
/// decision log — the cold/warm equivalence guarantee of the persistent
/// tuning store is checked with exactly this comparison (costs are `f64`s,
/// so equality is bit-identity, not tolerance). [`PhaseTimings`] are
/// wall-clock measurements and **explicitly excluded**: two outcomes that
/// took different amounts of time to compute still compare equal.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// The optimized program (normalized, idiom-replaced, recipes applied).
    pub program: Program,
    /// Cost-model estimate of the optimized program.
    pub report: CostReport,
    /// One human-readable note per top-level nest describing what was done.
    pub decisions: Vec<String>,
    /// Which cache tier prices this winner under the scheduler's
    /// [`DaisyConfig::cache_mode`]: `Exact` for `Exact` and `Auto` (Auto
    /// validates the final winner exactly), `Analytic` only when the
    /// scheduler is pinned to the analytic tier. Provenance metadata — like
    /// [`phase_timings`](ScheduleOutcome::phase_timings) it is excluded
    /// from `PartialEq`, so outcomes from different cache modes (which are
    /// bit-identical in program, report and decisions) still compare equal.
    pub priced_with: PricedWith,
    /// Where the `schedule()` call itself spent its time. Observational
    /// only — never part of the bit-identity guarantee.
    pub phase_timings: PhaseTimings,
}

impl PartialEq for ScheduleOutcome {
    fn eq(&self, other: &Self) -> bool {
        // phase_timings is deliberately not compared: wall clock varies
        // between bit-identical runs. priced_with is provenance (which
        // cache tier prices the winner), not part of the result.
        self.program == other.program
            && self.report == other.report
            && self.decisions == other.decisions
    }
}

impl ScheduleOutcome {
    /// Estimated runtime in seconds.
    pub fn seconds(&self) -> f64 {
        self.report.seconds
    }
}

/// Wall-clock breakdown of one [`DaisyScheduler::schedule`] call, mirroring
/// the telemetry spans `schedule.normalize` / `schedule.seed` /
/// `schedule.search` / `schedule.cost`. Always populated (four `Instant`
/// reads), whether or not a telemetry recorder is installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// A-priori normalization of the input program.
    pub normalize_ns: u64,
    /// Baseline whole-program pricing (pre-populates the shared cost memo).
    pub seed_ns: u64,
    /// Per-nest planning fan-out: idiom detection, database lookup,
    /// legality gates, candidate pricing.
    pub search_ns: u64,
    /// Deterministic merge plus the final whole-program estimate.
    pub cost_ns: u64,
}

impl PhaseTimings {
    /// Sum over all phases.
    pub fn total_ns(&self) -> u64 {
        self.normalize_ns + self.seed_ns + self.search_ns + self.cost_ns
    }
}

impl std::fmt::Display for PhaseTimings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use telemetry::profile::fmt_ns;
        write!(
            f,
            "normalize {} · seed {} · search {} · cost {} (total {})",
            fmt_ns(self.normalize_ns),
            fmt_ns(self.seed_ns),
            fmt_ns(self.search_ns),
            fmt_ns(self.cost_ns),
            fmt_ns(self.total_ns()),
        )
    }
}

/// The daisy auto-scheduler.
#[derive(Debug, Clone, Default)]
pub struct DaisyScheduler {
    config: DaisyConfig,
    database: TuningDatabase,
    search: EvolutionarySearch,
}

impl DaisyScheduler {
    /// Creates a scheduler with the given configuration and an empty
    /// database.
    pub fn new(config: DaisyConfig) -> Self {
        DaisyScheduler {
            config,
            database: TuningDatabase::new(),
            search: EvolutionarySearch::new(SearchConfig::default()),
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &DaisyConfig {
        &self.config
    }

    /// Changes the scheduler's own worker-thread count
    /// ([`DaisyConfig::parallelism`]) without touching the database or the
    /// cost model. Outcomes are bit-identical at any value, so this is safe
    /// to flip between runs — including on a warm-started scheduler.
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.config.parallelism = parallelism;
    }

    /// Changes the cache-simulation worker count
    /// ([`DaisyConfig::simulation_parallelism`]) without touching the
    /// database. Sharded simulation counters are bit-identical at any value,
    /// so this too is safe to flip between runs.
    pub fn set_simulation_parallelism(&mut self, workers: usize) {
        self.config.simulation_parallelism = workers;
    }

    /// Read access to the transfer-tuning database.
    pub fn database(&self) -> &TuningDatabase {
        &self.database
    }

    /// Seeds the scheduling database from a set of programs (the paper seeds
    /// from the normalized A variants): every non-BLAS loop nest contributes
    /// a `(embedding, recipe)` pair found by the evolutionary search.
    ///
    /// The per-nest searches are independent, so they run on parallel worker
    /// threads (each search evaluating its own candidates sequentially — the
    /// outer fan-out already saturates the cores); entries are inserted in
    /// deterministic program/nest order afterwards.
    pub fn seed_from_programs(&mut self, programs: &[Program]) {
        for entry in self.seed_entries(programs) {
            self.database.insert(entry);
        }
    }

    /// [`DaisyScheduler::seed_from_programs`] with incremental durability:
    /// every entry the database accepts is also journaled into `store`
    /// (fsynced before the insert is acknowledged), so a crash mid-seeding
    /// loses at most the entry being written — earlier entries warm-start
    /// the next run. Returns the number of entries the store accepted.
    ///
    /// # Errors
    /// The first [`StoreError`] from journaling; entries seeded before the
    /// failure are already durable, and the in-memory database keeps only
    /// what the store acknowledged, so the two never diverge.
    pub fn seed_into_store(
        &mut self,
        programs: &[Program],
        store: &mut DurableStore,
    ) -> Result<usize, StoreError> {
        let mut accepted = 0usize;
        for entry in self.seed_entries(programs) {
            if store.insert(entry.to_stored())? {
                accepted += 1;
            }
            self.database.insert(entry);
        }
        Ok(accepted)
    }

    /// Computes the database entries seeding these programs produces (the
    /// shared heart of [`DaisyScheduler::seed_from_programs`] and
    /// [`DaisyScheduler::seed_into_store`]), in deterministic program/nest
    /// order.
    fn seed_entries(&self, programs: &[Program]) -> Vec<DatabaseEntry> {
        let _span = telemetry::span("seeding");
        let model = CostModel::new(self.config.machine.clone(), self.config.threads)
            .with_simulation_parallelism(self.config.simulation_parallelism)
            .with_cost_mode(self.config.cache_mode);
        let normalized: Vec<Program> = programs.iter().map(|p| self.normalized(p)).collect();
        let mut jobs: Vec<(&Program, usize)> = Vec::new();
        for program in &normalized {
            for (index, node) in program.body.iter().enumerate() {
                let Node::Loop(nest) = node else { continue };
                if self.config.idiom_detection && detect_blas_idiom(program, nest).is_some() {
                    // BLAS nests are handled by idiom detection at scheduling
                    // time; the database entry records that decision.
                    continue;
                }
                jobs.push((program, index));
            }
        }
        telemetry::counter("daisy.seed.nests", jobs.len() as u64);
        let search = self.search.clone().with_parallel(false);
        crate::search::parallel_map_with(self.config.parallelism, &jobs, |&(program, index)| {
            // Keep the winning recipe's *nest-scoped* cost: the search
            // returns whole-program seconds (a sum over node costs), so
            // subtracting the other nodes' baseline isolates what the
            // recipe achieved on this nest. Whole-program cost would make
            // duplicate-key ranking depend on which seeding program the
            // entry happened to come from (e.g. under `tunedb merge`).
            let (recipe, cost) = search.search(program, index, &model, &[]);
            let others: f64 = program
                .body
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != index)
                .map(|(_, node)| model.node_cost(program, node).seconds)
                .sum();
            let nest = program.body[index]
                .as_loop()
                .expect("job indices point at loops");
            let chain: Vec<Var> = perfect_chain(nest).iter().map(|l| l.iter.clone()).collect();
            DatabaseEntry {
                key: nest_key(program, &program.body[index]),
                cost: cost - others,
                embedding: PerformanceEmbedding::of_nest(program, nest),
                recipe,
                chain,
                source: format!("{}#{}", program.name, index),
            }
        })
    }

    /// The fingerprint this scheduler stamps on persisted stores: the
    /// `tunestore` environment fingerprint extended with the machine model
    /// and thread count the costs were produced under. Two schedulers can
    /// exchange stores exactly when their fingerprints are equal — stored
    /// costs decide duplicate-key ranking, and costs from a different cost
    /// model are not comparable. Knobs that cannot change stored costs —
    /// `parallelism`, `simulation_parallelism` and `cache_mode` (ranking is
    /// roofline-only; the cache tier never decides a schedule) — are
    /// deliberately excluded so stores stay exchangeable across them.
    pub fn store_fingerprint(&self) -> String {
        // Every machine parameter is encoded explicitly through the store
        // codec (not via Debug formatting, whose output is not a stability
        // guarantee). The exhaustive destructure (no `..`) turns a new
        // MachineConfig field into a compile error here, so a model change
        // can never silently keep old fingerprints valid.
        let machine::MachineConfig {
            name,
            frequency_hz,
            cores,
            scalar_flops_per_cycle,
            vector_width,
            vector_efficiency,
            l1_bytes,
            l1_assoc,
            l2_bytes,
            l2_assoc,
            l3_bytes,
            line_bytes,
            dram_bandwidth,
            bandwidth_scalability,
            l2_bandwidth,
            l1_bandwidth,
            blas_efficiency,
            parallel_overhead,
            atomic_penalty,
        } = &self.config.machine;
        let mut w = tunestore::codec::ByteWriter::new();
        w.string(name);
        for f in [
            frequency_hz,
            scalar_flops_per_cycle,
            vector_efficiency,
            dram_bandwidth,
            bandwidth_scalability,
            l2_bandwidth,
            l1_bandwidth,
            blas_efficiency,
            parallel_overhead,
            atomic_penalty,
        ] {
            w.f64(*f);
        }
        for n in [
            cores,
            vector_width,
            l1_bytes,
            l1_assoc,
            l2_bytes,
            l2_assoc,
            l3_bytes,
            line_bytes,
        ] {
            w.u64(*n as u64);
        }
        let machine = tunestore::codec::checksum(&w.into_bytes());
        format!(
            "{}-m{machine:016x}-t{}",
            tunestore::environment_fingerprint(),
            self.config.threads
        )
    }

    /// Replaces the database with one loaded from a persisted store,
    /// skipping seeding entirely. Returns the number of entries loaded.
    ///
    /// The store must carry this scheduler's [`store_fingerprint`]
    /// (environment + machine model + thread count: costs from a different
    /// cost model are not comparable) — otherwise
    /// [`StoreError::FingerprintMismatch`] is returned and the database is
    /// left untouched. A warm-started scheduler is guaranteed to produce
    /// bit-identical [`ScheduleOutcome`]s to the scheduler that persisted
    /// the store: entry order, keys, costs and recipes all round-trip
    /// exactly.
    ///
    /// [`store_fingerprint`]: DaisyScheduler::store_fingerprint
    ///
    /// # Errors
    /// Any [`StoreError`] from reading or decoding the snapshot.
    pub fn warm_start(&mut self, path: impl AsRef<Path>) -> Result<usize, StoreError> {
        let snapshot = Snapshot::load(path)?;
        let expected = self.store_fingerprint();
        if snapshot.fingerprint != expected {
            return Err(StoreError::FingerprintMismatch {
                found: snapshot.fingerprint,
                expected,
            });
        }
        self.database = TuningDatabase::from_snapshot(&snapshot)?;
        Ok(self.database.len())
    }

    /// Persists the current database to a store file (atomically), stamped
    /// with this scheduler's [`store_fingerprint`], so later runs can
    /// [`DaisyScheduler::warm_start`] instead of re-seeding.
    ///
    /// [`store_fingerprint`]: DaisyScheduler::store_fingerprint
    ///
    /// # Errors
    /// Any [`StoreError`] from writing the snapshot.
    pub fn persist(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let mut snapshot = self.database.to_snapshot();
        snapshot.fingerprint = self.store_fingerprint();
        snapshot.save(path)
    }

    /// Opens the crash-safe [`DurableStore`] at `path` under this
    /// scheduler's [`store_fingerprint`], for incremental seeding via
    /// [`DaisyScheduler::seed_into_store`].
    ///
    /// [`store_fingerprint`]: DaisyScheduler::store_fingerprint
    ///
    /// # Errors
    /// Only real I/O failures; damaged files degrade (see
    /// [`DurableStore::open`]).
    pub fn open_store(&self, path: impl AsRef<Path>) -> Result<DurableStore, StoreError> {
        self.open_store_with(Arc::new(OsStorage), path)
    }

    /// [`DaisyScheduler::open_store`] through an explicit [`Storage`] (the
    /// fault harness).
    pub fn open_store_with(
        &self,
        storage: Arc<dyn Storage>,
        path: impl AsRef<Path>,
    ) -> Result<DurableStore, StoreError> {
        DurableStore::open(storage, path, &self.store_fingerprint())
    }

    /// Degrading warm start: recovers whatever the store at `path` (its
    /// snapshot *and* journal) durably holds and seeds the database from
    /// it. Where the strict [`DaisyScheduler::warm_start`] errors, this
    /// degrades toward cold seeding instead:
    ///
    /// * a missing store warm-starts empty;
    /// * corrupt files are quarantined to `<name>.corrupt` and skipped;
    /// * files from a different fingerprint are moved to `<name>.foreign`;
    /// * a torn journal tail is dropped (everything acknowledged survives);
    /// * recovered entries this build cannot represent are skipped.
    ///
    /// The surviving entries still carry the full bit-identity guarantee:
    /// scheduling with them equals scheduling with a cold database built
    /// from the same entries. What happened is reported in the returned
    /// [`WarmStart`] — callers log it and proceed.
    ///
    /// # Errors
    /// Only real I/O failures while reading or repairing the store files.
    pub fn warm_start_resilient(
        &mut self,
        path: impl AsRef<Path>,
    ) -> Result<WarmStart, StoreError> {
        self.warm_start_resilient_with(Arc::new(OsStorage), path)
    }

    /// [`DaisyScheduler::warm_start_resilient`] through an explicit
    /// [`Storage`] (the fault harness).
    pub fn warm_start_resilient_with(
        &mut self,
        storage: Arc<dyn Storage>,
        path: impl AsRef<Path>,
    ) -> Result<WarmStart, StoreError> {
        let store = self.open_store_with(storage, path)?;
        let (database, skipped) = TuningDatabase::from_entries_lossy(store.entries());
        let loaded = database.len();
        self.database = database;
        Ok(WarmStart {
            health: store.health().clone(),
            loaded,
            skipped,
        })
    }

    fn normalized(&self, program: &Program) -> Program {
        if self.config.normalize {
            Normalizer::new()
                .run(program)
                .map(|n| n.program)
                .unwrap_or_else(|_| program.clone())
        } else {
            Normalizer::with_config(NormalizerConfig {
                fission: false,
                stride_minimization: false,
            })
            .run(program)
            .map(|n| n.program)
            .unwrap_or_else(|_| program.clone())
        }
    }

    /// Schedules a program: normalization (if enabled), then per top-level
    /// nest idiom detection and transfer-tuned recipe application.
    ///
    /// After normalization the top-level nests are independent: idiom
    /// detection, database lookup, legality checks and candidate pricing for
    /// one nest never read another nest's scheduling decision. The per-nest
    /// planning therefore fans out across
    /// [`DaisyConfig::parallelism`] worker threads; the resulting plans are
    /// merged back sequentially in nest order, so the returned
    /// [`ScheduleOutcome`] is bit-identical at any parallelism level
    /// (including warm-started runs against a persisted store).
    pub fn schedule(&self, program: &Program) -> ScheduleOutcome {
        let _span = telemetry::span("schedule");
        let model = CostModel::new(self.config.machine.clone(), self.config.threads)
            .with_simulation_parallelism(self.config.simulation_parallelism)
            .with_cost_mode(self.config.cache_mode);
        let (normalized, normalize_ns) = telemetry::timed("normalize", || self.normalized(program));
        // Whole-program baseline, priced once: candidates must beat it, and
        // pricing it here also pre-populates the shared per-nest memo so the
        // parallel planners do not redo it per worker.
        let (baseline, seed_ns) = telemetry::timed("seed", || model.estimate(&normalized).seconds);

        // Phase 1: plan every top-level node independently, in parallel.
        let (plans, search_ns) = telemetry::timed("search", || {
            let indices: Vec<usize> = (0..normalized.body.len()).collect();
            crate::search::parallel_map_with(self.config.parallelism, &indices, |&i| {
                self.plan_node(&normalized, i, &model, baseline)
            })
        });

        // Phase 2: deterministic merge in nest order. Recipes can change the
        // number of top-level nodes, so track an explicit cursor.
        let mut current = normalized;
        let mut decisions = Vec::new();
        let (report, cost_ns) = telemetry::timed("cost", || {
            let mut index = 0usize;
            for plan in plans {
                match plan {
                    NestPlan::Passthrough => index += 1,
                    NestPlan::Idiom(call) => {
                        decisions.push(format!("nest {index}: replaced with {call}"));
                        current.body[index] = Node::Call(call);
                        index += 1;
                    }
                    NestPlan::Recipe {
                        recipe,
                        source,
                        replacement,
                    } => {
                        let added = replacement.len();
                        current.body.splice(index..=index, replacement);
                        // Log the whole-program estimate *with earlier decisions
                        // applied*, as the sequential walk always did. The merge
                        // is sequential and the estimate memoized, so this stays
                        // cheap and bit-identical at any parallelism.
                        let seconds = model.estimate(&current).seconds;
                        decisions.push(format!(
                            "nest {index}: applied recipe from {source} ({recipe}), est. {seconds:.4}s"
                        ));
                        index += added.max(1);
                    }
                    NestPlan::Unoptimized => {
                        decisions.push(format!("nest {index}: left unoptimized (-O3 only)"));
                        index += 1;
                    }
                }
            }
            model.estimate(&current)
        });
        telemetry::counter("daisy.schedule.calls", 1);
        telemetry::counter("daisy.schedule.nests", current.body.len() as u64);
        ScheduleOutcome {
            program: current,
            report,
            decisions,
            priced_with: if self.config.cache_mode.uses_exact(true) {
                PricedWith::Exact
            } else {
                PricedWith::Analytic
            },
            phase_timings: PhaseTimings {
                normalize_ns,
                seed_ns,
                search_ns,
                cost_ns,
            },
        }
    }

    /// Plans one top-level node of the normalized program. Pure per-nest
    /// work — everything it reads (`normalized`, the database, the memoized
    /// cost model) is shared immutably — so plans can be computed on any
    /// number of worker threads in any order without changing the result.
    fn plan_node(
        &self,
        normalized: &Program,
        index: usize,
        model: &CostModel,
        baseline: f64,
    ) -> NestPlan {
        let Node::Loop(nest) = &normalized.body[index] else {
            return NestPlan::Passthrough;
        };
        // 1. BLAS idiom detection.
        if self.config.idiom_detection {
            if let Some(call) = detect_blas_idiom(normalized, nest) {
                telemetry::counter("daisy.plan.idiom_hits", 1);
                return NestPlan::Idiom(call);
            }
        }
        // 2. Transfer tuning: an O(1) exact-match lookup by the nest's
        //    structural-hash key first — a hit means the database holds
        //    a recipe tuned for a structurally identical nest at the
        //    same problem size — then the recipes of the nearest
        //    neighbours; the best candidate that is legal, applies and
        //    improves the cost wins. Neighbours whose retargeted
        //    recipes produce structurally identical candidates are
        //    priced once.
        let mut best: Option<(f64, Recipe, String)> = None;
        if self.config.transfer_tuning && !self.database.is_empty() {
            let chain: Vec<Var> = perfect_chain(nest).iter().map(|l| l.iter.clone()).collect();
            // Dependences of this nest, for the same semantic gate the
            // seeding search applies (a recipe tuned on a structurally
            // similar but differently-constrained nest must not smuggle
            // in an illegal parallelization).
            let graph = nest_scoped_graph(normalized, nest);
            let consider = |entry: &DatabaseEntry,
                            exact: bool,
                            tried: &mut HashSet<u64>,
                            best: &mut Option<(f64, Recipe, String)>| {
                let Some(recipe) = TuningDatabase::retarget(entry, &chain) else {
                    return;
                };
                if !recipe_is_semantically_legal(&graph, nest, &recipe) {
                    return;
                }
                let Some(candidate) = apply_recipe_to_program(normalized, index, &recipe) else {
                    return;
                };
                if !tried.insert(candidate.structural_hash()) {
                    return;
                }
                let time = model.estimate(&candidate).seconds;
                let better = match &*best {
                    None => time < baseline,
                    Some((t, _, _)) => time < *t,
                };
                if better {
                    let source = if exact {
                        format!("{} [exact]", entry.source)
                    } else {
                        entry.source.clone()
                    };
                    *best = Some((time, recipe, source));
                }
            };
            let mut tried: HashSet<u64> = HashSet::new();
            let key = nest_key(normalized, &normalized.body[index]);
            if let Some(entry) = self.database.lookup(key) {
                telemetry::counter("daisy.plan.exact_hits", 1);
                consider(entry, true, &mut tried, &mut best);
            }
            // The exact match is a candidate, not a short-circuit: a
            // neighbour's recipe can still beat the recipe seeded on
            // this very nest (the seeding search is heuristic), so the
            // k-NN scan always runs. The `tried` set keeps a neighbour
            // whose retargeted recipe rewrites the nest identically
            // from being priced twice.
            let embedding = PerformanceEmbedding::of_nest(normalized, nest);
            for entry in self.database.nearest(&embedding, self.config.neighbors) {
                consider(entry, false, &mut tried, &mut best);
            }
            telemetry::counter("daisy.plan.candidates_priced", tried.len() as u64);
        }
        match best {
            Some((_, recipe, source)) => {
                // The candidate applied during pricing, so it applies here.
                let candidate = apply_recipe_to_program(normalized, index, &recipe)
                    .expect("winning recipe applied during pricing");
                let added = candidate.body.len() + 1 - normalized.body.len();
                let replacement: Vec<Node> = candidate.body[index..index + added].to_vec();
                telemetry::counter("daisy.plan.recipes_applied", 1);
                NestPlan::Recipe {
                    recipe,
                    source,
                    replacement,
                }
            }
            None => {
                telemetry::counter("daisy.plan.unoptimized", 1);
                NestPlan::Unoptimized
            }
        }
    }
}

/// What a [`DaisyScheduler::warm_start_resilient`] recovered: the store
/// health report plus how many entries made it into the database.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// What recovery found on disk and what it had to do about it.
    pub health: StoreHealth,
    /// Entries loaded into the database.
    pub loaded: usize,
    /// Recovered entries skipped because this build cannot represent them
    /// (e.g. a different embedding dimension).
    pub skipped: usize,
}

impl WarmStart {
    /// True when the store was fully intact and nothing was skipped.
    pub fn is_clean(&self) -> bool {
        self.health.is_clean() && self.skipped == 0
    }
}

/// The scheduling decision for one top-level node of the normalized
/// program, computed independently per nest and merged in nest order.
#[derive(Debug, Clone)]
enum NestPlan {
    /// Not a loop nest: the node is copied through unchanged.
    Passthrough,
    /// Replaced by a recognized BLAS library call.
    Idiom(loop_ir::nest::BlasCall),
    /// A transfer-tuned recipe improved the estimated cost.
    Recipe {
        recipe: Recipe,
        source: String,
        replacement: Vec<Node>,
    },
    /// No database candidate beat the baseline.
    Unoptimized,
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;

    /// PolyBench-style GEMM, A variant (textbook loop order, fused scaling).
    fn gemm_a(n: i64) -> Program {
        parse_program(&format!(
            "program gemm_a {{ param NI = {n}; param NJ = {n}; param NK = {n};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
               for i in 0..NI {{ for j in 0..NJ {{
                 C[i][j] = C[i][j] * beta;
                 for k in 0..NK {{ C[i][j] += alpha * A[i][k] * B[k][j]; }}
               }} }} }}"
        ))
        .unwrap()
    }

    /// Semantically equivalent B variant: scaling split off, reduction loops
    /// permuted badly.
    fn gemm_b(n: i64) -> Program {
        parse_program(&format!(
            "program gemm_b {{ param NI = {n}; param NJ = {n}; param NK = {n};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
               for j in 0..NJ {{ for i in 0..NI {{
                 C[i][j] = C[i][j] * beta;
               }} }}
               for k in 0..NK {{ for j in 0..NJ {{ for i in 0..NI {{
                 C[i][j] += alpha * A[i][k] * B[k][j];
               }} }} }} }}"
        ))
        .unwrap()
    }

    #[test]
    fn gemm_is_idiom_replaced_after_normalization() {
        let scheduler = DaisyScheduler::new(DaisyConfig::default());
        let outcome = scheduler.schedule(&gemm_a(256));
        // After fission, the k-reduction nest is a clean GEMM and becomes a
        // library call; the scaling nest stays a loop.
        let calls = outcome
            .program
            .body
            .iter()
            .filter(|n| matches!(n, Node::Call(_)))
            .count();
        assert_eq!(calls, 1);
        assert!(outcome.decisions.iter().any(|d| d.contains("dgemm")));
    }

    #[test]
    fn idiom_detection_fails_without_normalization() {
        let config = DaisyConfig {
            normalize: false,
            ..DaisyConfig::default()
        };
        let scheduler = DaisyScheduler::new(config);
        let outcome = scheduler.schedule(&gemm_a(256));
        let calls = outcome
            .program
            .body
            .iter()
            .filter(|n| matches!(n, Node::Call(_)))
            .count();
        assert_eq!(calls, 0, "the fused GEMM must not be recognized");
    }

    #[test]
    fn a_and_b_variants_schedule_to_similar_performance() {
        let mut scheduler = DaisyScheduler::new(DaisyConfig::default());
        let a = gemm_a(512);
        let b = gemm_b(512);
        scheduler.seed_from_programs(std::slice::from_ref(&a));
        let out_a = scheduler.schedule(&a);
        let out_b = scheduler.schedule(&b);
        let ratio = out_b.seconds() / out_a.seconds();
        assert!(
            (0.8..1.25).contains(&ratio),
            "A/B runtime ratio {ratio} should be close to 1 (A={}, B={})",
            out_a.seconds(),
            out_b.seconds()
        );
    }

    #[test]
    fn transfer_tuning_recipes_come_from_the_database() {
        // Disable idiom detection so the GEMM nest must be optimized through
        // the database.
        let config = DaisyConfig {
            idiom_detection: false,
            ..DaisyConfig::default()
        };
        let mut scheduler = DaisyScheduler::new(config.clone());
        let a = gemm_a(512);
        scheduler.seed_from_programs(std::slice::from_ref(&a));
        assert!(!scheduler.database().is_empty());
        let tuned = scheduler.schedule(&gemm_b(512));
        // Without any database the same configuration leaves the nests
        // unoptimized and is slower.
        let untuned = DaisyScheduler::new(config).schedule(&gemm_b(512));
        assert!(tuned.seconds() < untuned.seconds());
        assert!(tuned
            .decisions
            .iter()
            .any(|d| d.contains("applied recipe from")));
    }

    #[test]
    fn scheduled_program_is_well_formed() {
        let mut scheduler = DaisyScheduler::new(DaisyConfig::default());
        let a = gemm_a(128);
        scheduler.seed_from_programs(std::slice::from_ref(&a));
        let outcome = scheduler.schedule(&a);
        assert!(outcome.program.validate().is_ok());
        assert!(outcome.report.flops > 0.0);
        assert!(!outcome.decisions.is_empty());
    }

    #[test]
    fn config_accessors() {
        let scheduler = DaisyScheduler::new(DaisyConfig::default());
        assert!(scheduler.config().normalize);
        assert!(scheduler.database().is_empty());
    }

    #[test]
    fn repeated_seeding_does_not_grow_the_database() {
        let mut scheduler = DaisyScheduler::new(DaisyConfig {
            idiom_detection: false,
            ..DaisyConfig::default()
        });
        let a = gemm_a(128);
        scheduler.seed_from_programs(std::slice::from_ref(&a));
        let len = scheduler.database().len();
        assert!(len > 0);
        scheduler.seed_from_programs(std::slice::from_ref(&a));
        assert_eq!(
            scheduler.database().len(),
            len,
            "re-seeding the same programs must dedupe, not accumulate"
        );
    }

    #[test]
    fn exact_match_fast_path_is_used_for_seeded_nests() {
        let config = DaisyConfig {
            idiom_detection: false,
            ..DaisyConfig::default()
        };
        let mut scheduler = DaisyScheduler::new(config);
        let a = gemm_a(256);
        scheduler.seed_from_programs(std::slice::from_ref(&a));
        let outcome = scheduler.schedule(&a);
        assert!(
            outcome.decisions.iter().any(|d| d.contains("[exact]")),
            "scheduling a seeded program should hit the exact-match path: {:?}",
            outcome.decisions
        );
    }

    #[test]
    fn warm_started_scheduler_is_bit_identical_to_cold() {
        let dir = std::env::temp_dir().join(format!("daisy-warm-{}", std::process::id()));
        let path = dir.join("gemm.tunedb");
        let config = DaisyConfig {
            idiom_detection: false,
            ..DaisyConfig::default()
        };
        let a = gemm_a(256);
        let b = gemm_b(256);

        let mut cold = DaisyScheduler::new(config.clone());
        cold.seed_from_programs(std::slice::from_ref(&a));
        cold.persist(&path).unwrap();

        let mut warm = DaisyScheduler::new(config);
        let loaded = warm.warm_start(&path).unwrap();
        assert_eq!(loaded, cold.database().len());
        assert_eq!(warm.database().entries(), cold.database().entries());

        for program in [&a, &b] {
            let cold_outcome = cold.schedule(program);
            let warm_outcome = warm.schedule(program);
            assert_eq!(
                cold_outcome, warm_outcome,
                "cold and warm outcomes must be bit-identical"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn outcome_equality_ignores_phase_timings() {
        let config = DaisyConfig {
            idiom_detection: false,
            ..DaisyConfig::default()
        };
        let scheduler = DaisyScheduler::new(config);
        let program = gemm_a(64);
        let first = scheduler.schedule(&program);
        let second = scheduler.schedule(&program);
        assert_eq!(
            first, second,
            "repeat runs are bit-identical regardless of wall clock"
        );
        assert!(
            first.phase_timings.total_ns() > 0,
            "timings are populated even with no telemetry recorder installed"
        );
        let mut zeroed = first.clone();
        zeroed.phase_timings = PhaseTimings::default();
        assert_eq!(
            first, zeroed,
            "phase timings are explicitly excluded from bit-identity"
        );
        let mut tampered = first.clone();
        tampered.decisions.push("tampered".to_string());
        assert_ne!(first, tampered, "equality still sees the real fields");
    }

    #[test]
    fn warm_start_rejects_stores_from_a_different_cost_model() {
        let dir = std::env::temp_dir().join(format!("daisy-warmfp-{}", std::process::id()));
        let path = dir.join("model.tunedb");
        let mut seeder = DaisyScheduler::new(DaisyConfig::default());
        seeder.seed_from_programs(std::slice::from_ref(&gemm_a(64)));
        seeder.persist(&path).unwrap();

        // Different machine model and different thread count: the persisted
        // costs come from another cost model, so the fingerprint must veto
        // the warm start and leave the database untouched.
        for config in [
            DaisyConfig {
                machine: machine::MachineConfig::tiny_for_tests(),
                ..DaisyConfig::default()
            },
            DaisyConfig {
                threads: 1,
                ..DaisyConfig::default()
            },
        ] {
            let mut other = DaisyScheduler::new(config);
            assert!(matches!(
                other.warm_start(&path),
                Err(StoreError::FingerprintMismatch { .. })
            ));
            assert!(other.database().is_empty());
        }
        // The matching configuration still loads.
        let mut same = DaisyScheduler::new(DaisyConfig::default());
        assert_eq!(same.warm_start(&path).unwrap(), seeder.database().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite of PR 4: `ScheduleOutcome`s must not depend on the
    /// scheduler's own parallelism. Multi-nest CLOUDSC (the normalizer
    /// splits the proxy into several independent top-level nests) is
    /// scheduled at parallelism 1, 4 and 12, cold and warm-started, and
    /// every outcome must be bit-identical — same optimized program, same
    /// cost report, same decision log.
    #[test]
    fn schedule_outcomes_are_bit_identical_at_any_parallelism() {
        use polybench::cloudsc::{full_model, CloudscSizes, CloudscVariant};

        let dir = std::env::temp_dir().join(format!("daisy-par-{}", std::process::id()));
        let path = dir.join("par.tunedb");
        let base = DaisyConfig::default();
        let a = gemm_a(128);

        let mut cold = DaisyScheduler::new(base.clone());
        cold.seed_from_programs(std::slice::from_ref(&a));
        cold.persist(&path).unwrap();

        let workloads: Vec<Program> = [
            CloudscVariant::Fortran,
            CloudscVariant::C,
            CloudscVariant::Dace,
        ]
        .into_iter()
        .map(|v| full_model(v, CloudscSizes::mini()))
        .collect();

        for program in &workloads {
            let mut outcomes = Vec::new();
            for parallelism in [1usize, 4, 12] {
                let config = base.clone().with_parallelism(parallelism);
                // Cold: reuse the seeded database under the new parallelism.
                let mut cold_p = cold.clone();
                cold_p.config = config.clone();
                outcomes.push(("cold", parallelism, cold_p.schedule(program)));
                // Warm: a fresh scheduler started from the persisted store.
                let mut warm = DaisyScheduler::new(config);
                warm.warm_start(&path).unwrap();
                outcomes.push(("warm", parallelism, warm.schedule(program)));
            }
            let (mode0, par0, first) = &outcomes[0];
            for (mode, parallelism, outcome) in &outcomes[1..] {
                assert_eq!(
                    outcome, first,
                    "{}: {mode} parallelism {parallelism} diverged from {mode0} parallelism {par0}",
                    program.name
                );
            }
            // The workload really exercises program-level fan-out.
            assert!(
                first.decisions.len() >= 2,
                "{} should have several top-level nests, got {:?}",
                program.name,
                first.decisions
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite of PR 9: like scheduler parallelism, the cache-simulation
    /// worker count never changes results, so it is excluded from the store
    /// fingerprint (stores stay exchangeable across the knob) and outcomes
    /// stay bit-identical at any value.
    #[test]
    fn simulation_parallelism_leaves_fingerprint_and_outcomes_unchanged() {
        let base = DaisyScheduler::new(DaisyConfig::default());
        let program = gemm_a(64);
        let baseline = base.schedule(&program);
        for workers in [1usize, 3, 8] {
            let tuned =
                DaisyScheduler::new(DaisyConfig::default().with_simulation_parallelism(workers));
            assert_eq!(
                tuned.store_fingerprint(),
                base.store_fingerprint(),
                "simulation parallelism {workers} must not invalidate stores"
            );
            assert_eq!(
                tuned.schedule(&program),
                baseline,
                "simulation parallelism {workers} changed the outcome"
            );
        }
    }

    /// Satellite of PR 10: candidate ranking is roofline-only, so the cache
    /// pricing mode can never change the chosen schedule. It is therefore
    /// excluded from the store fingerprint (stores stay exchangeable across
    /// the knob); only the outcome's `priced_with` provenance differs.
    #[test]
    fn cache_mode_leaves_fingerprint_and_chosen_schedule_unchanged() {
        let base = DaisyScheduler::new(DaisyConfig::default());
        let program = gemm_a(64);
        let baseline = base.schedule(&program);
        assert_eq!(baseline.priced_with, machine::PricedWith::Exact);
        for (mode, priced_with) in [
            (CostMode::Exact, machine::PricedWith::Exact),
            (CostMode::Auto, machine::PricedWith::Exact),
            (CostMode::Analytic, machine::PricedWith::Analytic),
        ] {
            let tuned = DaisyScheduler::new(DaisyConfig::default().with_cache_mode(mode));
            assert_eq!(
                tuned.store_fingerprint(),
                base.store_fingerprint(),
                "cache mode {} must not invalidate stores",
                mode.as_str()
            );
            let outcome = tuned.schedule(&program);
            assert_eq!(
                outcome,
                baseline,
                "cache mode {} changed the chosen schedule",
                mode.as_str()
            );
            assert_eq!(outcome.priced_with, priced_with);
        }
    }

    #[test]
    fn resilient_warm_start_matches_strict_and_survives_crash_mid_seeding() {
        use tunestore::{FaultStorage, Storage};

        let storage = Arc::new(FaultStorage::default());
        let path = Path::new("dir/warm.tunedb");
        let config = DaisyConfig {
            idiom_detection: false,
            ..DaisyConfig::default()
        };
        let a = gemm_a(128);

        let mut seeder = DaisyScheduler::new(config.clone());
        let mut store = seeder
            .open_store_with(Arc::clone(&storage) as Arc<dyn Storage>, path)
            .unwrap();
        let accepted = seeder
            .seed_into_store(std::slice::from_ref(&a), &mut store)
            .unwrap();
        assert!(accepted > 0);
        assert_eq!(accepted, seeder.database().len());
        drop(store);

        // No compact ran: everything lives in the journal. Power-cut the
        // storage; every acknowledged insert must still warm-start.
        storage.crash();
        let mut warm = DaisyScheduler::new(config.clone());
        let report = warm
            .warm_start_resilient_with(Arc::clone(&storage) as Arc<dyn Storage>, path)
            .unwrap();
        assert!(report.is_clean(), "clean store: {}", report.health);
        assert_eq!(report.loaded, seeder.database().len());
        assert_eq!(report.skipped, 0);
        assert_eq!(warm.database().entries(), seeder.database().entries());
        assert_eq!(
            warm.schedule(&a),
            seeder.schedule(&a),
            "resilient warm start must stay bit-identical"
        );
    }

    #[test]
    fn resilient_warm_start_quarantines_damage_and_degrades_to_cold() {
        use tunestore::{FaultStorage, SourceState, Storage};

        let storage = Arc::new(FaultStorage::default());
        let path = Path::new("dir/warm.tunedb");
        let config = DaisyConfig {
            idiom_detection: false,
            ..DaisyConfig::default()
        };
        let mut seeder = DaisyScheduler::new(config.clone());
        let mut store = seeder
            .open_store_with(Arc::clone(&storage) as Arc<dyn Storage>, path)
            .unwrap();
        seeder.seed_into_store(&[gemm_a(128)], &mut store).unwrap();
        store.compact().unwrap();
        drop(store);

        // Flip a bit in the snapshot: where strict warm_start would error,
        // the resilient one quarantines and proceeds empty (the journal
        // was just reset by the compact).
        storage.corrupt_byte(path, 40, 0x08);
        let mut hurt = DaisyScheduler::new(config);
        let report = hurt
            .warm_start_resilient_with(Arc::clone(&storage) as Arc<dyn Storage>, path)
            .unwrap();
        assert!(matches!(
            report.health.snapshot,
            SourceState::Quarantined { .. }
        ));
        assert_eq!(report.loaded, 0);
        assert!(hurt.database().is_empty(), "degraded to cold seeding");
        assert!(storage.exists(Path::new("dir/warm.tunedb.corrupt")));
    }

    #[test]
    fn warm_start_rejects_corrupt_and_missing_stores() {
        let dir = std::env::temp_dir().join(format!("daisy-warmerr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut scheduler = DaisyScheduler::new(DaisyConfig::default());
        assert!(scheduler.warm_start(dir.join("missing.tunedb")).is_err());
        let path = dir.join("corrupt.tunedb");
        std::fs::write(&path, b"DAISYTDBgarbage").unwrap();
        assert!(scheduler.warm_start(&path).is_err());
        assert!(scheduler.database().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
