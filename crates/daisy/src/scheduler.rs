//! The daisy auto-scheduler: normalization + idiom detection + transfer
//! tuning (§4, "Optimization Algorithm").

use std::collections::HashSet;

use loop_ir::expr::Var;
use loop_ir::nest::Node;
use loop_ir::program::Program;
use machine::{CostModel, CostReport, MachineConfig};
use normalize::{Normalizer, NormalizerConfig};
use transforms::{perfect_chain, Recipe};

use crate::database::{DatabaseEntry, TuningDatabase};
use crate::embedding::PerformanceEmbedding;
use crate::idiom::detect_blas_idiom;
use crate::search::{apply_recipe_to_program, EvolutionarySearch, SearchConfig};

/// Configuration of the daisy scheduler. The ablation study (Fig. 7) toggles
/// `normalize` and `transfer_tuning` independently.
#[derive(Debug, Clone, PartialEq)]
pub struct DaisyConfig {
    /// Run a priori loop nest normalization before optimizing.
    pub normalize: bool,
    /// Query the transfer-tuning database (and fall back to the evolutionary
    /// search when seeding).
    pub transfer_tuning: bool,
    /// Replace recognized BLAS-3 loop nests with library calls.
    pub idiom_detection: bool,
    /// Number of threads the generated schedule may use.
    pub threads: usize,
    /// Machine the schedules are costed on.
    pub machine: MachineConfig,
    /// How many nearest database entries to try per nest.
    pub neighbors: usize,
}

impl Default for DaisyConfig {
    fn default() -> Self {
        DaisyConfig {
            normalize: true,
            transfer_tuning: true,
            idiom_detection: true,
            threads: 12,
            machine: MachineConfig::xeon_e5_2680v3(),
            neighbors: 3,
        }
    }
}

/// The result of scheduling a program.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// The optimized program (normalized, idiom-replaced, recipes applied).
    pub program: Program,
    /// Cost-model estimate of the optimized program.
    pub report: CostReport,
    /// One human-readable note per top-level nest describing what was done.
    pub decisions: Vec<String>,
}

impl ScheduleOutcome {
    /// Estimated runtime in seconds.
    pub fn seconds(&self) -> f64 {
        self.report.seconds
    }
}

/// The daisy auto-scheduler.
#[derive(Debug, Clone, Default)]
pub struct DaisyScheduler {
    config: DaisyConfig,
    database: TuningDatabase,
    search: EvolutionarySearch,
}

impl DaisyScheduler {
    /// Creates a scheduler with the given configuration and an empty
    /// database.
    pub fn new(config: DaisyConfig) -> Self {
        DaisyScheduler {
            config,
            database: TuningDatabase::new(),
            search: EvolutionarySearch::new(SearchConfig::default()),
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &DaisyConfig {
        &self.config
    }

    /// Read access to the transfer-tuning database.
    pub fn database(&self) -> &TuningDatabase {
        &self.database
    }

    /// Seeds the scheduling database from a set of programs (the paper seeds
    /// from the normalized A variants): every non-BLAS loop nest contributes
    /// a `(embedding, recipe)` pair found by the evolutionary search.
    ///
    /// The per-nest searches are independent, so they run on parallel worker
    /// threads (each search evaluating its own candidates sequentially — the
    /// outer fan-out already saturates the cores); entries are inserted in
    /// deterministic program/nest order afterwards.
    pub fn seed_from_programs(&mut self, programs: &[Program]) {
        let model = CostModel::new(self.config.machine.clone(), self.config.threads);
        let normalized: Vec<Program> = programs.iter().map(|p| self.normalized(p)).collect();
        let mut jobs: Vec<(&Program, usize)> = Vec::new();
        for program in &normalized {
            for (index, node) in program.body.iter().enumerate() {
                let Node::Loop(nest) = node else { continue };
                if self.config.idiom_detection && detect_blas_idiom(program, nest).is_some() {
                    // BLAS nests are handled by idiom detection at scheduling
                    // time; the database entry records that decision.
                    continue;
                }
                jobs.push((program, index));
            }
        }
        let search = self.search.clone().with_parallel(false);
        let entries = crate::search::parallel_map(&jobs, |&(program, index)| {
            let (recipe, _) = search.search(program, index, &model, &[]);
            let nest = program.body[index]
                .as_loop()
                .expect("job indices point at loops");
            let chain: Vec<Var> = perfect_chain(nest).iter().map(|l| l.iter.clone()).collect();
            DatabaseEntry {
                embedding: PerformanceEmbedding::of_nest(program, nest),
                recipe,
                chain,
                source: format!("{}#{}", program.name, index),
            }
        });
        for entry in entries {
            self.database.insert(entry);
        }
    }

    fn normalized(&self, program: &Program) -> Program {
        if self.config.normalize {
            Normalizer::new()
                .run(program)
                .map(|n| n.program)
                .unwrap_or_else(|_| program.clone())
        } else {
            Normalizer::with_config(NormalizerConfig {
                fission: false,
                stride_minimization: false,
            })
            .run(program)
            .map(|n| n.program)
            .unwrap_or_else(|_| program.clone())
        }
    }

    /// Schedules a program: normalization (if enabled), then per top-level
    /// nest idiom detection and transfer-tuned recipe application.
    pub fn schedule(&self, program: &Program) -> ScheduleOutcome {
        let model = CostModel::new(self.config.machine.clone(), self.config.threads);
        let normalized = self.normalized(program);
        let mut decisions = Vec::new();
        let mut current = normalized.clone();

        // Walk top-level nodes by index; recipes can change the number of
        // nodes, so track an explicit cursor.
        let mut index = 0usize;
        while index < current.body.len() {
            let Node::Loop(nest) = current.body[index].clone() else {
                index += 1;
                continue;
            };
            // 1. BLAS idiom detection.
            if self.config.idiom_detection {
                if let Some(call) = detect_blas_idiom(&current, &nest) {
                    decisions.push(format!("nest {index}: replaced with {call}"));
                    current.body[index] = Node::Call(call);
                    index += 1;
                    continue;
                }
            }
            // 2. Transfer tuning: try the recipes of the nearest neighbours
            //    and keep the best one that applies and improves the cost.
            //    Neighbours whose retargeted recipes produce structurally
            //    identical candidates are priced once.
            let mut best: Option<(f64, Recipe, String)> = None;
            let baseline = model.estimate(&current).seconds;
            if self.config.transfer_tuning && !self.database.is_empty() {
                let embedding = PerformanceEmbedding::of_nest(&current, &nest);
                let chain: Vec<Var> = perfect_chain(&nest)
                    .iter()
                    .map(|l| l.iter.clone())
                    .collect();
                let mut tried: HashSet<u64> = HashSet::new();
                for entry in self.database.nearest(&embedding, self.config.neighbors) {
                    let Some(recipe) = TuningDatabase::retarget(entry, &chain) else {
                        continue;
                    };
                    let Some(candidate) = apply_recipe_to_program(&current, index, &recipe) else {
                        continue;
                    };
                    if !tried.insert(candidate.structural_hash()) {
                        continue;
                    }
                    let time = model.estimate(&candidate).seconds;
                    let better = match &best {
                        None => time < baseline,
                        Some((t, _, _)) => time < *t,
                    };
                    if better {
                        best = Some((time, recipe, entry.source.clone()));
                    }
                }
            }
            match best {
                Some((time, recipe, source)) => {
                    decisions.push(format!(
                        "nest {index}: applied recipe from {source} ({recipe}), est. {time:.4}s"
                    ));
                    if let Some(next) = apply_recipe_to_program(&current, index, &recipe) {
                        let added = next.body.len() + 1 - current.body.len();
                        current = next;
                        index += added.max(1);
                    } else {
                        index += 1;
                    }
                }
                None => {
                    decisions.push(format!("nest {index}: left unoptimized (-O3 only)"));
                    index += 1;
                }
            }
        }

        let report = model.estimate(&current);
        ScheduleOutcome {
            program: current,
            report,
            decisions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;

    /// PolyBench-style GEMM, A variant (textbook loop order, fused scaling).
    fn gemm_a(n: i64) -> Program {
        parse_program(&format!(
            "program gemm_a {{ param NI = {n}; param NJ = {n}; param NK = {n};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
               for i in 0..NI {{ for j in 0..NJ {{
                 C[i][j] = C[i][j] * beta;
                 for k in 0..NK {{ C[i][j] += alpha * A[i][k] * B[k][j]; }}
               }} }} }}"
        ))
        .unwrap()
    }

    /// Semantically equivalent B variant: scaling split off, reduction loops
    /// permuted badly.
    fn gemm_b(n: i64) -> Program {
        parse_program(&format!(
            "program gemm_b {{ param NI = {n}; param NJ = {n}; param NK = {n};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
               for j in 0..NJ {{ for i in 0..NI {{
                 C[i][j] = C[i][j] * beta;
               }} }}
               for k in 0..NK {{ for j in 0..NJ {{ for i in 0..NI {{
                 C[i][j] += alpha * A[i][k] * B[k][j];
               }} }} }} }}"
        ))
        .unwrap()
    }

    #[test]
    fn gemm_is_idiom_replaced_after_normalization() {
        let scheduler = DaisyScheduler::new(DaisyConfig::default());
        let outcome = scheduler.schedule(&gemm_a(256));
        // After fission, the k-reduction nest is a clean GEMM and becomes a
        // library call; the scaling nest stays a loop.
        let calls = outcome
            .program
            .body
            .iter()
            .filter(|n| matches!(n, Node::Call(_)))
            .count();
        assert_eq!(calls, 1);
        assert!(outcome.decisions.iter().any(|d| d.contains("dgemm")));
    }

    #[test]
    fn idiom_detection_fails_without_normalization() {
        let config = DaisyConfig {
            normalize: false,
            ..DaisyConfig::default()
        };
        let scheduler = DaisyScheduler::new(config);
        let outcome = scheduler.schedule(&gemm_a(256));
        let calls = outcome
            .program
            .body
            .iter()
            .filter(|n| matches!(n, Node::Call(_)))
            .count();
        assert_eq!(calls, 0, "the fused GEMM must not be recognized");
    }

    #[test]
    fn a_and_b_variants_schedule_to_similar_performance() {
        let mut scheduler = DaisyScheduler::new(DaisyConfig::default());
        let a = gemm_a(512);
        let b = gemm_b(512);
        scheduler.seed_from_programs(std::slice::from_ref(&a));
        let out_a = scheduler.schedule(&a);
        let out_b = scheduler.schedule(&b);
        let ratio = out_b.seconds() / out_a.seconds();
        assert!(
            (0.8..1.25).contains(&ratio),
            "A/B runtime ratio {ratio} should be close to 1 (A={}, B={})",
            out_a.seconds(),
            out_b.seconds()
        );
    }

    #[test]
    fn transfer_tuning_recipes_come_from_the_database() {
        // Disable idiom detection so the GEMM nest must be optimized through
        // the database.
        let config = DaisyConfig {
            idiom_detection: false,
            ..DaisyConfig::default()
        };
        let mut scheduler = DaisyScheduler::new(config.clone());
        let a = gemm_a(512);
        scheduler.seed_from_programs(std::slice::from_ref(&a));
        assert!(!scheduler.database().is_empty());
        let tuned = scheduler.schedule(&gemm_b(512));
        // Without any database the same configuration leaves the nests
        // unoptimized and is slower.
        let untuned = DaisyScheduler::new(config).schedule(&gemm_b(512));
        assert!(tuned.seconds() < untuned.seconds());
        assert!(tuned
            .decisions
            .iter()
            .any(|d| d.contains("applied recipe from")));
    }

    #[test]
    fn scheduled_program_is_well_formed() {
        let mut scheduler = DaisyScheduler::new(DaisyConfig::default());
        let a = gemm_a(128);
        scheduler.seed_from_programs(std::slice::from_ref(&a));
        let outcome = scheduler.schedule(&a);
        assert!(outcome.program.validate().is_ok());
        assert!(outcome.report.flops > 0.0);
        assert!(!outcome.decisions.is_empty());
    }

    #[test]
    fn config_accessors() {
        let scheduler = DaisyScheduler::new(DaisyConfig::default());
        assert!(scheduler.config().normalize);
        assert!(scheduler.database().is_empty());
    }
}
