//! Performance embeddings of loop nests.
//!
//! The transfer-tuning database is keyed by an embedding of the loop nest;
//! the paper uses the performance embeddings of Trümper et al. (ICS'23) and
//! retrieves the most similar nests by Euclidean distance. This module
//! computes a fixed-length feature vector from the normalized loop nest's
//! structure and memory access pattern — the information the original
//! embeddings capture that is available statically.

use loop_ir::expr::Var;
use loop_ir::nest::Loop;
use loop_ir::program::Program;

/// Number of features in an embedding.
pub const EMBEDDING_DIM: usize = 12;

/// A fixed-length feature vector describing a loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceEmbedding {
    features: [f64; EMBEDDING_DIM],
}

impl PerformanceEmbedding {
    /// Computes the embedding of a loop nest within its program.
    ///
    /// Features (all log- or ratio-scaled so that Euclidean distance is
    /// meaningful across problem sizes):
    ///
    /// 0. loop depth
    /// 1. log10 of the total iteration count
    /// 2. number of computations
    /// 3. flops per innermost iteration
    /// 4. number of distinct arrays accessed
    /// 5. fraction of accesses with unit stride along the innermost loop
    /// 6. fraction of accesses invariant along the innermost loop
    /// 7. fraction of accesses with large stride along the innermost loop
    /// 8. whether the nest is a reduction (any computation reduces)
    /// 9. whether the nest is perfectly nested
    /// 10. log10 of the data footprint in bytes
    /// 11. arithmetic intensity (flops per byte of footprint)
    pub fn of_nest(program: &Program, nest: &Loop) -> Self {
        let mut features = [0.0; EMBEDDING_DIM];
        let iterators = nest.nested_iterators();
        let depth = iterators.len();
        features[0] = depth as f64;

        let mut total_iters = 1.0f64;
        for l in collect_loops(nest) {
            let trip = l.trip_count(&program.params).unwrap_or(1).max(1);
            total_iters *= trip as f64;
        }
        // Size features are down-weighted: similarity should be dominated by
        // the structure and access pattern, not the problem size.
        features[1] = 0.5 * total_iters.log10();

        let comps = nest.computations();
        features[2] = comps.len() as f64;
        let flops: u64 = comps.iter().map(|c| c.flops()).sum();
        features[3] = flops as f64;

        let mut arrays = std::collections::BTreeSet::new();
        let innermost = innermost_iterator(nest);
        let mut unit = 0.0;
        let mut invariant = 0.0;
        let mut strided = 0.0;
        let mut accesses = 0.0;
        let mut footprint = 0.0;
        for comp in &comps {
            for access in comp.accesses() {
                accesses += 1.0;
                arrays.insert(access.array_ref.array.clone());
                let stride = program
                    .array(&access.array_ref.array)
                    .ok()
                    .and_then(|a| access.array_ref.linear_offset(a, &program.params))
                    .map(|off| {
                        innermost
                            .as_ref()
                            .map(|it| off.coefficient(it).unsigned_abs())
                            .unwrap_or(0)
                    });
                match stride {
                    Some(0) => invariant += 1.0,
                    Some(1) => unit += 1.0,
                    Some(_) | None => strided += 1.0,
                }
            }
        }
        for name in &arrays {
            if let Ok(array) = program.array(name) {
                footprint += array.size_bytes(&program.params).unwrap_or(0) as f64;
            }
        }
        features[4] = arrays.len() as f64;
        if accesses > 0.0 {
            features[5] = unit / accesses;
            features[6] = invariant / accesses;
            features[7] = strided / accesses;
        }
        features[8] = f64::from(comps.iter().any(|c| c.reduction.is_some()));
        features[9] = f64::from(nest.is_perfect_nest());
        features[10] = 0.5 * footprint.max(1.0).log10();
        features[11] = if footprint > 0.0 {
            let intensity = flops as f64 * total_iters / comps.len().max(1) as f64 / footprint;
            (1.0 + intensity).log10()
        } else {
            0.0
        };
        PerformanceEmbedding { features }
    }

    /// Rebuilds an embedding from a slice; `None` unless the slice has
    /// exactly [`EMBEDDING_DIM`] features (a store produced by a build with
    /// a different feature set must not be silently reinterpreted).
    pub fn from_slice(features: &[f64]) -> Option<Self> {
        let features: [f64; EMBEDDING_DIM] = features.try_into().ok()?;
        Some(PerformanceEmbedding { features })
    }

    /// The raw feature vector.
    pub fn features(&self) -> &[f64; EMBEDDING_DIM] {
        &self.features
    }

    /// Euclidean distance between two embeddings (the similarity measure of
    /// the transfer-tuning database).
    pub fn distance(&self, other: &PerformanceEmbedding) -> f64 {
        self.features
            .iter()
            .zip(&other.features)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

fn collect_loops(nest: &Loop) -> Vec<&Loop> {
    let mut out = vec![nest];
    let mut idx = 0;
    while idx < out.len() {
        let current = out[idx];
        for node in &current.body {
            if let loop_ir::nest::Node::Loop(inner) = node {
                out.push(inner);
            }
        }
        idx += 1;
    }
    out
}

fn innermost_iterator(nest: &Loop) -> Option<Var> {
    nest.nested_iterators().last().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;

    fn gemm(n: i64) -> Program {
        parse_program(&format!(
            "program gemm {{ param NI = {n}; param NJ = {n}; param NK = {n};
               array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
               for i in 0..NI {{ for k in 0..NK {{ for j in 0..NJ {{
                 C[i][j] += A[i][k] * B[k][j];
               }} }} }} }}"
        ))
        .unwrap()
    }

    fn copy2d(n: i64) -> Program {
        parse_program(&format!(
            "program copy {{ param N = {n}; array A[N][N]; array B[N][N];
               for i in 0..N {{ for j in 0..N {{ B[i][j] = A[i][j]; }} }} }}"
        ))
        .unwrap()
    }

    #[test]
    fn embedding_has_expected_structure() {
        let p = gemm(64);
        let e = PerformanceEmbedding::of_nest(&p, p.loop_nests()[0]);
        let f = e.features();
        assert_eq!(f[0], 3.0); // depth
        assert!((f[1] - 0.5 * (64.0f64.powi(3)).log10()).abs() < 1e-9);
        assert_eq!(f[2], 1.0); // one computation
        assert_eq!(f[4], 3.0); // three arrays
        assert_eq!(f[8], 1.0); // reduction
        assert_eq!(f[9], 1.0); // perfect nest
                               // accesses: A (unit along j? A[i][k] is invariant along j), B unit,
                               // C unit (x2).
        assert!(f[5] > 0.5);
        assert!(f[6] > 0.0);
    }

    #[test]
    fn same_kernel_different_size_is_close() {
        let small = gemm(64);
        let large = gemm(256);
        let copy = copy2d(128);
        let e_small = PerformanceEmbedding::of_nest(&small, small.loop_nests()[0]);
        let e_large = PerformanceEmbedding::of_nest(&large, large.loop_nests()[0]);
        let e_copy = PerformanceEmbedding::of_nest(&copy, copy.loop_nests()[0]);
        assert!(e_small.distance(&e_large) < e_small.distance(&e_copy));
    }

    #[test]
    fn distance_is_a_metric_on_examples() {
        let p = gemm(64);
        let q = copy2d(64);
        let a = PerformanceEmbedding::of_nest(&p, p.loop_nests()[0]);
        let b = PerformanceEmbedding::of_nest(&q, q.loop_nests()[0]);
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) > 0.0);
    }

    #[test]
    fn stride_fractions_distinguish_transposed_access() {
        let good = copy2d(64);
        let bad = parse_program(
            "program copy_t { param N = 64; array A[N][N]; array B[N][N];
               for i in 0..N { for j in 0..N { B[j][i] = A[j][i]; } } }",
        )
        .unwrap();
        let e_good = PerformanceEmbedding::of_nest(&good, good.loop_nests()[0]);
        let e_bad = PerformanceEmbedding::of_nest(&bad, bad.loop_nests()[0]);
        assert!(e_good.features()[5] > e_bad.features()[5]);
        assert!(e_bad.features()[7] > 0.9);
    }
}
