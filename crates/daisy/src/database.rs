//! The transfer-tuning database: embeddings mapped to optimization recipes.
//!
//! Entries are keyed by the run-stable structural hash of their source nest
//! ([`loop_ir::structural_hash_node`]): insertion dedupes on that key keeping
//! the better-cost recipe, [`TuningDatabase::lookup`] answers exact-match
//! queries in O(1) before the k-NN fallback runs, and the whole database
//! round-trips through the `tunestore` snapshot format preserving entry
//! order (so nearest-neighbour tie-breaking is identical warm and cold).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use loop_ir::expr::Var;
use loop_ir::nest::Node;
use loop_ir::program::Program;
use loop_ir::{structural_hash_node, StructuralHasher};
use transforms::{Recipe, Transform};
use tunestore::{Snapshot, StoreError, StoredEntry};

use crate::embedding::{PerformanceEmbedding, EMBEDDING_DIM};

/// The database key of a nest: its structural hash combined with the
/// program's integer parameter bindings.
///
/// The structural hash alone treats `for i in 0..N` identically at every
/// value of `N` (bounds are symbolic), but a recipe tuned for one problem
/// size is not an *exact* match for another — tile sizes and
/// parallelization pay-offs shift with the iteration space. Folding the
/// parameter values in keeps exact-match lookups size-faithful while the
/// k-NN fallback still generalizes across sizes. Parameters come from an
/// ordered map and the hasher is the run-stable FNV used everywhere else,
/// so keys are stable across runs, platforms and Rust versions — safe to
/// persist.
pub fn nest_key(program: &Program, node: &Node) -> u64 {
    let mut hasher = StructuralHasher::default();
    structural_hash_node(node).hash(&mut hasher);
    program.params.len().hash(&mut hasher);
    for (name, value) in &program.params {
        name.hash(&mut hasher);
        value.hash(&mut hasher);
    }
    hasher.finish()
}

/// One database entry: the embedding of a (normalized) loop nest, the
/// transformation recipe found for it, and the perfect-chain iterators the
/// recipe refers to (so it can be re-targeted to a structurally equal nest
/// with different iterator names).
#[derive(Debug, Clone, PartialEq)]
pub struct DatabaseEntry {
    /// Structural hash of the source loop nest, the database key.
    pub key: u64,
    /// Nest-scoped cost-model seconds of the recipe on the seeding nest
    /// (whole-program cost minus the other nodes' baseline); ranks
    /// duplicate keys (lower wins) comparably across seeding programs.
    pub cost: f64,
    /// Embedding of the source loop nest.
    pub embedding: PerformanceEmbedding,
    /// The optimization recipe.
    pub recipe: Recipe,
    /// Perfect-chain iterators of the source nest, outermost first.
    pub chain: Vec<Var>,
    /// Name of the benchmark / nest the entry was derived from.
    pub source: String,
}

impl DatabaseEntry {
    /// Converts the entry to its persisted form.
    pub fn to_stored(&self) -> StoredEntry {
        StoredEntry {
            key: self.key,
            cost: self.cost,
            embedding: self.embedding.features().to_vec(),
            recipe: self.recipe.clone(),
            chain: self.chain.clone(),
            source: self.source.clone(),
        }
    }

    /// Rebuilds an entry from its persisted form. Fails when the stored
    /// embedding does not have this build's [`EMBEDDING_DIM`] features.
    pub fn from_stored(stored: &StoredEntry) -> Result<Self, StoreError> {
        let embedding = PerformanceEmbedding::from_slice(&stored.embedding).ok_or_else(|| {
            StoreError::Corrupt(format!(
                "entry {:016x} has {} embedding features, this build uses {}",
                stored.key,
                stored.embedding.len(),
                EMBEDDING_DIM
            ))
        })?;
        Ok(DatabaseEntry {
            key: stored.key,
            cost: stored.cost,
            embedding,
            recipe: stored.recipe.clone(),
            chain: stored.chain.clone(),
            source: stored.source.clone(),
        })
    }
}

/// The database queried by the daisy scheduler: pairs of performance
/// embeddings and transformation sequences (§4, "Seeding a Scheduling
/// Database").
#[derive(Debug, Clone, Default)]
pub struct TuningDatabase {
    /// Entries in insertion order; replacement happens in place so order is
    /// independent of how many duplicates were folded in.
    entries: Vec<DatabaseEntry>,
    /// Structural-hash key -> position in `entries`.
    index: HashMap<u64, usize>,
}

impl TuningDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        TuningDatabase::default()
    }

    /// Adds an entry, deduping by structural-hash key: a new key is
    /// appended, an existing key is replaced in place only when the new
    /// entry's cost is strictly lower. Repeated seeding therefore converges
    /// instead of accumulating duplicates.
    pub fn insert(&mut self, entry: DatabaseEntry) {
        match self.index.get(&entry.key) {
            Some(&pos) => {
                if entry.cost < self.entries[pos].cost {
                    self.entries[pos] = entry;
                }
            }
            None => {
                self.index.insert(entry.key, self.entries.len());
                self.entries.push(entry);
            }
        }
    }

    /// O(1) exact-match lookup by the structural hash of a nest. The fast
    /// path of scheduling: a hit means the database already holds a recipe
    /// tuned for a structurally identical nest, no similarity search needed.
    pub fn lookup(&self, key: u64) -> Option<&DatabaseEntry> {
        self.index.get(&key).map(|&pos| &self.entries[pos])
    }

    /// Converts the database to a persistable snapshot (entry order is
    /// preserved).
    pub fn to_snapshot(&self) -> Snapshot {
        let mut snapshot = Snapshot::new();
        snapshot.entries = self.entries.iter().map(DatabaseEntry::to_stored).collect();
        snapshot
    }

    /// Rebuilds a database from a snapshot, re-applying the dedupe rule
    /// (snapshots written by [`TuningDatabase::to_snapshot`] are already
    /// deduped, so this reproduces them exactly, entry for entry).
    pub fn from_snapshot(snapshot: &Snapshot) -> Result<Self, StoreError> {
        let mut db = TuningDatabase::new();
        for stored in &snapshot.entries {
            db.insert(DatabaseEntry::from_stored(stored)?);
        }
        Ok(db)
    }

    /// Rebuilds a database from recovered entries, *skipping* the ones
    /// this build cannot represent (wrong embedding dimension — e.g. a
    /// store written by an older build) instead of failing the whole load.
    /// Returns the database and how many entries were skipped. The
    /// degraded-recovery counterpart of [`TuningDatabase::from_snapshot`]:
    /// losing an entry costs a warm-start seed, never correctness.
    pub fn from_entries_lossy(entries: &[StoredEntry]) -> (Self, usize) {
        let mut db = TuningDatabase::new();
        let mut skipped = 0usize;
        for stored in entries {
            match DatabaseEntry::from_stored(stored) {
                Ok(entry) => db.insert(entry),
                Err(_) => skipped += 1,
            }
        }
        (db, skipped)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the database has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[DatabaseEntry] {
        &self.entries
    }

    /// The `k` entries whose embeddings are closest (Euclidean distance) to
    /// the query, closest first.
    pub fn nearest(&self, query: &PerformanceEmbedding, k: usize) -> Vec<&DatabaseEntry> {
        let mut scored: Vec<(f64, &DatabaseEntry)> = self
            .entries
            .iter()
            .map(|e| (e.embedding.distance(query), e))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().take(k).map(|(_, e)| e).collect()
    }

    /// Re-targets an entry's recipe to a nest whose perfect chain is
    /// `target_chain`, by positional renaming of loop iterators (including
    /// the `<iter>_t` tile-loop names a tiling step introduces).
    ///
    /// Returns `None` when the chains have different lengths — the situation
    /// the paper describes as "if a B loop nest is not reduced to an A loop
    /// nest, the transformation sequence cannot be applied".
    pub fn retarget(entry: &DatabaseEntry, target_chain: &[Var]) -> Option<Recipe> {
        if entry.chain.len() != target_chain.len() {
            return None;
        }
        let rename = |v: &Var| -> Var {
            if let Some(pos) = entry.chain.iter().position(|c| c == v) {
                return target_chain[pos].clone();
            }
            // Tile loops introduced by a Tile step are named "<iter>_t".
            if let Some(stripped) = v.as_str().strip_suffix("_t") {
                if let Some(pos) = entry.chain.iter().position(|c| c.as_str() == stripped) {
                    return Var::new(format!("{}_t", target_chain[pos]));
                }
            }
            v.clone()
        };
        let steps = entry
            .recipe
            .steps
            .iter()
            .map(|step| match step {
                Transform::Interchange { order } => Transform::Interchange {
                    order: order.iter().map(&rename).collect(),
                },
                Transform::Tile { tiles } => Transform::Tile {
                    tiles: tiles.iter().map(|(v, s)| (rename(v), *s)).collect(),
                },
                Transform::Parallelize { iter } => Transform::Parallelize { iter: rename(iter) },
                Transform::Vectorize { iter } => Transform::Vectorize { iter: rename(iter) },
                Transform::Unroll { iter, factor } => Transform::Unroll {
                    iter: rename(iter),
                    factor: *factor,
                },
                Transform::Fission => Transform::Fission,
            })
            .collect();
        Some(Recipe {
            steps,
            blas: entry.recipe.blas,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;

    fn gemm(n: i64, order: &str) -> loop_ir::Program {
        let l: Vec<char> = order.chars().collect();
        parse_program(&format!(
            "program gemm {{ param N = {n};
               array A[N][N]; array B[N][N]; array C[N][N];
               for {} in 0..N {{ for {} in 0..N {{ for {} in 0..N {{
                 C[i][j] += A[i][k] * B[k][j];
               }} }} }} }}",
            l[0], l[1], l[2]
        ))
        .unwrap()
    }

    fn entry(source: &str, n: i64) -> DatabaseEntry {
        let p = gemm(n, "ikj");
        let nest = p.loop_nests()[0];
        DatabaseEntry {
            key: nest_key(&p, &p.body[0]),
            cost: n as f64 * 1e-6,
            embedding: PerformanceEmbedding::of_nest(&p, nest),
            recipe: Recipe::new(vec![
                Transform::Tile {
                    tiles: vec![
                        (Var::new("i"), 32),
                        (Var::new("k"), 32),
                        (Var::new("j"), 32),
                    ],
                },
                Transform::Parallelize {
                    iter: Var::new("i_t"),
                },
                Transform::Vectorize {
                    iter: Var::new("j"),
                },
            ]),
            chain: vec![Var::new("i"), Var::new("k"), Var::new("j")],
            source: source.to_string(),
        }
    }

    #[test]
    fn nearest_returns_closest_first() {
        let mut db = TuningDatabase::new();
        db.insert(entry("gemm-small", 32));
        db.insert(entry("gemm-large", 1024));
        assert_eq!(db.len(), 2);
        let q = gemm(900, "ikj");
        let q_emb = PerformanceEmbedding::of_nest(&q, q.loop_nests()[0]);
        let nearest = db.nearest(&q_emb, 2);
        assert_eq!(nearest[0].source, "gemm-large");
        assert_eq!(nearest.len(), 2);
        assert_eq!(db.nearest(&q_emb, 1).len(), 1);
    }

    #[test]
    fn empty_database_returns_nothing() {
        let db = TuningDatabase::new();
        assert!(db.is_empty());
        let q = gemm(64, "ikj");
        let q_emb = PerformanceEmbedding::of_nest(&q, q.loop_nests()[0]);
        assert!(db.nearest(&q_emb, 3).is_empty());
    }

    #[test]
    fn insert_dedupes_by_key_keeping_better_cost() {
        let mut db = TuningDatabase::new();
        let base = entry("first", 64);
        db.insert(base.clone());
        // Same nest, same size -> same key; repeated seeding must not grow
        // the database.
        db.insert(entry("duplicate", 64));
        assert_eq!(db.len(), 1);
        assert_eq!(db.entries()[0].source, "first");
        // A better-cost entry for the same key replaces in place.
        let mut better = entry("better", 64);
        better.cost = base.cost / 2.0;
        db.insert(better);
        assert_eq!(db.len(), 1);
        assert_eq!(db.entries()[0].source, "better");
        // A worse one is ignored.
        let mut worse = entry("worse", 64);
        worse.cost = base.cost * 2.0;
        db.insert(worse);
        assert_eq!(db.entries()[0].source, "better");
    }

    #[test]
    fn nest_key_distinguishes_problem_sizes() {
        let small = gemm(64, "ikj");
        let large = gemm(1024, "ikj");
        assert_ne!(
            nest_key(&small, &small.body[0]),
            nest_key(&large, &large.body[0]),
            "same structure at different sizes must not collide"
        );
        // Same structure and size under a different program name: equal keys
        // (the name is a label, not structure).
        let mut renamed = gemm(64, "ikj");
        renamed.name = "other".to_string();
        assert_eq!(
            nest_key(&small, &small.body[0]),
            nest_key(&renamed, &renamed.body[0])
        );
    }

    #[test]
    fn lookup_finds_exact_matches_in_o1() {
        let mut db = TuningDatabase::new();
        let e = entry("gemm", 64);
        let key = e.key;
        db.insert(e);
        db.insert(entry("gemm-large", 1024));
        assert_eq!(db.lookup(key).unwrap().source, "gemm");
        assert!(db.lookup(key ^ 1).is_none());
    }

    #[test]
    fn database_round_trips_through_a_snapshot() {
        let mut db = TuningDatabase::new();
        db.insert(entry("gemm-small", 32));
        db.insert(entry("gemm-large", 1024));
        let snapshot = db.to_snapshot();
        let restored = TuningDatabase::from_snapshot(&snapshot).unwrap();
        assert_eq!(restored.entries(), db.entries());
        // Byte-level: decode(encode(snapshot)) reproduces the same database.
        let decoded = tunestore::Snapshot::decode(&snapshot.encode()).unwrap();
        let restored = TuningDatabase::from_snapshot(&decoded).unwrap();
        assert_eq!(restored.entries(), db.entries());
    }

    #[test]
    fn from_stored_rejects_wrong_embedding_dimension() {
        let mut stored = entry("gemm", 64).to_stored();
        stored.embedding.pop();
        assert!(DatabaseEntry::from_stored(&stored).is_err());
    }

    #[test]
    fn retarget_renames_iterators_positionally() {
        let e = entry("gemm", 64);
        let target = vec![Var::new("a"), Var::new("b"), Var::new("c")];
        let recipe = TuningDatabase::retarget(&e, &target).unwrap();
        let text = recipe.to_string();
        assert!(text.contains("tile(a:32, b:32, c:32)"));
        assert!(text.contains("parallelize(a_t)"));
        assert!(text.contains("vectorize(c)"));
    }

    #[test]
    fn retarget_rejects_mismatched_depth() {
        let e = entry("gemm", 64);
        assert!(TuningDatabase::retarget(&e, &[Var::new("a"), Var::new("b")]).is_none());
    }

    #[test]
    fn retargeted_recipe_applies_to_renamed_nest() {
        let e = entry("gemm", 64);
        // The same canonical GEMM but with loops named x, y, z.
        let p = parse_program(
            "program gemm2 { param N = 64;
               array A[N][N]; array B[N][N]; array C[N][N];
               for x in 0..N { for y in 0..N { for z in 0..N {
                 C[x][z] += A[x][y] * B[y][z];
               } } } }",
        )
        .unwrap();
        let nest = p.loop_nests()[0];
        let chain: Vec<Var> = nest.nested_iterators();
        let recipe = TuningDatabase::retarget(&e, &chain).unwrap();
        let out = recipe.apply_to_nest(nest).unwrap();
        assert_eq!(out.len(), 1);
        let tiled = out[0].as_loop().unwrap();
        assert!(tiled.schedule.parallel);
        assert_eq!(tiled.iter, Var::new("x_t"));
    }
}
