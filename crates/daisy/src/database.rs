//! The transfer-tuning database: embeddings mapped to optimization recipes.

use loop_ir::expr::Var;
use transforms::{Recipe, Transform};

use crate::embedding::PerformanceEmbedding;

/// One database entry: the embedding of a (normalized) loop nest, the
/// transformation recipe found for it, and the perfect-chain iterators the
/// recipe refers to (so it can be re-targeted to a structurally equal nest
/// with different iterator names).
#[derive(Debug, Clone, PartialEq)]
pub struct DatabaseEntry {
    /// Embedding of the source loop nest.
    pub embedding: PerformanceEmbedding,
    /// The optimization recipe.
    pub recipe: Recipe,
    /// Perfect-chain iterators of the source nest, outermost first.
    pub chain: Vec<Var>,
    /// Name of the benchmark / nest the entry was derived from.
    pub source: String,
}

/// The database queried by the daisy scheduler: pairs of performance
/// embeddings and transformation sequences (§4, "Seeding a Scheduling
/// Database").
#[derive(Debug, Clone, Default)]
pub struct TuningDatabase {
    entries: Vec<DatabaseEntry>,
}

impl TuningDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        TuningDatabase::default()
    }

    /// Adds an entry.
    pub fn insert(&mut self, entry: DatabaseEntry) {
        self.entries.push(entry);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the database has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries.
    pub fn entries(&self) -> &[DatabaseEntry] {
        &self.entries
    }

    /// The `k` entries whose embeddings are closest (Euclidean distance) to
    /// the query, closest first.
    pub fn nearest(&self, query: &PerformanceEmbedding, k: usize) -> Vec<&DatabaseEntry> {
        let mut scored: Vec<(f64, &DatabaseEntry)> = self
            .entries
            .iter()
            .map(|e| (e.embedding.distance(query), e))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().take(k).map(|(_, e)| e).collect()
    }

    /// Re-targets an entry's recipe to a nest whose perfect chain is
    /// `target_chain`, by positional renaming of loop iterators (including
    /// the `<iter>_t` tile-loop names a tiling step introduces).
    ///
    /// Returns `None` when the chains have different lengths — the situation
    /// the paper describes as "if a B loop nest is not reduced to an A loop
    /// nest, the transformation sequence cannot be applied".
    pub fn retarget(entry: &DatabaseEntry, target_chain: &[Var]) -> Option<Recipe> {
        if entry.chain.len() != target_chain.len() {
            return None;
        }
        let rename = |v: &Var| -> Var {
            if let Some(pos) = entry.chain.iter().position(|c| c == v) {
                return target_chain[pos].clone();
            }
            // Tile loops introduced by a Tile step are named "<iter>_t".
            if let Some(stripped) = v.as_str().strip_suffix("_t") {
                if let Some(pos) = entry.chain.iter().position(|c| c.as_str() == stripped) {
                    return Var::new(format!("{}_t", target_chain[pos]));
                }
            }
            v.clone()
        };
        let steps = entry
            .recipe
            .steps
            .iter()
            .map(|step| match step {
                Transform::Interchange { order } => Transform::Interchange {
                    order: order.iter().map(&rename).collect(),
                },
                Transform::Tile { tiles } => Transform::Tile {
                    tiles: tiles.iter().map(|(v, s)| (rename(v), *s)).collect(),
                },
                Transform::Parallelize { iter } => Transform::Parallelize { iter: rename(iter) },
                Transform::Vectorize { iter } => Transform::Vectorize { iter: rename(iter) },
                Transform::Unroll { iter, factor } => Transform::Unroll {
                    iter: rename(iter),
                    factor: *factor,
                },
                Transform::Fission => Transform::Fission,
            })
            .collect();
        Some(Recipe {
            steps,
            blas: entry.recipe.blas,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;

    fn gemm(n: i64, order: &str) -> loop_ir::Program {
        let l: Vec<char> = order.chars().collect();
        parse_program(&format!(
            "program gemm {{ param N = {n};
               array A[N][N]; array B[N][N]; array C[N][N];
               for {} in 0..N {{ for {} in 0..N {{ for {} in 0..N {{
                 C[i][j] += A[i][k] * B[k][j];
               }} }} }} }}",
            l[0], l[1], l[2]
        ))
        .unwrap()
    }

    fn entry(source: &str, n: i64) -> DatabaseEntry {
        let p = gemm(n, "ikj");
        let nest = p.loop_nests()[0];
        DatabaseEntry {
            embedding: PerformanceEmbedding::of_nest(&p, nest),
            recipe: Recipe::new(vec![
                Transform::Tile {
                    tiles: vec![
                        (Var::new("i"), 32),
                        (Var::new("k"), 32),
                        (Var::new("j"), 32),
                    ],
                },
                Transform::Parallelize {
                    iter: Var::new("i_t"),
                },
                Transform::Vectorize {
                    iter: Var::new("j"),
                },
            ]),
            chain: vec![Var::new("i"), Var::new("k"), Var::new("j")],
            source: source.to_string(),
        }
    }

    #[test]
    fn nearest_returns_closest_first() {
        let mut db = TuningDatabase::new();
        db.insert(entry("gemm-small", 32));
        db.insert(entry("gemm-large", 1024));
        assert_eq!(db.len(), 2);
        let q = gemm(900, "ikj");
        let q_emb = PerformanceEmbedding::of_nest(&q, q.loop_nests()[0]);
        let nearest = db.nearest(&q_emb, 2);
        assert_eq!(nearest[0].source, "gemm-large");
        assert_eq!(nearest.len(), 2);
        assert_eq!(db.nearest(&q_emb, 1).len(), 1);
    }

    #[test]
    fn empty_database_returns_nothing() {
        let db = TuningDatabase::new();
        assert!(db.is_empty());
        let q = gemm(64, "ikj");
        let q_emb = PerformanceEmbedding::of_nest(&q, q.loop_nests()[0]);
        assert!(db.nearest(&q_emb, 3).is_empty());
    }

    #[test]
    fn retarget_renames_iterators_positionally() {
        let e = entry("gemm", 64);
        let target = vec![Var::new("a"), Var::new("b"), Var::new("c")];
        let recipe = TuningDatabase::retarget(&e, &target).unwrap();
        let text = recipe.to_string();
        assert!(text.contains("tile(a:32, b:32, c:32)"));
        assert!(text.contains("parallelize(a_t)"));
        assert!(text.contains("vectorize(c)"));
    }

    #[test]
    fn retarget_rejects_mismatched_depth() {
        let e = entry("gemm", 64);
        assert!(TuningDatabase::retarget(&e, &[Var::new("a"), Var::new("b")]).is_none());
    }

    #[test]
    fn retargeted_recipe_applies_to_renamed_nest() {
        let e = entry("gemm", 64);
        // The same canonical GEMM but with loops named x, y, z.
        let p = parse_program(
            "program gemm2 { param N = 64;
               array A[N][N]; array B[N][N]; array C[N][N];
               for x in 0..N { for y in 0..N { for z in 0..N {
                 C[x][z] += A[x][y] * B[y][z];
               } } } }",
        )
        .unwrap();
        let nest = p.loop_nests()[0];
        let chain: Vec<Var> = nest.nested_iterators();
        let recipe = TuningDatabase::retarget(&e, &chain).unwrap();
        let out = recipe.apply_to_nest(nest).unwrap();
        assert_eq!(out.len(), 1);
        let tiled = out[0].as_loop().unwrap();
        assert!(tiled.schedule.parallel);
        assert_eq!(tiled.iter, Var::new("x_t"));
    }
}
