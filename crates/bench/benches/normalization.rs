//! Criterion micro-benchmark: throughput of the normalization pipeline
//! (maximal fission + stride minimization) on representative kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use normalize::Normalizer;
use polybench::cloudsc::{full_model, CloudscSizes, CloudscVariant};
use polybench::{benchmark, Dataset};

fn bench_normalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("normalization");
    group.sample_size(10);
    let gemm = (benchmark("gemm").unwrap().a)(Dataset::Medium);
    let fdtd = (benchmark("fdtd-2d").unwrap().b)(Dataset::Medium);
    let cloudsc = full_model(CloudscVariant::Dace, CloudscSizes::mini());
    let normalizer = Normalizer::new();
    group.bench_function("gemm_a_medium", |b| {
        b.iter(|| normalizer.run(&gemm).unwrap())
    });
    group.bench_function("fdtd2d_b_medium", |b| {
        b.iter(|| normalizer.run(&fdtd).unwrap())
    });
    group.bench_function("cloudsc_dace_mini", |b| {
        b.iter(|| normalizer.run(&cloudsc).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_normalization);
criterion_main!(benches);
