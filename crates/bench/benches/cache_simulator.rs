//! Criterion micro-benchmark: trace-driven cache simulation (Table 1
//! machinery).
//!
//! Benchmarks both the streaming simulator (flat tag/stamp arrays, compiled
//! access streams, closed-form stride runs) and the pre-refactor reference
//! (per-set `Vec` LRU fed by the symbolic walker) on the same CLOUDSC
//! erosion workloads, so the speedup is visible in one run. The two must
//! produce identical counters — asserted before anything is measured.

use criterion::{criterion_group, criterion_main, Criterion};
use machine::{simulate_cache, simulate_cache_reference, MachineConfig};
use polybench::cloudsc::{erosion_original, erosion_single_level, CloudscSizes};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_simulator");
    group.sample_size(10);
    let machine = MachineConfig::xeon_e5_2680v3();
    let sizes = CloudscSizes::paper();
    let original = erosion_single_level(sizes, false);
    let optimized = erosion_single_level(sizes, true);
    let full = erosion_original(sizes);

    // Sanity: streaming and reference counters are identical on the Table 1
    // workload before we measure anything.
    for program in [&original, &optimized, &full] {
        let fast = simulate_cache(program, &machine).unwrap();
        let slow = simulate_cache_reference(program, &machine).unwrap();
        assert_eq!(fast.accesses(), slow.accesses(), "{}", program.name);
        assert_eq!(fast.l1(), slow.l1(), "{}", program.name);
        assert_eq!(fast.l2(), slow.l2(), "{}", program.name);
    }

    group.bench_function("erosion_original_single_level", |b| {
        b.iter(|| simulate_cache(&original, &machine).unwrap())
    });
    group.bench_function("erosion_optimized_single_level", |b| {
        b.iter(|| simulate_cache(&optimized, &machine).unwrap())
    });
    group.bench_function("erosion_full_streaming", |b| {
        b.iter(|| simulate_cache(&full, &machine).unwrap())
    });
    group.bench_function("erosion_full_reference", |b| {
        b.iter(|| simulate_cache_reference(&full, &machine).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
