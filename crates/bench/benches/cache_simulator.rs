//! Criterion micro-benchmark: trace-driven cache simulation (Table 1
//! machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use machine::{simulate_cache, MachineConfig};
use polybench::cloudsc::{erosion_single_level, CloudscSizes};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_simulator");
    group.sample_size(10);
    let machine = MachineConfig::xeon_e5_2680v3();
    let sizes = CloudscSizes::paper();
    let original = erosion_single_level(sizes, false);
    let optimized = erosion_single_level(sizes, true);
    group.bench_function("erosion_original_single_level", |b| {
        b.iter(|| simulate_cache(&original, &machine).unwrap())
    });
    group.bench_function("erosion_optimized_single_level", |b| {
        b.iter(|| simulate_cache(&optimized, &machine).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
