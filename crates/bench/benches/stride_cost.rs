//! Criterion micro-benchmark / ablation: the two stride cost functions of the
//! normalization pass (sum of strides vs out-of-order access count) evaluated
//! over all permutations of a GEMM nest.

use criterion::{criterion_group, criterion_main, Criterion};
use loop_ir::expr::Var;
use normalize::{out_of_order_cost, sum_of_strides};
use polybench::{benchmark, Dataset};

fn bench_stride(c: &mut Criterion) {
    let mut group = c.benchmark_group("stride_cost");
    group.sample_size(20);
    let gemm = (benchmark("gemm").unwrap().a)(Dataset::Large);
    let nest = gemm.loop_nests()[0].clone();
    let orders: Vec<Vec<Var>> = [
        ["i", "j", "k"],
        ["i", "k", "j"],
        ["j", "i", "k"],
        ["j", "k", "i"],
        ["k", "i", "j"],
        ["k", "j", "i"],
    ]
    .iter()
    .map(|o| o.iter().map(|s| Var::new(*s)).collect())
    .collect();
    group.bench_function("sum_of_strides_all_orders", |b| {
        b.iter(|| {
            orders
                .iter()
                .map(|o| sum_of_strides(&gemm, &nest, o))
                .fold(f64::INFINITY, f64::min)
        })
    });
    group.bench_function("out_of_order_cost_all_orders", |b| {
        b.iter(|| {
            orders
                .iter()
                .map(|o| out_of_order_cost(&nest, o))
                .fold(f64::INFINITY, f64::min)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stride);
criterion_main!(benches);
