//! Criterion micro-benchmark: end-to-end cost of producing one figure row
//! (schedule + cost-model evaluation), to bound the total harness runtime.

use baselines::{clang_schedule, polly_schedule};
use criterion::{criterion_group, criterion_main, Criterion};
use machine::{CostModel, MachineConfig};
use polybench::{benchmark, Dataset};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_rows");
    group.sample_size(10);
    let model = CostModel::new(MachineConfig::xeon_e5_2680v3(), 12);
    let gemm = (benchmark("gemm").unwrap().a)(Dataset::Large);
    let heat = (benchmark("heat-3d").unwrap().b)(Dataset::Large);
    group.bench_function("fig6_row_gemm_polly", |b| {
        b.iter(|| model.estimate(&polly_schedule(&gemm)).seconds)
    });
    group.bench_function("fig7_row_heat3d_clang", |b| {
        b.iter(|| model.estimate(&clang_schedule(&heat)).seconds)
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
