//! Criterion micro-benchmark: dependence-graph construction.

use criterion::{criterion_group, criterion_main, Criterion};
use dependence::analyze;
use polybench::cloudsc::{full_model, CloudscSizes, CloudscVariant};
use polybench::{benchmark, Dataset};

fn bench_dependence(c: &mut Criterion) {
    let mut group = c.benchmark_group("dependence_analysis");
    group.sample_size(10);
    let gemm = (benchmark("gemm").unwrap().a)(Dataset::Large);
    let correlation = (benchmark("correlation").unwrap().a)(Dataset::Large);
    let cloudsc = full_model(CloudscVariant::Fortran, CloudscSizes::mini());
    group.bench_function("gemm_a_large", |b| b.iter(|| analyze(&gemm)));
    group.bench_function("correlation_a_large", |b| b.iter(|| analyze(&correlation)));
    group.bench_function("cloudsc_fortran_mini", |b| b.iter(|| analyze(&cloudsc)));
    group.finish();
}

criterion_group!(benches, bench_dependence);
criterion_main!(benches);
