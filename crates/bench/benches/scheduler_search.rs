//! Criterion micro-benchmark: the daisy scheduling pipeline (idiom detection,
//! database query, recipe application) and the evolutionary search.
//!
//! The search is measured twice: the production configuration (parallel
//! candidate evaluation, structural dedupe, memoized cost model) and the
//! pre-refactor baseline (sequential, no dedupe, unmemoized model), so the
//! throughput win is visible in one run.

use criterion::{criterion_group, criterion_main, Criterion};
use daisy::search::EvolutionarySearch;
use daisy::{DaisyConfig, DaisyScheduler, SearchConfig};
use machine::CostModel;
use polybench::{benchmark, Dataset};

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_search");
    group.sample_size(10);
    let gemm = (benchmark("gemm").unwrap().a)(Dataset::Medium);
    let mut seeded = DaisyScheduler::new(DaisyConfig::default());
    seeded.seed_from_programs(std::slice::from_ref(&gemm));
    group.bench_function("daisy_schedule_gemm_medium", |b| {
        b.iter(|| seeded.schedule(&gemm))
    });
    let config = SearchConfig {
        epochs: 1,
        iterations_per_epoch: 1,
        population: 6,
        seed: 1,
    };
    let search = EvolutionarySearch::new(config.clone());
    group.bench_function("evolutionary_search_one_epoch", |b| {
        b.iter(|| search.search(&gemm, 0, &CostModel::sequential(), &[]))
    });
    let reference = EvolutionarySearch::new(config).reference_evaluation();
    group.bench_function("evolutionary_search_one_epoch_reference", |b| {
        b.iter(|| {
            reference.search(
                &gemm,
                0,
                &CostModel::sequential().without_memoization(),
                &[],
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
