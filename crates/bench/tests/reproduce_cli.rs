//! CLI contract of the `reproduce` driver, mirroring the `tunedb` CLI suite
//! (`crates/tunestore/tests/tunedb_cli.rs`): `--list` enumerates the figure
//! harnesses and exits 0 without running anything; usage errors exit 2 with
//! a one-line diagnostic, never a panic.

use std::process::{Command, Output};

fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("reproduce runs")
}

#[test]
fn list_prints_every_figure_harness_and_exits_zero() {
    let output = reproduce(&["--list"]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.is_empty(), "--list must not warn: {stderr}");
    let names: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        names,
        ["fig1", "table1", "fig6", "fig7", "fig9", "fig11", "fig12"],
        "--list prints exactly the known harnesses, one per line, in paper order"
    );
    // Every listed name must be accepted by --only (the list is the
    // contract for scripting subsets).
    for name in names {
        let probe = reproduce(&["--only", name, "--list"]);
        assert_eq!(probe.status.code(), Some(0), "--only {name} rejected");
    }
}

#[test]
fn unknown_only_target_names_itself_and_lists_the_valid_ones() {
    let output = reproduce(&["--only", "fig99"]);
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    let lines: Vec<&str> = stderr.lines().collect();
    assert_eq!(lines.len(), 1, "one-line diagnostic, got: {stderr}");
    assert_eq!(
        lines[0],
        "reproduce: unknown target 'fig99' (valid targets: fig1, table1, fig6, fig7, fig9, fig11, fig12)",
        "the diagnostic must quote the bad name and enumerate every valid target"
    );
    // The same contract holds for a bad name buried in a comma list.
    let output = reproduce(&["--only", "fig1,nope"]);
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("unknown target 'nope'"),
        "list parsing must name the offending entry: {stderr}"
    );
}

#[test]
fn usage_errors_exit_with_code_two() {
    for args in [
        vec!["--frobnicate"],
        vec!["--store"],
        vec!["--only"],
        vec!["--only", "fig99"],
        vec!["--warm"],   // --warm needs --store
        vec!["--verify"], // --verify needs --store
    ] {
        let output = reproduce(&args);
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(2),
            "args {args:?}: expected usage error, stderr: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "args {args:?}: panicked instead of reporting: {stderr}"
        );
        let lines: Vec<&str> = stderr.lines().collect();
        assert_eq!(lines.len(), 1, "args {args:?}: one-line diagnostic");
        assert!(
            lines[0].starts_with("reproduce: "),
            "args {args:?}: diagnostic names the binary: {stderr}"
        );
    }
}
