//! CLI contract of the `reproduce` driver, mirroring the `tunedb` CLI suite
//! (`crates/tunestore/tests/tunedb_cli.rs`): `--list` enumerates the figure
//! harnesses and exits 0 without running anything; usage errors exit 2 with
//! a one-line diagnostic, never a panic.

use std::process::{Command, Output};

fn reproduce(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("reproduce runs")
}

#[test]
fn list_prints_every_figure_harness_and_exits_zero() {
    let output = reproduce(&["--list"]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.is_empty(), "--list must not warn: {stderr}");
    let names: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        names,
        ["fig1", "table1", "fig6", "fig7", "fig9", "fig11", "fig12"],
        "--list prints exactly the known harnesses, one per line, in paper order"
    );
    // Every listed name must be accepted by --only (the list is the
    // contract for scripting subsets).
    for name in names {
        let probe = reproduce(&["--only", name, "--list"]);
        assert_eq!(probe.status.code(), Some(0), "--only {name} rejected");
    }
}

#[test]
fn unknown_only_target_names_itself_and_lists_the_valid_ones() {
    let output = reproduce(&["--only", "fig99"]);
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    let lines: Vec<&str> = stderr.lines().collect();
    assert_eq!(lines.len(), 1, "one-line diagnostic, got: {stderr}");
    assert_eq!(
        lines[0],
        "reproduce: unknown target 'fig99' (valid targets: fig1, table1, fig6, fig7, fig9, fig11, fig12)",
        "the diagnostic must quote the bad name and enumerate every valid target"
    );
    // The same contract holds for a bad name buried in a comma list.
    let output = reproduce(&["--only", "fig1,nope"]);
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("unknown target 'nope'"),
        "list parsing must name the offending entry: {stderr}"
    );
}

#[test]
fn usage_errors_exit_with_code_two() {
    for args in [
        vec!["--frobnicate"],
        vec!["--store"],
        vec!["--only"],
        vec!["--only", "fig99"],
        vec!["--warm"],                // --warm needs --store
        vec!["--verify"],              // --verify needs --store
        vec!["--profile"],             // --profile needs an output path
        vec!["--sim-workers"],         // needs a worker count
        vec!["--sim-workers", "0"],    // zero workers is meaningless
        vec!["--sim-workers", "many"], // not a number
        vec!["--cache-mode"],          // needs a mode
        vec!["--cache-mode", "wrong"], // not a known tier
    ] {
        let output = reproduce(&args);
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(2),
            "args {args:?}: expected usage error, stderr: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "args {args:?}: panicked instead of reporting: {stderr}"
        );
        let lines: Vec<&str> = stderr.lines().collect();
        assert_eq!(lines.len(), 1, "args {args:?}: one-line diagnostic");
        assert!(
            lines[0].starts_with("reproduce: "),
            "args {args:?}: diagnostic names the binary: {stderr}"
        );
    }
}

#[test]
fn sim_workers_is_respected_in_smoke_runs() {
    let output = reproduce(&["--smoke", "--only", "fig11", "--sim-workers", "2"]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(0), "stderr: {stderr}");
    assert!(
        stdout.contains("sim-workers=2"),
        "the trace sharding line reports the requested worker count: {stdout}"
    );
    assert!(
        stdout.contains("shards"),
        "fig11 reports its shard plan: {stdout}"
    );
}

#[test]
fn cache_mode_is_accepted_and_reported_in_smoke_runs() {
    // Every valid spelling runs and announces itself on stdout; the
    // analytic tier produces the same table shape with estimated counters.
    for mode in ["exact", "analytic", "auto"] {
        let output = reproduce(&["--smoke", "--only", "table1", "--cache-mode", mode]);
        let stdout = String::from_utf8_lossy(&output.stdout);
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(0),
            "mode {mode}: stderr: {stderr}"
        );
        assert!(
            stdout.contains(&format!("cache mode: {mode}")),
            "mode {mode}: the run announces its cache tier: {stdout}"
        );
        assert!(
            stdout.contains("L1 Loads (single iteration)"),
            "mode {mode}: Table 1 keeps its trace-backed rows: {stdout}"
        );
    }
}

#[test]
fn profile_writes_a_parseable_json_lines_profile_and_verbose_prints_phases() {
    let dir = std::env::temp_dir().join(format!("reproduce-cli-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("profile.json");
    let path_str = path.to_str().expect("utf8 path");

    let output = reproduce(&[
        "--smoke",
        "--only",
        "fig7",
        "--verbose",
        "--profile",
        path_str,
    ]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(0), "stderr: {stderr}");
    assert!(
        stdout.contains("phases ["),
        "--verbose prints per-phase timings: {stdout}"
    );
    assert!(
        stdout.contains("================ profile ================"),
        "--profile prints the aggregate span tree: {stdout}"
    );
    assert!(
        stdout.contains(&format!("profile written to {}", path.display())),
        "--profile names the output file: {stdout}"
    );

    // The file round-trips through the same parser daisyprof uses, and the
    // run's schedule spans made it in.
    let contents = std::fs::read_to_string(&path).expect("profile file exists");
    let profile = telemetry::Profile::from_json_lines(&contents).expect("profile parses");
    assert_eq!(profile.label, "reproduce");
    assert!(
        profile.spans.keys().any(|path| path.contains("schedule")),
        "profile records scheduler spans: {contents}"
    );
    assert!(
        !profile.counters.is_empty(),
        "profile records counters: {contents}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
