//! The figure/table harnesses as library functions, shared between the
//! per-figure binaries and the unified `reproduce` driver.
//!
//! Every function regenerates one figure or table of the paper. The ones
//! that need a transfer-tuning database pull their scheduler from a
//! [`ReproContext`], which seeds it once per configuration and — when a
//! store directory is given — warm-starts it from a persisted
//! `tunestore` snapshot instead, so a whole reproduction run pays the
//! seeding cost at most once ever per machine.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

use baselines::{
    clang_schedule, icc_schedule, polly_schedule, python_framework_times, tiramisu_schedule,
};
use daisy::{DaisyConfig, DaisyScheduler, ScheduleOutcome};
use loop_ir::parser::parse_program;
use loop_ir::program::Program;
use machine::{effective_sim_workers, CacheAssessment, CostMode, CostModel, MachineConfig};
use normalize::Normalizer;
use polybench::cloudsc::{
    erosion_optimized, erosion_original, erosion_single_level, full_model, CloudscSizes,
    CloudscVariant,
};
use polybench::{all_benchmarks, Dataset};
use transforms::fuse_producer_consumers;

use crate::{
    daisy_seeded_from_a_variants, geometric_mean, paper_machine_model, print_table, ratio, THREADS,
};

/// The scheduler configurations the figure harnesses use. `Full` is the
/// complete daisy pipeline; `NoNormalize` is the "Opt only" ablation arm
/// (Fig. 7) and the "daisy w/o norm" arm (Fig. 9). Each seeds a different
/// database, so each persists to its own store file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Normalization + transfer tuning + idiom detection (the default).
    Full,
    /// Transfer tuning without a priori normalization.
    NoNormalize,
}

impl SchedulerKind {
    /// Every scheduler configuration the harnesses use.
    pub const ALL: [SchedulerKind; 2] = [SchedulerKind::Full, SchedulerKind::NoNormalize];

    /// The daisy configuration of this kind.
    pub fn config(self) -> DaisyConfig {
        match self {
            SchedulerKind::Full => DaisyConfig::default(),
            SchedulerKind::NoNormalize => DaisyConfig {
                normalize: false,
                ..DaisyConfig::default()
            },
        }
    }

    /// Short name used in store file names and log lines.
    pub fn stem(self) -> &'static str {
        match self {
            SchedulerKind::Full => "full",
            SchedulerKind::NoNormalize => "nonorm",
        }
    }
}

/// Options shared by every figure in one reproduction run.
#[derive(Debug, Clone, Default)]
pub struct ReproOptions {
    /// Use tiny problem sizes (`Dataset::Mini`, `CloudscSizes::mini()`) so
    /// the whole run finishes in seconds — the CI configuration.
    pub smoke: bool,
    /// Directory holding persisted tuning stores. Cold-seeded databases are
    /// persisted here; with [`ReproOptions::warm`] set, seeding is skipped
    /// entirely when a compatible store exists.
    pub store: Option<PathBuf>,
    /// Warm-start schedulers from the store instead of seeding.
    pub warm: bool,
    /// Print the per-phase wall clock ([`daisy::PhaseTimings`]) of every
    /// schedule the figures run.
    pub verbose: bool,
    /// Worker threads for the sharded cache simulation behind the trace
    /// figures (`--sim-workers`). `0` uses the machine's available
    /// parallelism. Sharded counters are bit-identical at any value, so
    /// this only changes wall clock, never figures.
    pub sim_workers: usize,
    /// Which cache-costing tier backs the run (`--cache-mode`): the exact
    /// simulator, the bounded-error analytic estimator, or `Auto` (analytic
    /// while searching, exact for every reported figure). Schedule choices
    /// are identical in all three — daisy ranks by the roofline model — so
    /// the knob only changes how trace-backed columns are produced.
    pub cache_mode: CostMode,
}

/// Prints one schedule's per-phase wall clock when `--verbose` is on.
/// A free function (not a [`ReproContext`] method) so figures can call it
/// while a scheduler borrow of the context is live.
pub fn print_phases(verbose: bool, label: &str, outcome: &ScheduleOutcome) {
    if verbose {
        println!("  phases [{label}]: {}", outcome.phase_timings);
    }
}

/// How one scheduler's database was obtained, for the run summary.
#[derive(Debug, Clone)]
pub struct SeedingEvent {
    /// Which scheduler configuration.
    pub kind: SchedulerKind,
    /// `"warm"` when loaded from a store, `"cold"` when seeded by search.
    pub mode: &'static str,
    /// Number of database entries.
    pub entries: usize,
    /// Wall-clock seconds spent seeding or loading.
    pub seconds: f64,
    /// The store file involved, if any.
    pub store: Option<PathBuf>,
}

/// Shared state of one reproduction run: the options plus the lazily built
/// (and possibly warm-started) schedulers, one per [`SchedulerKind`].
#[derive(Debug, Default)]
pub struct ReproContext {
    options: ReproOptions,
    schedulers: HashMap<SchedulerKind, DaisyScheduler>,
    events: Vec<SeedingEvent>,
}

impl ReproContext {
    /// Creates a context for one run.
    pub fn new(options: ReproOptions) -> Self {
        ReproContext {
            options,
            schedulers: HashMap::new(),
            events: Vec::new(),
        }
    }

    /// The options this run was started with.
    pub fn options(&self) -> &ReproOptions {
        &self.options
    }

    /// How each scheduler used so far obtained its database.
    pub fn events(&self) -> &[SeedingEvent] {
        &self.events
    }

    /// The PolyBench dataset of this run.
    pub fn dataset(&self) -> Dataset {
        if self.options.smoke {
            Dataset::Mini
        } else {
            Dataset::Large
        }
    }

    /// The CLOUDSC sizes of this run.
    pub fn sizes(&self) -> CloudscSizes {
        if self.options.smoke {
            CloudscSizes::mini()
        } else {
            CloudscSizes::paper()
        }
    }

    /// The store file a scheduler kind persists to / warm-starts from under
    /// this run's options (`<store>/daisy-<kind>-<dataset>.tunedb`).
    pub fn store_path(&self, kind: SchedulerKind) -> Option<PathBuf> {
        let dataset = format!("{:?}", self.dataset()).to_lowercase();
        self.options
            .store
            .as_ref()
            .map(|dir| dir.join(format!("daisy-{}-{}.tunedb", kind.stem(), dataset)))
    }

    /// The scheduler of the given kind, seeded (or warm-started) on first
    /// use and cached for the rest of the run.
    pub fn scheduler(&mut self, kind: SchedulerKind) -> &DaisyScheduler {
        if !self.schedulers.contains_key(&kind) {
            let (scheduler, event) = self.build(kind);
            self.events.push(event);
            self.schedulers.insert(kind, scheduler);
        }
        &self.schedulers[&kind]
    }

    /// The scheduler configuration for a kind under this run's options:
    /// the kind's config with the run's cache-costing tier applied. The
    /// tier is excluded from the store fingerprint (it cannot change
    /// schedules), so stores stay interchangeable across modes.
    fn config_for(&self, kind: SchedulerKind) -> daisy::DaisyConfig {
        kind.config().with_cache_mode(self.options.cache_mode)
    }

    fn build(&self, kind: SchedulerKind) -> (DaisyScheduler, SeedingEvent) {
        let store = self.store_path(kind);
        if self.options.warm {
            if let Some(path) = &store {
                let start = Instant::now();
                let mut scheduler = DaisyScheduler::new(self.config_for(kind));
                match scheduler.warm_start(path) {
                    Ok(entries) => {
                        let event = SeedingEvent {
                            kind,
                            mode: "warm",
                            entries,
                            seconds: start.elapsed().as_secs_f64(),
                            store: store.clone(),
                        };
                        return (scheduler, event);
                    }
                    Err(e) => eprintln!(
                        "reproduce: warm start from {} failed ({e}); seeding cold",
                        path.display()
                    ),
                }
            }
        }
        let start = Instant::now();
        let scheduler = daisy_seeded_from_a_variants(self.dataset(), self.config_for(kind));
        let seconds = start.elapsed().as_secs_f64();
        if let Some(path) = &store {
            if let Err(e) = scheduler.persist(path) {
                eprintln!("reproduce: could not persist {} ({e})", path.display());
            }
        }
        let event = SeedingEvent {
            kind,
            mode: "cold",
            entries: scheduler.database().len(),
            seconds,
            store,
        };
        (scheduler, event)
    }
}

// --------------------------------------------------------------------------
// Figure 1
// --------------------------------------------------------------------------

/// A GEMM kernel with the loops in the given `order` (a permutation of
/// "ijk") at the Figure 1 problem size, divided by `shrink` (1 = paper
/// size, larger for smoke runs).
pub fn gemm_with_order(order: &str, shrink: i64) -> Program {
    let l: Vec<char> = order.chars().collect();
    let bound = |c: char| match c {
        'i' => "NI",
        'j' => "NJ",
        _ => "NK",
    };
    parse_program(&format!(
        "program gemm_{order} {{
           param NI = {ni}; param NJ = {nj}; param NK = {nk};
           scalar alpha = 1.5; scalar beta = 1.2;
           array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
           for {a} in 0..{ab} {{ for {b} in 0..{bb} {{ for {c} in 0..{cb} {{
             C[i][j] += alpha * A[i][k] * B[k][j];
           }} }} }}
         }}",
        ni = 1000 / shrink,
        nj = 1100 / shrink,
        nk = 1200 / shrink,
        a = l[0],
        b = l[1],
        c = l[2],
        ab = bound(l[0]),
        bb = bound(l[1]),
        cb = bound(l[2]),
    ))
    .expect("gemm variant parses")
}

/// Figure 1: structurally different GEMM kernels yield significantly
/// different performance under a baseline compiler and under Polly, while
/// the normalized pipeline maps them all to the same canonical form.
pub fn fig1_gemm_variants(ctx: &ReproContext) {
    let shrink = if ctx.options().smoke { 25 } else { 1 };
    let model = paper_machine_model(THREADS);
    let sequential = paper_machine_model(1);
    let mut rows = Vec::new();
    let mut clang_times = Vec::new();
    let mut polly_times = Vec::new();
    for order in ["ijk", "ikj", "jik", "jki", "kij", "kji"] {
        let p = gemm_with_order(order, shrink);
        let clang = sequential.estimate(&clang_schedule(&p)).seconds;
        let polly = model.estimate(&polly_schedule(&p)).seconds;
        let normalized = Normalizer::new().run(&p).expect("normalizes").program;
        let canonical: Vec<String> = normalized.loop_nests()[0]
            .nested_iterators()
            .iter()
            .map(|v| v.to_string())
            .collect();
        clang_times.push(clang);
        polly_times.push(polly);
        rows.push(vec![
            order.to_string(),
            format!("{clang:.3}"),
            format!("{polly:.3}"),
            canonical.join(""),
        ]);
    }
    print_table(
        &format!(
            "Figure 1: GEMM loop-order variants (estimated seconds, NI={})",
            1000 / shrink
        ),
        &["order", "clang -O3", "Polly", "normalized order"],
        &rows,
    );
    let spread = |times: &[f64]| {
        times.iter().cloned().fold(f64::MIN, f64::max)
            / times.iter().cloned().fold(f64::MAX, f64::min)
    };
    println!(
        "\nclang worst/best ratio: {:.1}x   Polly worst/best ratio: {:.1}x",
        spread(&clang_times),
        spread(&polly_times)
    );
    println!("after normalization every variant maps to the same canonical loop order");
}

// --------------------------------------------------------------------------
// Figure 6
// --------------------------------------------------------------------------

/// Figure 6: daisy vs Polly vs icc vs the Tiramisu auto-scheduler on the A
/// and B variants of the 15 PolyBench benchmarks. Runtimes are normalized
/// to the daisy A variant; `X` marks benchmarks the Tiramisu adapter cannot
/// convert.
pub fn fig6_autoschedulers(ctx: &mut ReproContext) {
    let dataset = ctx.dataset();
    let verbose = ctx.options().verbose;
    let model = paper_machine_model(THREADS);
    let scheduler = ctx.scheduler(SchedulerKind::Full);

    let mut rows = Vec::new();
    let mut ab_gaps = Vec::new();
    let mut speedup_polly_a = Vec::new();
    let mut speedup_icc_a = Vec::new();
    let mut speedup_tiramisu_a = Vec::new();
    let mut speedup_polly_b = Vec::new();
    let mut speedup_icc_b = Vec::new();
    let mut speedup_tiramisu_b = Vec::new();

    for b in all_benchmarks() {
        let a_prog = (b.a)(dataset);
        let b_prog = (b.b)(dataset);
        let outcome_a = scheduler.schedule(&a_prog);
        let outcome_b = scheduler.schedule(&b_prog);
        print_phases(verbose, &format!("{}/A", b.name), &outcome_a);
        print_phases(verbose, &format!("{}/B", b.name), &outcome_b);
        let daisy_a = outcome_a.seconds();
        let daisy_b = outcome_b.seconds();
        let polly_a = model.estimate(&polly_schedule(&a_prog)).seconds;
        let polly_b = model.estimate(&polly_schedule(&b_prog)).seconds;
        let icc_a = model.estimate(&icc_schedule(&a_prog)).seconds;
        let icc_b = model.estimate(&icc_schedule(&b_prog)).seconds;
        let tira_a = tiramisu_schedule(&a_prog, THREADS)
            .ok()
            .map(|p| model.estimate(&p).seconds);
        let tira_b = tiramisu_schedule(&b_prog, THREADS)
            .ok()
            .map(|p| model.estimate(&p).seconds);

        ab_gaps.push((daisy_b / daisy_a - 1.0).abs());
        speedup_polly_a.push(polly_a / daisy_a);
        speedup_icc_a.push(icc_a / daisy_a);
        speedup_polly_b.push(polly_b / daisy_b);
        speedup_icc_b.push(icc_b / daisy_b);
        if let Some(t) = tira_a {
            speedup_tiramisu_a.push(t / daisy_a);
        }
        if let Some(t) = tira_b {
            speedup_tiramisu_b.push(t / daisy_b);
        }

        rows.push(vec![
            b.name.to_string(),
            format!("{daisy_a:.4}"),
            ratio(Some(daisy_a), daisy_a),
            ratio(Some(daisy_b), daisy_a),
            ratio(Some(polly_a), daisy_a),
            ratio(Some(polly_b), daisy_a),
            ratio(Some(icc_a), daisy_a),
            ratio(Some(icc_b), daisy_a),
            ratio(tira_a, daisy_a),
            ratio(tira_b, daisy_a),
        ]);
    }
    print_table(
        "Figure 6: normalized runtime (baseline = daisy A, lower is better)",
        &[
            "benchmark",
            "daisy A [s]",
            "daisy A",
            "daisy B",
            "Polly A",
            "Polly B",
            "icc A",
            "icc B",
            "Tiramisu A",
            "Tiramisu B",
        ],
        &rows,
    );
    println!(
        "\ndaisy A/B robustness: mean gap {:.1}%  max gap {:.1}%",
        100.0 * ab_gaps.iter().sum::<f64>() / ab_gaps.len() as f64,
        100.0 * ab_gaps.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "geo-mean speedup of daisy on A variants: {:.2}x vs Polly, {:.2}x vs icc, {:.2}x vs Tiramisu",
        geometric_mean(&speedup_polly_a),
        geometric_mean(&speedup_icc_a),
        geometric_mean(&speedup_tiramisu_a)
    );
    println!(
        "geo-mean speedup of daisy on B variants: {:.2}x vs Polly, {:.2}x vs icc, {:.2}x vs Tiramisu",
        geometric_mean(&speedup_polly_b),
        geometric_mean(&speedup_icc_b),
        geometric_mean(&speedup_tiramisu_b)
    );
}

// --------------------------------------------------------------------------
// Figure 7
// --------------------------------------------------------------------------

/// Figure 7: ablation study — clang alone, transfer tuning without
/// normalization (Opt), normalization without transfer tuning (Norm), and
/// the full pipeline (Norm + Opt), on the A and B variants of every
/// benchmark. Runtimes are normalized to clang on the A variant.
pub fn fig7_ablation(ctx: &mut ReproContext) {
    let dataset = ctx.dataset();
    let sequential = paper_machine_model(1);

    // Build (or warm-start) both schedulers up front; the borrow of one
    // ends before the other is used.
    ctx.scheduler(SchedulerKind::Full);
    ctx.scheduler(SchedulerKind::NoNormalize);

    let mut rows = Vec::new();
    for b in all_benchmarks() {
        let a_prog = (b.a)(dataset);
        let b_prog = (b.b)(dataset);
        let clang_a = sequential.estimate(&clang_schedule(&a_prog)).seconds;
        let clang_b = sequential.estimate(&clang_schedule(&b_prog)).seconds;
        let norm_only = |p: &Program| {
            let normalized = Normalizer::new().run(p).expect("normalizes").program;
            sequential.estimate(&clang_schedule(&normalized)).seconds
        };
        let opt_a = ctx.scheduler(SchedulerKind::NoNormalize).schedule(&a_prog);
        let opt_b = ctx.scheduler(SchedulerKind::NoNormalize).schedule(&b_prog);
        let full_a = ctx.scheduler(SchedulerKind::Full).schedule(&a_prog);
        let full_b = ctx.scheduler(SchedulerKind::Full).schedule(&b_prog);
        print_phases(ctx.options().verbose, &format!("{}/A", b.name), &full_a);
        print_phases(ctx.options().verbose, &format!("{}/B", b.name), &full_b);
        let row = vec![
            b.name.to_string(),
            format!("{clang_a:.4}"),
            ratio(Some(clang_a), clang_a),
            ratio(Some(opt_a.seconds()), clang_a),
            ratio(Some(norm_only(&a_prog)), clang_a),
            ratio(Some(full_a.seconds()), clang_a),
            ratio(Some(clang_b), clang_a),
            ratio(Some(opt_b.seconds()), clang_a),
            ratio(Some(norm_only(&b_prog)), clang_a),
            ratio(Some(full_b.seconds()), clang_a),
        ];
        rows.push(row);
    }
    print_table(
        "Figure 7: ablation (baseline = clang A, lower is better)",
        &[
            "benchmark",
            "clang A [s]",
            "clang A",
            "Opt A",
            "Norm A",
            "Norm+Opt A",
            "clang B",
            "Opt B",
            "Norm B",
            "Norm+Opt B",
        ],
        &rows,
    );
    println!(
        "\nBoth normalization and transfer tuning are required for consistently low runtimes;"
    );
    println!("without normalization the database recipes fail to apply to the B variants.");
}

// --------------------------------------------------------------------------
// Figure 9
// --------------------------------------------------------------------------

/// Figure 9: the NPBench (Python) variants optimized by daisy (with and
/// without normalization) compared against the NumPy, Numba and DaCe
/// framework models. Runtimes are normalized to daisy (lower is better).
pub fn fig9_python_frameworks(ctx: &mut ReproContext) {
    let dataset = ctx.dataset();
    let machine = MachineConfig::xeon_e5_2680v3();
    ctx.scheduler(SchedulerKind::Full);
    ctx.scheduler(SchedulerKind::NoNormalize);

    let mut rows = Vec::new();
    for b in all_benchmarks() {
        let (py_prog, ops) = (b.py)(dataset);
        let daisy_t = ctx
            .scheduler(SchedulerKind::Full)
            .schedule(&py_prog)
            .seconds();
        let daisy_wo = ctx
            .scheduler(SchedulerKind::NoNormalize)
            .schedule(&py_prog)
            .seconds();
        let frameworks = python_framework_times(&py_prog, &ops, &machine, THREADS);
        rows.push(vec![
            b.name.to_string(),
            format!("{daisy_t:.4}"),
            ratio(Some(daisy_t), daisy_t),
            ratio(Some(daisy_wo), daisy_t),
            ratio(Some(frameworks.numpy), daisy_t),
            ratio(Some(frameworks.numba), daisy_t),
            ratio(Some(frameworks.dace), daisy_t),
        ]);
    }
    print_table(
        "Figure 9: Python-frontend variants (baseline = daisy, lower is better)",
        &[
            "benchmark",
            "daisy [s]",
            "daisy",
            "daisy w/o norm",
            "NumPy",
            "Numba",
            "DaCe",
        ],
        &rows,
    );
}

// --------------------------------------------------------------------------
// Figure 11
// --------------------------------------------------------------------------

/// The daisy CLOUDSC version: the DaCe structure normalized and
/// producer-consumer fused (§5.1) — the single definition shared by the
/// figure harnesses and the bench snapshots.
pub fn daisy_full_model(sizes: CloudscSizes) -> Program {
    let dace = full_model(CloudscVariant::Dace, sizes);
    let normalized = Normalizer::new().run(&dace).expect("normalizes").program;
    fuse_producer_consumers(&normalized)
}

/// The four CLOUDSC proxy versions at the given sizes: Fortran, C, DaCe and
/// daisy ([`daisy_full_model`]).
pub fn cloudsc_versions(sizes: CloudscSizes) -> Vec<(&'static str, Program)> {
    vec![
        ("Fortran", full_model(CloudscVariant::Fortran, sizes)),
        ("C", full_model(CloudscVariant::C, sizes)),
        ("DaCe", full_model(CloudscVariant::Dace, sizes)),
        ("daisy", daisy_full_model(sizes)),
    ]
}

/// Figure 11: sequential runtime of the full CLOUDSC proxy for the Fortran,
/// C, DaCe and daisy versions (normalized to Fortran), plus the achieved
/// FLOP/s of Fortran and daisy against the machine peak (§5.2).
pub fn fig11_cloudsc_full(ctx: &ReproContext) {
    let sizes = ctx.sizes();
    let sequential = paper_machine_model(1);
    let versions = cloudsc_versions(sizes);

    let reports: Vec<(&str, machine::CostReport)> = versions
        .iter()
        .map(|(name, p)| (*name, sequential.estimate(p)))
        .collect();
    let baseline = reports[0].1.seconds;
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|(name, r)| {
            vec![
                name.to_string(),
                format!("{:.3}", r.seconds),
                ratio(Some(r.seconds), baseline),
                format!("{:.1}", r.flops_per_second() / 1e9),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Figure 11: CLOUDSC sequential execution (NPROMA={}, NBLOCKS={})",
            sizes.nproma, sizes.nblocks
        ),
        &["version", "seconds", "normalized", "GFLOP/s"],
        &rows,
    );
    let daisy_seconds = reports[3].1.seconds;
    println!(
        "\ndaisy vs hand-tuned Fortran: {:.1}% faster",
        100.0 * (baseline - daisy_seconds) / baseline
    );
    let peak = sequential.machine().peak_flops_per_core() / 1e9;
    println!(
        "peak (1 core, FMA+AVX): {:.1} GFLOP/s; Fortran reaches {:.1}%, daisy {:.1}% of peak",
        peak,
        100.0 * reports[0].1.flops_per_second() / 1e9 / peak,
        100.0 * reports[3].1.flops_per_second() / 1e9 / peak
    );

    // Since PR 5 the run-compressed simulator sustains multi-block
    // full-model traces, so every Fig. 11 schedule point is backed by the
    // exact simulated access stream, not only the analytical model.
    let trace_sizes = trace_block_sizes(ctx);
    let sim_workers = ctx.options().sim_workers;
    let machine = MachineConfig::xeon_e5_2680v3();
    let trace_versions = if trace_sizes.nblocks == sizes.nblocks {
        versions
    } else {
        cloudsc_versions(trace_sizes)
    };
    let mut shards = 0;
    let rows: Vec<Vec<String>> = trace_versions
        .iter()
        .map(|(name, p)| {
            let t = simulate_trace(name, p, &machine, sim_workers, ctx.options().cache_mode);
            shards = t.shards;
            vec![
                name.to_string(),
                t.accesses.to_string(),
                format!("{:.1}", t.seconds * 1e3),
                format!("{:.0}", t.accesses as f64 / t.seconds / 1e6),
                format!("{:.1}%", 100.0 * t.l1_hit_rate),
                t.l1_loads.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Figure 11 (trace): block-sharded cache simulation, NBLOCKS={}",
            trace_sizes.nblocks
        ),
        &[
            "version",
            "accesses",
            "sim [ms]",
            "Macc/s",
            "L1 hit rate",
            "L1 loads",
        ],
        &rows,
    );
    print_trace_sharding("\ntrace sharding", trace_sizes, shards, sim_workers);
}

/// The block count the paper's full CLOUDSC experiments sweep
/// (`NBLOCKS = 4096`, ~1.6B accesses per schedule point at paper
/// NPROMA/KLEV) — sustained by the block-sharded parallel simulator.
pub const FULL_TRACE_NBLOCKS: i64 = 4096;

/// The CLOUDSC sizes the trace-backed figure columns simulate: the run's
/// sizes, lifted to the paper's full `NBLOCKS = 4096` outside smoke runs.
/// Earlier PRs capped this at 64 blocks to keep the sequential simulation
/// tractable; the sharded driver removed the cap.
fn trace_block_sizes(ctx: &ReproContext) -> CloudscSizes {
    let sizes = ctx.sizes();
    if ctx.options().smoke {
        sizes
    } else {
        CloudscSizes {
            nblocks: FULL_TRACE_NBLOCKS,
            ..sizes
        }
    }
}

/// One trace simulation of a figure workload.
struct TraceStats {
    accesses: u64,
    seconds: f64,
    l1_hit_rate: f64,
    l1_loads: u64,
    shards: usize,
}

/// Produces one figure workload's trace-backed counters through
/// [`CostModel::assess_cache`] at the run's `--cache-mode`. Under the
/// exact tier (and `Auto` — reported figures are final validation) this
/// streams the access trace through the sharded cache driver, whose
/// counters are bit-identical at any `sim_workers` value. Under
/// `--cache-mode analytic` the counters come from the bounded-error
/// estimator instead and `shards` is 0 (nothing is simulated).
fn simulate_trace(
    name: &str,
    program: &Program,
    machine: &MachineConfig,
    sim_workers: usize,
    cache_mode: CostMode,
) -> TraceStats {
    let model = CostModel::new(machine.clone(), 1)
        .with_cost_mode(cache_mode)
        .with_simulation_parallelism(sim_workers);
    let start = Instant::now();
    let assessment = model
        .assess_cache(program, true)
        .unwrap_or_else(|e| panic!("{name}: trace fails: {e}"));
    let shards = match &assessment {
        CacheAssessment::Exact(stats) => stats.shards(),
        CacheAssessment::Analytic(_) => 0,
    };
    TraceStats {
        accesses: assessment.accesses(),
        seconds: start.elapsed().as_secs_f64().max(1e-9),
        l1_hit_rate: assessment.l1().hit_rate(),
        l1_loads: assessment.l1().loads,
        shards,
    }
}

/// Prints the sharding configuration of a trace-backed figure section:
/// block count, shard count, and the requested/effective simulation worker
/// counts.
fn print_trace_sharding(label: &str, sizes: CloudscSizes, shards: usize, sim_workers: usize) {
    println!(
        "{label}: NBLOCKS={}, {} shards, sim-workers={} (effective {})",
        sizes.nblocks,
        shards,
        sim_workers,
        effective_sim_workers(sim_workers, shards),
    );
}

// --------------------------------------------------------------------------
// Figure 12
// --------------------------------------------------------------------------

/// Which half of Figure 12 to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingMode {
    /// Fixed workload, 1-12 threads (Fig. 12a).
    Strong,
    /// Workload grows with the thread count (Fig. 12b).
    Weak,
    /// Both halves.
    Both,
}

/// Figure 12: strong scaling (fixed workload, 1-12 threads) and weak
/// scaling (workload grows with the thread count) of the CLOUDSC proxy for
/// the Fortran, C, DaCe and daisy versions.
pub fn fig12_cloudsc_scaling(ctx: &ReproContext, mode: ScalingMode) {
    if matches!(mode, ScalingMode::Strong | ScalingMode::Both) {
        let programs = cloudsc_versions(ctx.sizes());
        let mut rows = Vec::new();
        for threads in [1usize, 2, 4, 6, 8, 10, 12] {
            let model = paper_machine_model(threads);
            let times: Vec<f64> = programs
                .iter()
                .map(|(_, p)| model.estimate(p).seconds)
                .collect();
            let gain = 100.0 * (times[0] - times[3]) / times[0];
            rows.push(vec![
                threads.to_string(),
                format!("{:.3}", times[0]),
                format!("{:.3}", times[1]),
                format!("{:.3}", times[2]),
                format!("{:.3}", times[3]),
                format!("{gain:.2}%"),
            ]);
        }
        print_table(
            "Figure 12a: strong scaling (seconds per run)",
            &[
                "threads",
                "Fortran",
                "C",
                "DaCe",
                "daisy",
                "daisy vs Fortran",
            ],
            &rows,
        );
    }
    if matches!(mode, ScalingMode::Weak | ScalingMode::Both) {
        // The weak-scaling workload list; a smoke run shrinks the column
        // counts 64x so the whole figure stays CI-sized.
        let scale = if ctx.options().smoke { 64 } else { 1 };
        let mut rows = Vec::new();
        for (columns, threads) in [(65536i64, 1usize), (131072, 2), (262144, 4), (524288, 8)] {
            let sizes = CloudscSizes::with_columns(columns / scale);
            let programs = cloudsc_versions(sizes);
            let model = paper_machine_model(threads);
            let times: Vec<f64> = programs
                .iter()
                .map(|(_, p)| model.estimate(p).seconds)
                .collect();
            let gain = 100.0 * (times[0] - times[3]) / times[0];
            rows.push(vec![
                format!("{} / {threads}", columns / scale),
                format!("{:.3}", times[0]),
                format!("{:.3}", times[1]),
                format!("{:.3}", times[2]),
                format!("{:.3}", times[3]),
                format!("{gain:.2}%"),
            ]);
        }
        print_table(
            "Figure 12b: weak scaling (seconds per run)",
            &[
                "columns/threads",
                "Fortran",
                "C",
                "DaCe",
                "daisy",
                "daisy vs Fortran",
            ],
            &rows,
        );
        // The weak-scaling points only grow the block count and blocks are
        // independent, so one sharded simulation at the full schedule-point
        // block count stands for every row's exact per-block access stream.
        let trace_sizes = trace_block_sizes(ctx);
        let sim_workers = ctx.options().sim_workers;
        let machine = MachineConfig::xeon_e5_2680v3();
        let trace = simulate_trace(
            "daisy",
            &daisy_full_model(trace_sizes),
            &machine,
            sim_workers,
            ctx.options().cache_mode,
        );
        println!(
            "\ndaisy trace per schedule point (NBLOCKS={}): {} accesses simulated in {:.1} ms ({:.0} Macc/s), L1 hit rate {:.1}%",
            trace_sizes.nblocks,
            trace.accesses,
            trace.seconds * 1e3,
            trace.accesses as f64 / trace.seconds / 1e6,
            100.0 * trace.l1_hit_rate
        );
        print_trace_sharding("trace sharding", trace_sizes, trace.shards, sim_workers);
    }
}

// --------------------------------------------------------------------------
// Table 1
// --------------------------------------------------------------------------

/// The Table 1 CLOUDSC erosion workloads at the given sizes: the nests the
/// cold/warm equivalence guarantee is checked on.
pub fn table1_workloads(sizes: CloudscSizes) -> Vec<(&'static str, Program)> {
    vec![
        (
            "erosion_single_original",
            erosion_single_level(sizes, false),
        ),
        (
            "erosion_single_optimized",
            erosion_single_level(sizes, true),
        ),
        ("erosion_full_original", erosion_original(sizes)),
        ("erosion_full_optimized", erosion_optimized(sizes)),
    ]
}

/// Table 1: the erosion-of-clouds loop nest before and after normalization +
/// producer-consumer fusion — runtime for a single vertical iteration and
/// for all KLEV iterations, plus the absolute number of L1 loads and evicts.
pub fn table1_cloudsc_erosion(ctx: &ReproContext) {
    let sizes = ctx.sizes();
    let model = paper_machine_model(1);
    let machine = MachineConfig::xeon_e5_2680v3();

    let original_single = erosion_single_level(sizes, false);
    let optimized_single = erosion_single_level(sizes, true);
    let original_full = erosion_original(sizes);
    let optimized_full = erosion_optimized(sizes);

    let t = |p: &Program| model.estimate(p).seconds * 1000.0;
    // The single-level nests have a one-trip top-level loop, so the sharded
    // driver runs them as one covering shard: counters exactly match the
    // monolithic simulation at any worker count.
    let sim_workers = ctx.options().sim_workers;
    // `(l1_loads, l1_evicts, accesses)` per nest — exactly simulated under
    // the exact tier and `Auto` (table rows are final validation), estimated
    // with bounded error under `--cache-mode analytic`.
    let cache_model = CostModel::new(machine.clone(), 1)
        .with_cost_mode(ctx.options().cache_mode)
        .with_simulation_parallelism(sim_workers);
    let cache = |p: &Program| -> (u64, u64, u64) {
        let a = cache_model.assess_cache(p, true).expect("trace runs");
        (a.l1().loads, a.l1().evicts, a.accesses())
    };
    let orig_cache = cache(&original_single);
    let opt_cache = cache(&optimized_single);

    let rows = vec![
        vec![
            "Single Iteration [ms]".to_string(),
            format!("{:.3}", t(&original_single)),
            format!("{:.3}", t(&optimized_single)),
        ],
        vec![
            "KLEV Iterations [ms]".to_string(),
            format!("{:.3}", t(&original_full)),
            format!("{:.3}", t(&optimized_full)),
        ],
        vec![
            "L1 Loads (single iteration)".to_string(),
            format!("{}", orig_cache.0),
            format!("{}", opt_cache.0),
        ],
        vec![
            "L1 Evicts (single iteration)".to_string(),
            format!("{}", orig_cache.1),
            format!("{}", opt_cache.1),
        ],
        vec![
            "L1 accesses (single iteration)".to_string(),
            format!("{}", orig_cache.2),
            format!("{}", opt_cache.2),
        ],
    ];
    print_table(
        &format!(
            "Table 1: erosion of clouds, NPROMA={}, KLEV={}",
            sizes.nproma, sizes.klev
        ),
        &["metric", "Original", "Optimized"],
        &rows,
    );
    println!(
        "\nruntime speedup: single iteration {:.2}x, KLEV iterations {:.2}x",
        t(&original_single) / t(&optimized_single),
        t(&original_full) / t(&optimized_full)
    );
    println!("note: the paper's lower L1 load/evict counts stem from removed register spills,");
    println!("which the IR-level cache simulation cannot observe (see EXPERIMENTS.md).");
}

// --------------------------------------------------------------------------
// Cold/warm equivalence
// --------------------------------------------------------------------------

/// One scheduler configuration's cold/warm comparison.
#[derive(Debug, Clone)]
pub struct EquivalenceReport {
    /// Which scheduler configuration was compared.
    pub kind: SchedulerKind,
    /// Entries in the (deduped) database.
    pub entries: usize,
    /// Workloads scheduled by both sides.
    pub outcomes_checked: usize,
    /// Workloads whose [`ScheduleOutcome`]s were bit-identical.
    pub outcomes_identical: usize,
    /// True when databases and every outcome matched exactly.
    pub identical: bool,
}

/// The workloads cold/warm equivalence is checked on: the Table 1 CLOUDSC
/// erosion nests plus the A and B variants of every PolyBench benchmark.
pub fn equivalence_workloads(dataset: Dataset, sizes: CloudscSizes) -> Vec<(String, Program)> {
    let mut workloads: Vec<(String, Program)> = table1_workloads(sizes)
        .into_iter()
        .map(|(name, p)| (name.to_string(), p))
        .collect();
    for b in all_benchmarks() {
        workloads.push((format!("{}_a", b.name), (b.a)(dataset)));
        workloads.push((format!("{}_b", b.name), (b.b)(dataset)));
    }
    workloads
}

/// Verifies the cold/warm equivalence guarantee for one scheduler kind: a
/// scheduler warm-started from the persisted store must hold the identical
/// database and produce bit-identical [`ScheduleOutcome`]s to a freshly
/// seeded one on every equivalence workload.
///
/// # Errors
/// A message when the store directory is missing from the options or the
/// store cannot be loaded.
pub fn verify_cold_warm(
    options: &ReproOptions,
    kind: SchedulerKind,
) -> Result<EquivalenceReport, String> {
    let ctx = ReproContext::new(options.clone());
    let cold = daisy_seeded_from_a_variants(ctx.dataset(), kind.config());
    verify_scheduler_against_store(&cold, options, kind)
}

/// Like [`verify_cold_warm`], but against an already cold-seeded scheduler
/// — for callers (such as `bench_pr3`) that just paid for seeding and must
/// not pay again.
///
/// # Errors
/// A message when the store directory is missing from the options or the
/// store cannot be loaded.
pub fn verify_scheduler_against_store(
    cold: &DaisyScheduler,
    options: &ReproOptions,
    kind: SchedulerKind,
) -> Result<EquivalenceReport, String> {
    let ctx = ReproContext::new(options.clone());
    let path = ctx
        .store_path(kind)
        .ok_or_else(|| "cold/warm verification needs --store".to_string())?;

    let mut warm = DaisyScheduler::new(kind.config());
    warm.warm_start(&path)
        .map_err(|e| format!("warm start from {} failed: {e}", path.display()))?;

    let mut identical = warm.database().entries() == cold.database().entries();
    if !identical {
        eprintln!(
            "verify[{}]: databases differ (cold {} entries, warm {})",
            kind.stem(),
            cold.database().len(),
            warm.database().len()
        );
    }
    let workloads = equivalence_workloads(ctx.dataset(), ctx.sizes());
    let mut outcomes_identical = 0;
    for (name, program) in &workloads {
        let cold_outcome: ScheduleOutcome = cold.schedule(program);
        let warm_outcome = warm.schedule(program);
        if cold_outcome == warm_outcome {
            outcomes_identical += 1;
        } else {
            identical = false;
            eprintln!("verify[{}]: outcome mismatch on {name}", kind.stem());
        }
    }
    Ok(EquivalenceReport {
        kind,
        entries: cold.database().len(),
        outcomes_checked: workloads.len(),
        outcomes_identical,
        identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_options(store: Option<PathBuf>, warm: bool) -> ReproOptions {
        ReproOptions {
            smoke: true,
            store,
            warm,
            ..ReproOptions::default()
        }
    }

    #[test]
    fn context_caches_schedulers_and_records_events() {
        let mut ctx = ReproContext::new(smoke_options(None, false));
        ctx.scheduler(SchedulerKind::Full);
        ctx.scheduler(SchedulerKind::Full);
        assert_eq!(ctx.events().len(), 1, "second use must hit the cache");
        assert_eq!(ctx.events()[0].mode, "cold");
        assert!(ctx.events()[0].entries > 0);
    }

    #[test]
    fn store_paths_encode_kind_and_dataset() {
        let ctx = ReproContext::new(smoke_options(Some(PathBuf::from("/tmp/store")), false));
        let path = ctx.store_path(SchedulerKind::NoNormalize).unwrap();
        assert_eq!(path, PathBuf::from("/tmp/store/daisy-nonorm-mini.tunedb"));
        let none = ReproContext::new(smoke_options(None, false));
        assert!(none.store_path(SchedulerKind::Full).is_none());
    }

    #[test]
    fn cold_run_persists_and_warm_run_loads_identical_database() {
        let dir = std::env::temp_dir().join(format!("bench-figures-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let mut cold = ReproContext::new(smoke_options(Some(dir.clone()), false));
        let cold_entries: Vec<_> = cold
            .scheduler(SchedulerKind::Full)
            .database()
            .entries()
            .to_vec();
        assert!(cold.store_path(SchedulerKind::Full).unwrap().exists());

        let mut warm = ReproContext::new(smoke_options(Some(dir.clone()), true));
        let warm_db = warm.scheduler(SchedulerKind::Full).database().entries();
        assert_eq!(warm_db, cold_entries.as_slice());
        assert_eq!(warm.events()[0].mode, "warm");

        let report = verify_cold_warm(&smoke_options(Some(dir.clone()), true), SchedulerKind::Full)
            .expect("store exists");
        assert!(report.identical, "cold/warm equivalence must hold");
        assert_eq!(report.outcomes_checked, report.outcomes_identical);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_request_without_a_store_falls_back_to_cold_seeding() {
        let dir = std::env::temp_dir().join(format!("bench-figures-miss-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut ctx = ReproContext::new(smoke_options(Some(dir.clone()), true));
        ctx.scheduler(SchedulerKind::Full);
        assert_eq!(ctx.events()[0].mode, "cold");
        // The fallback also persists, so the next warm run hits.
        assert!(ctx.store_path(SchedulerKind::Full).unwrap().exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
