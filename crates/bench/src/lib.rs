//! Shared harness utilities for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the paper
//! (see DESIGN.md for the index) by building the corresponding workloads from
//! the `polybench` crate, scheduling them with daisy and the baselines, and
//! printing the same rows/series the paper reports. Absolute numbers come
//! from the analytical machine model, so only the *shape* (ratios, ordering,
//! crossovers) is comparable with the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;

use daisy::{DaisyConfig, DaisyScheduler};
use loop_ir::program::Program;
use machine::{CostModel, MachineConfig};
use polybench::{all_benchmarks, Dataset};

/// Number of threads used for the multi-threaded comparisons (the paper's
/// machine has 12 cores).
pub const THREADS: usize = 12;

/// Geometric mean of a sequence of positive values.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a simple aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Builds a daisy scheduler whose database is seeded from the (normalized)
/// A variants of all 15 benchmarks, the setup of §4.1.
pub fn daisy_seeded_from_a_variants(dataset: Dataset, config: DaisyConfig) -> DaisyScheduler {
    let mut scheduler = DaisyScheduler::new(config);
    let a_variants: Vec<Program> = all_benchmarks().iter().map(|b| (b.a)(dataset)).collect();
    scheduler.seed_from_programs(&a_variants);
    scheduler
}

/// The multi-threaded cost model used by the figure harnesses.
pub fn paper_machine_model(threads: usize) -> CostModel {
    CostModel::new(MachineConfig::xeon_e5_2680v3(), threads)
}

/// Formats a runtime ratio the way the figures report it (relative runtime,
/// lower is better), with `X` marking inapplicable configurations.
pub fn ratio(value: Option<f64>, baseline: f64) -> String {
    match value {
        Some(v) if baseline > 0.0 => format!("{:.2}", v / baseline),
        _ => "X".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(Some(2.0), 1.0), "2.00");
        assert_eq!(ratio(None, 1.0), "X");
        assert_eq!(ratio(Some(1.0), 0.0), "X");
    }

    #[test]
    fn seeded_scheduler_has_database_entries() {
        let scheduler = daisy_seeded_from_a_variants(Dataset::Mini, DaisyConfig::default());
        assert!(!scheduler.database().is_empty());
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "test",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
