//! Figure 11: sequential runtime of the full CLOUDSC proxy for the Fortran,
//! C, DaCe and daisy versions (normalized to Fortran), plus the achieved
//! FLOP/s of Fortran and daisy against the machine peak (§5.2).
//!
//! Thin wrapper around [`bench::figures::fig11_cloudsc_full`]; the unified
//! `reproduce` binary batches all figures behind one entry point.

use bench::figures::{fig11_cloudsc_full, ReproContext, ReproOptions};

fn main() {
    let ctx = ReproContext::new(ReproOptions::default());
    fig11_cloudsc_full(&ctx);
}
