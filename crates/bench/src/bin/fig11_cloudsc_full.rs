//! Figure 11: sequential runtime of the full CLOUDSC proxy for the Fortran,
//! C, DaCe and daisy versions (normalized to Fortran), plus the achieved
//! FLOP/s of Fortran and daisy against the machine peak (§5.2).

use bench::{paper_machine_model, print_table, ratio};
use normalize::Normalizer;
use polybench::cloudsc::{full_model, CloudscSizes, CloudscVariant};
use transforms::fuse_producer_consumers;

fn main() {
    let sizes = CloudscSizes::paper();
    let sequential = paper_machine_model(1);

    let fortran = full_model(CloudscVariant::Fortran, sizes);
    let c = full_model(CloudscVariant::C, sizes);
    let dace = full_model(CloudscVariant::Dace, sizes);
    // daisy: the DaCe-produced structure normalized and producer-consumer
    // fused (§5.1).
    let daisy_prog = {
        let normalized = Normalizer::new().run(&dace).expect("normalizes").program;
        fuse_producer_consumers(&normalized)
    };

    let reports = [
        ("CloudSC Fortran", sequential.estimate(&fortran)),
        ("CloudSC C", sequential.estimate(&c)),
        ("DaCe", sequential.estimate(&dace)),
        ("daisy", sequential.estimate(&daisy_prog)),
    ];
    let baseline = reports[0].1.seconds;
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|(name, r)| {
            vec![
                name.to_string(),
                format!("{:.3}", r.seconds),
                ratio(Some(r.seconds), baseline),
                format!("{:.1}", r.flops_per_second() / 1e9),
            ]
        })
        .collect();
    print_table(
        "Figure 11: CLOUDSC sequential execution (NPROMA=128, NBLOCKS=512)",
        &["version", "seconds", "normalized", "GFLOP/s"],
        &rows,
    );
    let daisy_seconds = reports[3].1.seconds;
    println!(
        "\ndaisy vs hand-tuned Fortran: {:.1}% faster",
        100.0 * (baseline - daisy_seconds) / baseline
    );
    let peak = sequential.machine().peak_flops_per_core() / 1e9;
    println!(
        "peak (1 core, FMA+AVX): {:.1} GFLOP/s; Fortran reaches {:.1}%, daisy {:.1}% of peak",
        peak,
        100.0 * reports[0].1.flops_per_second() / 1e9 / peak,
        100.0 * reports[3].1.flops_per_second() / 1e9 / peak
    );
}
