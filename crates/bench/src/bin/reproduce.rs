//! `reproduce` — the unified reproduction driver: every figure and table of
//! the paper behind one entry point, with shared warm-start flags for the
//! persistent tuning store.
//!
//! ```text
//! reproduce [--smoke] [--store DIR] [--warm] [--verify] [--only LIST] [--list]
//!           [--verbose] [--profile OUT.json] [--sim-workers N]
//!           [--cache-mode exact|analytic|auto]
//!
//!   --smoke       tiny problem sizes (Dataset::Mini, CloudscSizes::mini());
//!                 the CI configuration, finishes in seconds
//!   --sim-workers N
//!                 worker threads for the sharded cache simulation behind
//!                 the trace figures (N >= 1; default: the machine's
//!                 available parallelism); counters are bit-identical at
//!                 any value, so this only changes wall clock
//!   --cache-mode M
//!                 which cache-costing tier backs the run (default: exact).
//!                 `exact` simulates every trace-backed column; `analytic`
//!                 replaces them with the bounded-error estimator (orders
//!                 of magnitude faster, error bound reported by the
//!                 machine crate); `auto` prices searches analytically but
//!                 keeps every reported figure exact. Schedule choices are
//!                 identical in all three modes (daisy ranks by the
//!                 roofline model)
//!   --verbose     print the per-phase wall clock (normalize / seed /
//!                 search / cost) of every schedule the figures run
//!   --profile F   record a telemetry profile of the whole run — spans,
//!                 counters and latency histograms across the scheduler,
//!                 the cache simulator and the tuning store — to F as
//!                 JSON lines, and print the aggregate span tree;
//!                 inspect or diff the file with daisyprof
//!   --store DIR   persist cold-seeded tuning databases under DIR
//!                 (<DIR>/daisy-<config>-<dataset>.tunedb)
//!   --warm        warm-start schedulers from the store instead of seeding
//!                 (falls back to cold seeding + persist on a miss)
//!   --verify      after the run, check the cold/warm equivalence
//!                 guarantee for every scheduler configuration the run
//!                 used: bit-identical databases and ScheduleOutcomes on
//!                 the Table 1 CLOUDSC workloads and all PolyBench A/B
//!                 variants (a cold run's scheduler doubles as the
//!                 reference; a warm run seeds a fresh cold one); exits 1
//!                 on any mismatch
//!   --only LIST   comma-separated subset of figures, e.g. fig6,table1
//!   --list        print the known figure names and exit
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use machine::CostMode;

use bench::figures::{
    fig11_cloudsc_full, fig12_cloudsc_scaling, fig1_gemm_variants, fig6_autoschedulers,
    fig7_ablation, fig9_python_frameworks, table1_cloudsc_erosion, verify_cold_warm,
    verify_scheduler_against_store, ReproContext, ReproOptions, ScalingMode,
};

/// The reproduction targets, in paper order.
const FIGURES: [&str; 7] = ["fig1", "table1", "fig6", "fig7", "fig9", "fig11", "fig12"];

struct Args {
    options: ReproOptions,
    verify: bool,
    only: Option<Vec<String>>,
    profile: Option<PathBuf>,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut options = ReproOptions::default();
    let mut verify = false;
    let mut only = None;
    let mut profile = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => options.smoke = true,
            "--warm" => options.warm = true,
            "--verbose" => options.verbose = true,
            "--verify" => verify = true,
            "--store" => {
                let dir = args.next().ok_or("--store needs a directory")?;
                options.store = Some(PathBuf::from(dir));
            }
            "--profile" => {
                let path = args.next().ok_or("--profile needs an output path")?;
                profile = Some(PathBuf::from(path));
            }
            "--cache-mode" => {
                let mode = args
                    .next()
                    .ok_or("--cache-mode needs a mode (exact, analytic or auto)")?;
                options.cache_mode = CostMode::parse(&mode).ok_or_else(|| {
                    format!("--cache-mode needs one of exact, analytic or auto, got {mode:?}")
                })?;
            }
            "--sim-workers" => {
                let n = args.next().ok_or("--sim-workers needs a worker count")?;
                options.sim_workers = match n.parse::<usize>() {
                    Ok(workers) if workers >= 1 => workers,
                    _ => {
                        return Err(format!(
                            "--sim-workers needs a worker count >= 1, got {n:?}"
                        ))
                    }
                };
            }
            "--only" => {
                let list = args.next().ok_or("--only needs a figure list")?;
                let names: Vec<String> = list.split(',').map(|s| s.trim().to_string()).collect();
                for name in &names {
                    if !FIGURES.contains(&name.as_str()) {
                        return Err(format!(
                            "unknown target '{name}' (valid targets: {})",
                            FIGURES.join(", ")
                        ));
                    }
                }
                only = Some(names);
            }
            "--list" => {
                for name in FIGURES {
                    println!("{name}");
                }
                return Ok(None);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if options.warm && options.store.is_none() {
        return Err("--warm needs --store".to_string());
    }
    if verify && options.store.is_none() {
        return Err("--verify needs --store".to_string());
    }
    Ok(Some(Args {
        options,
        verify,
        only,
        profile,
    }))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("reproduce: {e}");
            return ExitCode::from(2);
        }
    };

    // With --profile, every span and counter of the run aggregates into one
    // in-memory recorder; the figures themselves are unaware of it.
    let recorder = args
        .profile
        .as_ref()
        .map(|_| std::sync::Arc::new(telemetry::AggregatingRecorder::default()));
    if let Some(recorder) = &recorder {
        telemetry::install(recorder.clone());
    }
    let code = run_figures(&args);
    if let (Some(path), Some(recorder)) = (&args.profile, &recorder) {
        telemetry::uninstall();
        let profile = recorder.profile("reproduce");
        if let Err(e) = std::fs::write(path, profile.to_json_lines()) {
            eprintln!("reproduce: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("\n================ profile ================");
        print!("{}", profile.render_tree());
        println!("profile written to {}", path.display());
    }
    code
}

fn run_figures(args: &Args) -> ExitCode {
    let selected = |name: &str| {
        args.only
            .as_ref()
            .map(|names| names.iter().any(|n| n == name))
            .unwrap_or(true)
    };

    let start = Instant::now();
    println!("cache mode: {}", args.options.cache_mode.as_str());
    let mut ctx = ReproContext::new(args.options.clone());
    for name in FIGURES {
        if !selected(name) {
            continue;
        }
        println!("\n================ {name} ================");
        match name {
            "fig1" => fig1_gemm_variants(&ctx),
            "table1" => table1_cloudsc_erosion(&ctx),
            "fig6" => fig6_autoschedulers(&mut ctx),
            "fig7" => fig7_ablation(&mut ctx),
            "fig9" => fig9_python_frameworks(&mut ctx),
            "fig11" => fig11_cloudsc_full(&ctx),
            "fig12" => fig12_cloudsc_scaling(&ctx, ScalingMode::Both),
            _ => unreachable!("FIGURES and the dispatch table are in sync"),
        }
    }

    println!("\n================ summary ================");
    for event in ctx.events() {
        let store = event
            .store
            .as_ref()
            .map(|p| format!(" ({})", p.display()))
            .unwrap_or_default();
        println!(
            "scheduler {:>6}: {} database, {} entries in {:.3}s{store}",
            event.kind.stem(),
            event.mode,
            event.entries,
            event.seconds
        );
    }
    println!("total wall clock: {:.3}s", start.elapsed().as_secs_f64());

    if args.verify {
        println!("\n================ cold/warm verification ================");
        // Verify exactly the scheduler configurations this run used (an
        // --only subset may have used none, or just one): a cold run's
        // scheduler doubles as the verification reference, a warm run
        // seeds a fresh cold reference to compare against the store.
        let used: Vec<_> = ctx
            .events()
            .iter()
            .map(|e| (e.kind, e.mode))
            .collect::<Vec<_>>();
        if used.is_empty() {
            println!("the selected figures used no schedulers; nothing to verify");
            return ExitCode::SUCCESS;
        }
        let mut ok = true;
        for (kind, mode) in used {
            let result = if mode == "cold" {
                verify_scheduler_against_store(ctx.scheduler(kind), &args.options, kind)
            } else {
                verify_cold_warm(&args.options, kind)
            };
            match result {
                Ok(report) => {
                    println!(
                        "verify {:>6}: {} entries, {}/{} outcomes bit-identical -> {}",
                        kind.stem(),
                        report.entries,
                        report.outcomes_identical,
                        report.outcomes_checked,
                        if report.identical { "OK" } else { "MISMATCH" }
                    );
                    ok &= report.identical;
                }
                Err(e) => {
                    eprintln!("verify {:>6}: {e}", kind.stem());
                    ok = false;
                }
            }
        }
        if !ok {
            eprintln!("reproduce: cold/warm equivalence FAILED");
            return ExitCode::FAILURE;
        }
        println!("cold/warm equivalence holds");
    }
    ExitCode::SUCCESS
}
