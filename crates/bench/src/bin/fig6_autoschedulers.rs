//! Figure 6: daisy vs Polly vs icc vs the Tiramisu auto-scheduler on the A
//! and B variants of the 15 PolyBench benchmarks (LARGE size). Runtimes are
//! normalized to the daisy A variant; `X` marks benchmarks the Tiramisu
//! adapter cannot convert.
//!
//! Thin wrapper around [`bench::figures::fig6_autoschedulers`]; the unified
//! `reproduce` binary batches all figures (and adds warm-start flags).

use bench::figures::{fig6_autoschedulers, ReproContext, ReproOptions};

fn main() {
    let mut ctx = ReproContext::new(ReproOptions::default());
    fig6_autoschedulers(&mut ctx);
}
