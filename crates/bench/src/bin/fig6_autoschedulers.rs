//! Figure 6: daisy vs Polly vs icc vs the Tiramisu auto-scheduler on the A
//! and B variants of the 15 PolyBench benchmarks (LARGE size). Runtimes are
//! normalized to the daisy A variant; `X` marks benchmarks the Tiramisu
//! adapter cannot convert.

use baselines::{icc_schedule, polly_schedule, tiramisu_schedule};
use bench::{
    daisy_seeded_from_a_variants, geometric_mean, paper_machine_model, print_table, ratio, THREADS,
};
use daisy::DaisyConfig;
use polybench::{all_benchmarks, Dataset};

fn main() {
    let dataset = Dataset::Large;
    let model = paper_machine_model(THREADS);
    let scheduler = daisy_seeded_from_a_variants(dataset, DaisyConfig::default());

    let mut rows = Vec::new();
    let mut ab_gaps = Vec::new();
    let mut speedup_polly_a = Vec::new();
    let mut speedup_icc_a = Vec::new();
    let mut speedup_tiramisu_a = Vec::new();
    let mut speedup_polly_b = Vec::new();
    let mut speedup_icc_b = Vec::new();
    let mut speedup_tiramisu_b = Vec::new();

    for b in all_benchmarks() {
        let a_prog = (b.a)(dataset);
        let b_prog = (b.b)(dataset);
        let daisy_a = scheduler.schedule(&a_prog).seconds();
        let daisy_b = scheduler.schedule(&b_prog).seconds();
        let polly_a = model.estimate(&polly_schedule(&a_prog)).seconds;
        let polly_b = model.estimate(&polly_schedule(&b_prog)).seconds;
        let icc_a = model.estimate(&icc_schedule(&a_prog)).seconds;
        let icc_b = model.estimate(&icc_schedule(&b_prog)).seconds;
        let tira_a = tiramisu_schedule(&a_prog, THREADS)
            .ok()
            .map(|p| model.estimate(&p).seconds);
        let tira_b = tiramisu_schedule(&b_prog, THREADS)
            .ok()
            .map(|p| model.estimate(&p).seconds);

        ab_gaps.push((daisy_b / daisy_a - 1.0).abs());
        speedup_polly_a.push(polly_a / daisy_a);
        speedup_icc_a.push(icc_a / daisy_a);
        speedup_polly_b.push(polly_b / daisy_b);
        speedup_icc_b.push(icc_b / daisy_b);
        if let Some(t) = tira_a {
            speedup_tiramisu_a.push(t / daisy_a);
        }
        if let Some(t) = tira_b {
            speedup_tiramisu_b.push(t / daisy_b);
        }

        rows.push(vec![
            b.name.to_string(),
            format!("{daisy_a:.4}"),
            ratio(Some(daisy_a), daisy_a),
            ratio(Some(daisy_b), daisy_a),
            ratio(Some(polly_a), daisy_a),
            ratio(Some(polly_b), daisy_a),
            ratio(Some(icc_a), daisy_a),
            ratio(Some(icc_b), daisy_a),
            ratio(tira_a, daisy_a),
            ratio(tira_b, daisy_a),
        ]);
    }
    print_table(
        "Figure 6: normalized runtime (baseline = daisy A, lower is better)",
        &[
            "benchmark",
            "daisy A [s]",
            "daisy A",
            "daisy B",
            "Polly A",
            "Polly B",
            "icc A",
            "icc B",
            "Tiramisu A",
            "Tiramisu B",
        ],
        &rows,
    );
    println!(
        "\ndaisy A/B robustness: mean gap {:.1}%  max gap {:.1}%",
        100.0 * ab_gaps.iter().sum::<f64>() / ab_gaps.len() as f64,
        100.0 * ab_gaps.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "geo-mean speedup of daisy on A variants: {:.2}x vs Polly, {:.2}x vs icc, {:.2}x vs Tiramisu",
        geometric_mean(&speedup_polly_a),
        geometric_mean(&speedup_icc_a),
        geometric_mean(&speedup_tiramisu_a)
    );
    println!(
        "geo-mean speedup of daisy on B variants: {:.2}x vs Polly, {:.2}x vs icc, {:.2}x vs Tiramisu",
        geometric_mean(&speedup_polly_b),
        geometric_mean(&speedup_icc_b),
        geometric_mean(&speedup_tiramisu_b)
    );
}
