//! Analytic cache tier + stencil lane merging snapshot (PR 10).
//!
//! Measures the two costing upgrades of PR 10 against the retained
//! pipelines:
//!
//! 1. **Stencil lane merging.** Staggered same-array lanes (the
//!    `A[i-1]/A[i]/A[i+1]` taps of a stencil body) now coalesce inside
//!    `CacheHierarchy::access_run_group`, so the whole cluster gets
//!    closed-form hit crediting instead of per-lane phase walking. The
//!    *run-compression* of a workload — simulated accesses per real L1
//!    probe ([`CacheHierarchy::probes`]) — must reach a geo-mean >= 4x on
//!    the stencil set (it was ~2x before merging), with counters still
//!    bit-identical to the per-access pipeline.
//! 2. **Analytic costing.** [`machine::estimate_cache`] prices a program
//!    from per-`StrideRun`-signature summaries without walking any trace.
//!    On the unit-stride gate set of `BENCH_PR5.json` it must be >= 50x
//!    faster than exact run-compressed simulation, and on *all ten* PR 5
//!    workloads its miss estimates must stay within their own reported
//!    error bound of the exact counters.
//! 3. **Super-line bailout.** Groups whose every lane has |stride| >= the
//!    line size (the `col_major` walk) skip lane bookkeeping entirely; the
//!    run-group path must no longer lose to the per-access pipeline there
//!    (>= 1.0x, was 0.96x in `BENCH_PR5.json`).
//!
//! Writes `BENCH_PR10.json` into the current directory and prints the same
//! numbers as tables. Run with
//! `cargo run --release -p bench --bin bench_pr10` (add `--smoke` for tiny
//! problem sizes — the CI configuration, which checks the error-bound
//! bracket but not the timing gates).

use std::time::Instant;

use bench::figures::daisy_full_model;
use bench::{geometric_mean, print_table};
use loop_ir::parser::parse_program;
use loop_ir::program::Program;
use machine::exec::CompiledProgram;
use machine::{
    estimate_cache_compiled, AccessSink, CacheHierarchy, MachineConfig, StrideRun, TraceEntry,
};
use polybench::cloudsc::{erosion_optimized, full_model, CloudscSizes, CloudscVariant};

/// The run-compressed pipeline (what `machine::simulate_cache` does).
struct RunSink<'a>(&'a mut CacheHierarchy);

impl AccessSink for RunSink<'_> {
    fn access(&mut self, entry: TraceEntry) {
        self.0.access(entry.address);
    }

    fn run(&mut self, start: u64, stride: i64, count: u64, _is_write: bool) {
        self.0.access_run(start, stride, count);
    }

    fn run_group(&mut self, runs: &[StrideRun]) {
        self.0.access_run_group(runs);
    }
}

/// The per-access baseline pipeline (what
/// `machine::simulate_cache_per_access` does).
struct PerAccessSink<'a>(&'a mut CacheHierarchy);

impl AccessSink for PerAccessSink<'_> {
    fn access(&mut self, entry: TraceEntry) {
        self.0.access(entry.address);
    }

    fn run(&mut self, start: u64, stride: i64, count: u64, _is_write: bool) {
        self.0.access_run(start, stride, count);
    }
}

/// Runs measured per side; both take the minimum.
const REPS: usize = 3;

// ---------------------------------------------------------------------------
// Workloads (the ten BENCH_PR5.json rows, same names and sizes)
// ---------------------------------------------------------------------------

fn stencil_5tap(n: i64, t: i64, reversed: bool) -> Program {
    let sub = |tap: i64| {
        if reversed {
            format!("M - {} - j", 3 - tap)
        } else {
            format!("j + {}", 2 + tap)
        }
    };
    let taps = [-2i64, -1, 0, 1, 2]
        .iter()
        .map(|&k| format!("A[{}]", sub(k)))
        .collect::<Vec<_>>()
        .join(" + ");
    parse_program(&format!(
        "program stencil_5tap {{ param N = {n}; param M = {}; param T = {t};
           array A[M]; array B[M];
           for t in 0..T {{
             for j in 0..N {{ B[{}] = ({taps}) * 0.2; }}
           }} }}",
        n + 5,
        sub(0),
    ))
    .expect("5-tap stencil parses")
}

fn heat_1d(n: i64, t: i64) -> Program {
    parse_program(&format!(
        "program heat_1d {{ param N = {n}; param T = {t};
           array A[N]; array B[N];
           for t in 0..T {{
             for i in 1..N - 1 {{ B[i] = 0.25 * A[i - 1] + 0.5 * A[i] + 0.25 * A[i + 1]; }}
             for j in 1..N - 1 {{ A[j] = 0.25 * B[j - 1] + 0.5 * B[j] + 0.25 * B[j + 1]; }}
           }} }}"
    ))
    .expect("heat parses")
}

/// The ten `BENCH_PR5.json` workloads (same names, same paper/smoke sizes).
/// The `bool` marks membership in the unit-stride gate set the >= 50x
/// analytic gate runs over.
fn pr5_workloads(smoke: bool) -> Vec<(String, bool, Program)> {
    let heat_n = if smoke { 256 } else { 1200 };
    let heat_t = if smoke { 8 } else { 1000 };
    let ew_n = if smoke { 128 } else { 400 };
    let ew_t = if smoke { 8 } else { 1600 };
    let sweep_t = if smoke { 2 } else { 40 };
    let sweep_klev = if smoke { 5 } else { 137 };
    let sweep_nproma = if smoke { 16 } else { 128 };
    let saxpy_n = if smoke { 128 } else { 512 };
    let saxpy_t = if smoke { 8 } else { 2500 };
    let gemm_n = if smoke { 48 } else { 160 };
    let triad_n = if smoke { 20_000 } else { 2_000_000 };
    let col_n = if smoke { 64 } else { 1024 };
    let erosion_sizes = if smoke {
        CloudscSizes::mini()
    } else {
        CloudscSizes::paper()
    };
    let trace_sizes = CloudscSizes {
        nblocks: if smoke { 2 } else { 64 },
        ..erosion_sizes
    };
    let elementwise = parse_program(&format!(
        "program fused_elementwise {{ param N = {ew_n}; param T = {ew_t};
           array A[N]; array B[N]; array C[N]; array D[N]; array E[N];
           for t in 0..T {{
             for i in 0..N {{
               D[i] = A[i] * B[i] + C[i];
               E[i] = D[i] * 0.5 + A[i];
               C[i] = E[i] - B[i];
             }}
           }} }}"
    ))
    .expect("elementwise parses");
    let nproma_sweep = parse_program(&format!(
        "program cloudsc_nproma_sweep {{
           param NPROMA = {sweep_nproma}; param KLEV = {sweep_klev}; param T = {sweep_t};
           array za[NPROMA]; array zb[NPROMA]; array zc[NPROMA]; array zd[NPROMA];
           for t in 0..T {{ for jk in 0..KLEV {{ for jl in 0..NPROMA {{
             za[jl] = za[jl] * 0.9 + zb[jl] * 0.1;
             zc[jl] = za[jl] - zd[jl];
             zd[jl] += zc[jl] * 0.5;
           }} }} }} }}"
    ))
    .expect("nproma sweep parses");
    let saxpy = parse_program(&format!(
        "program saxpy_steps {{ param N = {saxpy_n}; param T = {saxpy_t};
           array A[N]; array B[N];
           for t in 0..T {{
             for i in 0..N {{ A[i] = A[i] * 1.5 + B[i]; }}
           }} }}"
    ))
    .expect("saxpy parses");
    let gemm = parse_program(&format!(
        "program gemm_ikj {{ param N = {gemm_n};
           array A[N][N]; array B[N][N]; array C[N][N];
           for i in 0..N {{ for k in 0..N {{ for j in 0..N {{
             C[i][j] += A[i][k] * B[k][j];
           }} }} }} }}"
    ))
    .expect("gemm parses");
    let triad = parse_program(&format!(
        "program stream_triad {{ param N = {triad_n};
           array A[N]; array B[N]; array C[N];
           for i in 0..N {{ A[i] = B[i] * 1.5 + C[i]; }} }}"
    ))
    .expect("triad parses");
    let col = parse_program(&format!(
        "program col_major {{ param N = {col_n}; array A[N][N];
           for j in 0..N {{ for i in 0..N {{ A[i][j] = A[i][j] * 0.5; }} }} }}"
    ))
    .expect("col parses");
    vec![
        ("fused_elementwise".to_string(), true, elementwise),
        ("cloudsc_nproma_sweep".to_string(), true, nproma_sweep),
        ("saxpy_steps".to_string(), true, saxpy),
        ("gemm_ikj".to_string(), false, gemm),
        ("heat_1d_steps".to_string(), false, heat_1d(heat_n, heat_t)),
        (
            "cloudsc_erosion_optimized".to_string(),
            false,
            erosion_optimized(erosion_sizes),
        ),
        (
            "cloudsc_full_fortran_multiblock".to_string(),
            false,
            full_model(CloudscVariant::Fortran, trace_sizes),
        ),
        (
            "cloudsc_full_daisy_multiblock".to_string(),
            false,
            daisy_full_model(trace_sizes),
        ),
        ("stream_triad".to_string(), false, triad),
        ("col_major".to_string(), false, col),
    ]
}

/// The stencil set of the >= 4x run-compression gate: bodies dominated by
/// staggered same-array taps, the exact shape lane merging targets.
fn stencil_workloads(smoke: bool) -> Vec<(String, Program)> {
    let n = if smoke { 256 } else { 1200 };
    let t = if smoke { 4 } else { 200 };
    vec![
        ("heat_1d_3tap".to_string(), heat_1d(n, t)),
        ("stencil_5tap".to_string(), stencil_5tap(n, t, false)),
        ("stencil_5tap_rev".to_string(), stencil_5tap(n, t, true)),
    ]
}

// ---------------------------------------------------------------------------
// Measurements
// ---------------------------------------------------------------------------

/// Streams the program through both cache pipelines, timing each
/// (min-of-REPS) and checking bit-identity. Returns
/// `(accesses, probes, per_access_seconds, run_seconds, stats_match)`.
fn measure_pipelines(
    compiled: &CompiledProgram,
    machine: &MachineConfig,
) -> (u64, u64, f64, f64, bool) {
    let mut per_access_seconds = f64::INFINITY;
    let mut base = CacheHierarchy::from_machine(machine);
    for _ in 0..REPS {
        let mut cache = CacheHierarchy::from_machine(machine);
        let start = Instant::now();
        compiled
            .stream(&mut PerAccessSink(&mut cache))
            .expect("baseline simulates");
        per_access_seconds = per_access_seconds.min(start.elapsed().as_secs_f64());
        base = cache;
    }
    let mut run_seconds = f64::INFINITY;
    let mut fast = CacheHierarchy::from_machine(machine);
    for _ in 0..REPS {
        let mut cache = CacheHierarchy::from_machine(machine);
        let start = Instant::now();
        compiled
            .stream(&mut RunSink(&mut cache))
            .expect("run-compressed simulates");
        run_seconds = run_seconds.min(start.elapsed().as_secs_f64());
        fast = cache;
    }
    let stats_match =
        fast.accesses() == base.accesses() && fast.l1() == base.l1() && fast.l2() == base.l2();
    (
        fast.accesses(),
        fast.probes(),
        per_access_seconds,
        run_seconds,
        stats_match,
    )
}

struct StencilRow {
    workload: String,
    accesses: u64,
    probes: u64,
    stats_match: bool,
}

impl StencilRow {
    fn compression(&self) -> f64 {
        self.accesses as f64 / self.probes.max(1) as f64
    }
}

struct AnalyticRow {
    workload: String,
    unit_stride: bool,
    exact_seconds: f64,
    analytic_seconds: f64,
    error_bound: u64,
    l1_delta: u64,
    l2_delta: u64,
    within_bound: bool,
}

impl AnalyticRow {
    fn speedup(&self) -> f64 {
        self.exact_seconds / self.analytic_seconds
    }
}

/// Times the exact run-compressed simulation against the analytic tier on
/// one pre-lowered program (symmetric protocol: lowering excluded from both
/// sides) and checks the error-bound contract.
fn measure_analytic(name: &str, unit_stride: bool, program: &Program) -> AnalyticRow {
    let machine = MachineConfig::xeon_e5_2680v3();
    let compiled = CompiledProgram::lower(program).expect("program lowers");
    let mut exact_seconds = f64::INFINITY;
    let mut exact = CacheHierarchy::from_machine(&machine);
    for _ in 0..REPS {
        let mut cache = CacheHierarchy::from_machine(&machine);
        let start = Instant::now();
        compiled
            .stream(&mut RunSink(&mut cache))
            .expect("exact simulates");
        exact_seconds = exact_seconds.min(start.elapsed().as_secs_f64());
        exact = cache;
    }
    let mut analytic_seconds = f64::INFINITY;
    let mut estimate = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let est = estimate_cache_compiled(&compiled, &machine).expect("analytic estimates");
        analytic_seconds = analytic_seconds.min(start.elapsed().as_secs_f64());
        estimate = Some(est);
    }
    let estimate = estimate.expect("REPS > 0");
    AnalyticRow {
        workload: name.to_string(),
        unit_stride,
        exact_seconds,
        analytic_seconds,
        error_bound: estimate.error_bound,
        l1_delta: estimate.l1.misses.abs_diff(exact.l1().misses),
        l2_delta: estimate.l2.misses.abs_diff(exact.l2().misses),
        within_bound: estimate.brackets(&exact.l1(), &exact.l2())
            && estimate.accesses == exact.accesses(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dataset_name = if smoke { "mini" } else { "paper" };
    let machine = MachineConfig::xeon_e5_2680v3();

    // -- 1. Stencil run-compression ------------------------------------
    let stencil_rows: Vec<StencilRow> = stencil_workloads(smoke)
        .iter()
        .map(|(name, p)| {
            let compiled = CompiledProgram::lower(p).expect("stencil lowers");
            let (accesses, probes, _, _, stats_match) = measure_pipelines(&compiled, &machine);
            StencilRow {
                workload: name.clone(),
                accesses,
                probes,
                stats_match,
            }
        })
        .collect();
    print_table(
        "stencil lane merging: simulated accesses per real L1 probe",
        &[
            "workload",
            "accesses",
            "probes",
            "compression",
            "stats match",
        ],
        &stencil_rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.accesses.to_string(),
                    r.probes.to_string(),
                    format!("{:.1}x", r.compression()),
                    r.stats_match.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let compressions: Vec<f64> = stencil_rows.iter().map(StencilRow::compression).collect();
    let stencil_geo_mean = geometric_mean(&compressions);
    let stencil_match = stencil_rows.iter().all(|r| r.stats_match);
    println!(
        "\ngeo-mean stencil run-compression: {stencil_geo_mean:.1}x (acceptance: >= 4x), \
         stats bit-identical: {stencil_match}"
    );

    // -- 2. + 3. Analytic tier vs exact simulation ---------------------
    let analytic_rows: Vec<AnalyticRow> = pr5_workloads(smoke)
        .iter()
        .map(|(name, unit, p)| measure_analytic(name, *unit, p))
        .collect();
    print_table(
        "analytic cache tier vs exact run-compressed simulation",
        &[
            "workload",
            "exact [s]",
            "analytic [s]",
            "speedup",
            "error bound",
            "L1 |delta|",
            "L2 |delta|",
            "within bound",
        ],
        &analytic_rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    format!("{:.5}", r.exact_seconds),
                    format!("{:.6}", r.analytic_seconds),
                    format!("{:.0}x", r.speedup()),
                    r.error_bound.to_string(),
                    r.l1_delta.to_string(),
                    r.l2_delta.to_string(),
                    r.within_bound.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let unit_speedups: Vec<f64> = analytic_rows
        .iter()
        .filter(|r| r.unit_stride)
        .map(AnalyticRow::speedup)
        .collect();
    let analytic_geo_mean = geometric_mean(&unit_speedups);
    let all_within_bound = analytic_rows.iter().all(|r| r.within_bound);
    println!(
        "\ngeo-mean analytic speedup on the unit-stride gate set: {analytic_geo_mean:.0}x \
         (acceptance: >= 50x), all estimates within their error bound: {all_within_bound}"
    );

    // -- 4. col_major super-line bailout -------------------------------
    let col = pr5_workloads(smoke)
        .into_iter()
        .find(|(name, _, _)| name == "col_major")
        .expect("col_major is a PR 5 workload")
        .2;
    let col_compiled = CompiledProgram::lower(&col).expect("col_major lowers");
    let (_, _, col_per_access, col_run, col_match) = measure_pipelines(&col_compiled, &machine);
    let col_speedup = col_per_access / col_run;
    println!(
        "\ncol_major run-group vs per-access: {col_speedup:.2}x (acceptance: >= 1.0x, was 0.96x), \
         stats bit-identical: {col_match}"
    );

    // -- JSON ----------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"generated_by\": \"cargo run --release -p bench --bin bench_pr10\",\n");
    json.push_str(&format!("  \"dataset\": \"{dataset_name}\",\n"));
    json.push_str("  \"stencil_compression\": [\n");
    for (i, r) in stencil_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"accesses\": {}, \"l1_probes\": {}, \
             \"compression\": {:.2}, \"stats_match_reference\": {}}}{}\n",
            r.workload,
            r.accesses,
            r.probes,
            r.compression(),
            r.stats_match,
            if i + 1 < stencil_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"stencil_geo_mean_compression\": {stencil_geo_mean:.2},\n"
    ));
    json.push_str("  \"analytic\": [\n");
    for (i, r) in analytic_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"in_unit_stride_gate\": {}, \
             \"exact_seconds\": {:.6}, \"analytic_seconds\": {:.6}, \"speedup\": {:.1}, \
             \"error_bound\": {}, \"l1_miss_delta\": {}, \"l2_miss_delta\": {}, \
             \"within_bound\": {}}}{}\n",
            r.workload,
            r.unit_stride,
            r.exact_seconds,
            r.analytic_seconds,
            r.speedup(),
            r.error_bound,
            r.l1_delta,
            r.l2_delta,
            r.within_bound,
            if i + 1 < analytic_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"analytic_unit_stride_geo_mean_speedup\": {analytic_geo_mean:.1},\n"
    ));
    json.push_str(&format!(
        "  \"all_estimates_within_error_bound\": {all_within_bound},\n"
    ));
    json.push_str(&format!("  \"col_major_speedup\": {col_speedup:.3},\n"));
    json.push_str(&format!(
        "  \"all_stats_match_reference\": {}\n",
        stencil_match && col_match
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_PR10.json", &json).expect("write BENCH_PR10.json");
    println!("wrote BENCH_PR10.json");

    // Acceptance gates. Bit-identity and the error-bound bracket must hold
    // at any size; the compression and timing gates only apply at paper
    // sizes (mini workloads are overhead-bound by design).
    let mut failed = false;
    if !stencil_match || !col_match {
        eprintln!("bench_pr10: CacheStats bit-identity acceptance FAILED");
        failed = true;
    }
    if !all_within_bound {
        eprintln!("bench_pr10: analytic error-bound acceptance FAILED");
        failed = true;
    }
    if !smoke && stencil_geo_mean < 4.0 {
        eprintln!(
            "bench_pr10: stencil run-compression acceptance FAILED ({stencil_geo_mean:.2}x < 4x)"
        );
        failed = true;
    }
    if !smoke && analytic_geo_mean < 50.0 {
        eprintln!("bench_pr10: analytic costing acceptance FAILED ({analytic_geo_mean:.1}x < 50x)");
        failed = true;
    }
    if !smoke && col_speedup < 1.0 {
        eprintln!("bench_pr10: col_major run-group acceptance FAILED ({col_speedup:.3}x < 1.0x)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
