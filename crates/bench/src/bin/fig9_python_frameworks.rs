//! Figure 9: the NPBench (Python) variants optimized by daisy (with and
//! without normalization) compared against the NumPy, Numba and DaCe
//! framework models. Runtimes are normalized to daisy (lower is better).

use baselines::python_framework_times;
use bench::{daisy_seeded_from_a_variants, paper_machine_model, print_table, ratio, THREADS};
use daisy::DaisyConfig;
use machine::MachineConfig;
use polybench::{all_benchmarks, Dataset};

fn main() {
    let dataset = Dataset::Large;
    let machine = MachineConfig::xeon_e5_2680v3();
    let _model = paper_machine_model(THREADS);
    // The same database-based auto-scheduler as in Figure 6, seeded from the
    // normalized C A variants, applied to the Python-frontend programs.
    let daisy_full = daisy_seeded_from_a_variants(dataset, DaisyConfig::default());
    let daisy_wo_norm = daisy_seeded_from_a_variants(
        dataset,
        DaisyConfig {
            normalize: false,
            ..DaisyConfig::default()
        },
    );

    let mut rows = Vec::new();
    for b in all_benchmarks() {
        let (py_prog, ops) = (b.py)(dataset);
        let daisy_t = daisy_full.schedule(&py_prog).seconds();
        let daisy_wo = daisy_wo_norm.schedule(&py_prog).seconds();
        let frameworks = python_framework_times(&py_prog, &ops, &machine, THREADS);
        rows.push(vec![
            b.name.to_string(),
            format!("{daisy_t:.4}"),
            ratio(Some(daisy_t), daisy_t),
            ratio(Some(daisy_wo), daisy_t),
            ratio(Some(frameworks.numpy), daisy_t),
            ratio(Some(frameworks.numba), daisy_t),
            ratio(Some(frameworks.dace), daisy_t),
        ]);
    }
    print_table(
        "Figure 9: Python-frontend variants (baseline = daisy, lower is better)",
        &[
            "benchmark",
            "daisy [s]",
            "daisy",
            "daisy w/o norm",
            "NumPy",
            "Numba",
            "DaCe",
        ],
        &rows,
    );
}
