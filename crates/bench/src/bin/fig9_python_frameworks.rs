//! Figure 9: the NPBench (Python) variants optimized by daisy (with and
//! without normalization) compared against the NumPy, Numba and DaCe
//! framework models. Runtimes are normalized to daisy (lower is better).
//!
//! Thin wrapper around [`bench::figures::fig9_python_frameworks`]; the
//! unified `reproduce` binary batches all figures (and adds warm-start
//! flags).

use bench::figures::{fig9_python_frameworks, ReproContext, ReproOptions};

fn main() {
    let mut ctx = ReproContext::new(ReproOptions::default());
    fig9_python_frameworks(&mut ctx);
}
