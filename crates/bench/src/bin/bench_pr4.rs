//! Compiled-execution and program-level-scheduling snapshot (PR 4).
//!
//! Two measurements back the PR's acceptance criteria:
//!
//! 1. **Interpreter throughput.** Paper-sized semantic checks run through
//!    the retained tree-walking interpreter (`machine::interp::reference`)
//!    and the compiled execution engine (`machine::exec`); outputs must be
//!    bit-identical and the compiled engine must sustain at least 10x the
//!    reference's statements/second.
//! 2. **Program-level scheduling.** `DaisyScheduler::schedule` on the
//!    multi-nest CLOUDSC proxies at scheduler parallelism 12 vs 1, cold and
//!    warm-started from a persisted tunestore snapshot — all four
//!    `ScheduleOutcome` sets must be bit-identical, and parallel scheduling
//!    must be faster on the wall clock.
//!
//! Writes `BENCH_PR4.json` into the current directory and prints the same
//! numbers as tables. Run with
//! `cargo run --release -p bench --bin bench_pr4` (add `--smoke` for tiny
//! problem sizes — the CI configuration).

use std::time::Instant;

use bench::{daisy_seeded_from_a_variants, geometric_mean, print_table};
use daisy::{DaisyScheduler, ScheduleOutcome};
use loop_ir::program::Program;
use machine::exec::CompiledProgram;
use machine::interp::{reference, ProgramData};
use polybench::cloudsc::{
    erosion_optimized, erosion_original, full_model, CloudscSizes, CloudscVariant,
};
use polybench::{all_benchmarks, Dataset};

// ---------------------------------------------------------------------------
// Part 1: interpreter throughput
// ---------------------------------------------------------------------------

struct InterpRow {
    workload: String,
    statements: u64,
    reference_seconds: f64,
    compiled_seconds: f64,
    identical: bool,
}

impl InterpRow {
    fn speedup(&self) -> f64 {
        self.reference_seconds / self.compiled_seconds
    }

    fn compiled_rate(&self) -> f64 {
        self.statements as f64 / self.compiled_seconds
    }
}

/// Runs measured by each side; both take the minimum, so the protocol is
/// symmetric — storage seeding sits outside both timers and only execution
/// is compared.
const INTERP_REPS: usize = 2;

fn measure_interp(name: &str, program: &Program) -> InterpRow {
    let mut reference_seconds = f64::INFINITY;
    let mut slow_data = ProgramData::seeded(program).expect("storage allocates");
    for _ in 0..INTERP_REPS {
        slow_data = ProgramData::seeded(program).expect("storage allocates");
        let mut slow = reference::Interpreter::new();
        let start = Instant::now();
        slow.run(program, &mut slow_data).expect("reference runs");
        reference_seconds = reference_seconds.min(start.elapsed().as_secs_f64());
    }

    // Lowering is outside the timer: the evaluation pipeline lowers once and
    // executes repeatedly (the reference has no lowering stage at all).
    let compiled = CompiledProgram::lower(program).expect("program lowers");
    let mut compiled_seconds = f64::INFINITY;
    let mut fast_data = ProgramData::seeded(program).expect("storage allocates");
    let mut statements = 0;
    for _ in 0..INTERP_REPS {
        fast_data = ProgramData::seeded(program).expect("storage allocates");
        let start = Instant::now();
        statements = compiled.execute(&mut fast_data).expect("compiled runs");
        compiled_seconds = compiled_seconds.min(start.elapsed().as_secs_f64());
    }

    InterpRow {
        workload: name.to_string(),
        statements,
        reference_seconds,
        compiled_seconds,
        identical: slow_data == fast_data,
    }
}

fn interp_workloads(smoke: bool) -> Vec<(String, Program)> {
    let sizes = if smoke {
        CloudscSizes::mini()
    } else {
        CloudscSizes::paper()
    };
    // The full proxy at paper NPROMA/KLEV with enough blocks to stress the
    // engine while keeping the *reference* interpreter's run affordable.
    let model_sizes = CloudscSizes {
        nblocks: if smoke { 2 } else { 8 },
        ..sizes
    };
    let dataset = if smoke {
        Dataset::Mini
    } else {
        Dataset::Medium
    };
    let mut workloads = vec![
        (
            "cloudsc_erosion_original".to_string(),
            erosion_original(sizes),
        ),
        (
            "cloudsc_erosion_optimized".to_string(),
            erosion_optimized(sizes),
        ),
        (
            "cloudsc_full_fortran".to_string(),
            full_model(CloudscVariant::Fortran, model_sizes),
        ),
        (
            "cloudsc_full_dace".to_string(),
            full_model(CloudscVariant::Dace, model_sizes),
        ),
    ];
    // A representative slice of PolyBench at semantic-check sizes.
    for b in all_benchmarks() {
        if ["2mm", "gemm", "jacobi-2d", "correlation"].contains(&b.name) {
            workloads.push((format!("{}_a", b.name), (b.a)(dataset)));
        }
    }
    workloads
}

// ---------------------------------------------------------------------------
// Part 2: program-level parallel scheduling
// ---------------------------------------------------------------------------

struct SchedResult {
    label: &'static str,
    parallelism: usize,
    seconds: f64,
    outcomes: Vec<ScheduleOutcome>,
}

fn schedule_all(
    scheduler: &DaisyScheduler,
    workloads: &[(String, Program)],
    reps: usize,
) -> (f64, Vec<ScheduleOutcome>) {
    let mut best = f64::INFINITY;
    let mut outcomes = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        outcomes = workloads
            .iter()
            .map(|(_, p)| scheduler.schedule(p))
            .collect();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, outcomes)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dataset_name = if smoke { "mini" } else { "paper" };

    // -- Part 1 --------------------------------------------------------
    let rows: Vec<InterpRow> = interp_workloads(smoke)
        .iter()
        .map(|(name, p)| measure_interp(name, p))
        .collect();
    print_table(
        "interpreter throughput (compiled machine::exec vs interp::reference)",
        &[
            "workload",
            "statements",
            "reference [s]",
            "compiled [s]",
            "compiled [Mst/s]",
            "speedup",
            "bit-identical",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.statements.to_string(),
                    format!("{:.4}", r.reference_seconds),
                    format!("{:.6}", r.compiled_seconds),
                    format!("{:.1}", r.compiled_rate() / 1e6),
                    format!("{:.1}x", r.speedup()),
                    r.identical.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let speedups: Vec<f64> = rows.iter().map(InterpRow::speedup).collect();
    let interp_geo_mean = geometric_mean(&speedups);
    let all_identical = rows.iter().all(|r| r.identical);
    println!(
        "\ngeo-mean interpreter speedup: {interp_geo_mean:.1}x (acceptance: >= 10x, bit-identical: {all_identical})"
    );

    // -- Part 2 --------------------------------------------------------
    let dataset = if smoke { Dataset::Mini } else { Dataset::Large };
    let sizes = if smoke {
        CloudscSizes::mini()
    } else {
        CloudscSizes::paper()
    };
    let sched_workloads: Vec<(String, Program)> = [
        CloudscVariant::Fortran,
        CloudscVariant::C,
        CloudscVariant::Dace,
    ]
    .into_iter()
    .map(|v| {
        let p = full_model(v, sizes);
        (p.name.clone(), p)
    })
    .collect();

    let dir = std::env::temp_dir().join(format!("bench-pr4-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = dir.join("daisy-full.tunedb");
    // Seed once; the parallelism knob never changes outcomes, so the cold
    // schedulers at every level share the same database.
    let seeded = daisy_seeded_from_a_variants(dataset, daisy::DaisyConfig::default());
    seeded.persist(&store).expect("store persists");

    let reps = if smoke { 3 } else { 5 };
    let mut results: Vec<SchedResult> = Vec::new();
    for parallelism in [1usize, 12] {
        // Cold: the seeded database under this parallelism.
        let mut cold = seeded.clone();
        cold.set_parallelism(parallelism);
        let (seconds, outcomes) = schedule_all(&cold, &sched_workloads, reps);
        results.push(SchedResult {
            label: "cold",
            parallelism,
            seconds,
            outcomes,
        });
        // Warm: started from the persisted snapshot.
        let mut warm =
            DaisyScheduler::new(daisy::DaisyConfig::default().with_parallelism(parallelism));
        warm.warm_start(&store).expect("warm start");
        let (seconds, outcomes) = schedule_all(&warm, &sched_workloads, reps);
        results.push(SchedResult {
            label: "warm",
            parallelism,
            seconds,
            outcomes,
        });
    }
    std::fs::remove_dir_all(&dir).ok();

    let reference_outcomes = &results[0].outcomes;
    let sched_identical = results.iter().all(|r| &r.outcomes == reference_outcomes);
    let seconds_at = |label: &str, parallelism: usize| {
        results
            .iter()
            .find(|r| r.label == label && r.parallelism == parallelism)
            .map(|r| r.seconds)
            .expect("measured")
    };
    let sched_speedup = seconds_at("cold", 1) / seconds_at("cold", 12);
    let warm_speedup = seconds_at("warm", 1) / seconds_at("warm", 12);

    print_table(
        "program-level parallel scheduling (multi-nest CLOUDSC, 3 proxies per run)",
        &["mode", "parallelism", "schedule [s]", "speedup vs par=1"],
        &results
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    r.parallelism.to_string(),
                    format!("{:.4}", r.seconds),
                    format!("{:.2}x", seconds_at(r.label, 1) / r.seconds),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\ncold/warm x sequential/parallel ScheduleOutcomes bit-identical: {sched_identical}");
    println!(
        "schedule wall-clock speedup at parallelism 12 vs 1: cold {sched_speedup:.2}x, warm {warm_speedup:.2}x ({cores} cores available)"
    );

    // -- JSON ----------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"generated_by\": \"cargo run --release -p bench --bin bench_pr4\",\n");
    json.push_str(&format!("  \"dataset\": \"{dataset_name}\",\n"));
    json.push_str("  \"interpreter\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"statements\": {}, \"reference_seconds\": {:.6}, \
             \"compiled_seconds\": {:.6}, \"compiled_statements_per_second\": {:.0}, \
             \"speedup\": {:.2}, \"bit_identical\": {}}}{}\n",
            r.workload,
            r.statements,
            r.reference_seconds,
            r.compiled_seconds,
            r.compiled_rate(),
            r.speedup(),
            r.identical,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"interpreter_geo_mean_speedup\": {interp_geo_mean:.2},\n"
    ));
    json.push_str(&format!(
        "  \"interpreter_bit_identical\": {all_identical},\n"
    ));
    json.push_str("  \"scheduling\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"parallelism\": {}, \"seconds\": {:.6}}}{}\n",
            r.label,
            r.parallelism,
            r.seconds,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"schedule_speedup_cold\": {sched_speedup:.2},\n  \"schedule_speedup_warm\": {warm_speedup:.2},\n"
    ));
    json.push_str(&format!("  \"cores_available\": {cores},\n"));
    json.push_str(&format!(
        "  \"schedule_outcomes_bit_identical\": {sched_identical}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_PR4.json", &json).expect("write BENCH_PR4.json");
    println!("wrote BENCH_PR4.json");

    // Acceptance gates. Bit-identity must hold everywhere. The speedup
    // gates only apply at paper sizes (mini workloads are overhead-bound by
    // design), and the thread fan-out gate additionally needs a machine with
    // more than one core to have anything to fan out onto.
    let mut failed = false;
    if !all_identical || !sched_identical {
        eprintln!("bench_pr4: bit-identity acceptance FAILED");
        failed = true;
    }
    if !smoke && interp_geo_mean < 10.0 {
        eprintln!("bench_pr4: interpreter speedup acceptance FAILED ({interp_geo_mean:.2}x < 10x)");
        failed = true;
    }
    if !smoke && cores > 1 && sched_speedup <= 1.0 {
        eprintln!("bench_pr4: scheduling speedup acceptance FAILED ({sched_speedup:.2}x)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
