//! Cold-seed vs warm-start snapshot of the persistent tuning store (PR 3):
//! how long seeding the transfer-tuning database from the A variants takes,
//! how long loading the persisted `tunestore` snapshot takes instead, and
//! proof that the warm-started scheduler is bit-identical to the cold one
//! on the Table 1 CLOUDSC workloads and all PolyBench A/B variants. Writes
//! `BENCH_PR3.json` into the current directory and prints the same numbers
//! as a table.
//!
//! Run with `cargo run --release -p bench --bin bench_pr3` (add `--smoke`
//! for tiny problem sizes).

use std::time::Instant;

use bench::figures::{verify_scheduler_against_store, ReproContext, ReproOptions, SchedulerKind};
use bench::{daisy_seeded_from_a_variants, print_table};
use daisy::DaisyScheduler;

struct Row {
    config: &'static str,
    entries: usize,
    store_bytes: u64,
    cold_seed_seconds: f64,
    warm_start_seconds: f64,
    outcomes_checked: usize,
    identical: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.cold_seed_seconds / self.warm_start_seconds
    }
}

fn measure(kind: SchedulerKind, options: &ReproOptions) -> Row {
    let ctx = ReproContext::new(options.clone());
    let path = ctx.store_path(kind).expect("options carry a store dir");

    let start = Instant::now();
    let cold = daisy_seeded_from_a_variants(ctx.dataset(), kind.config());
    let cold_seed_seconds = start.elapsed().as_secs_f64();
    cold.persist(&path).expect("persist the seeded database");
    let store_bytes = std::fs::metadata(&path).expect("store file exists").len();

    let start = Instant::now();
    let mut warm = DaisyScheduler::new(kind.config());
    let entries = warm.warm_start(&path).expect("warm start from the store");
    let warm_start_seconds = start.elapsed().as_secs_f64();
    drop(warm);

    // The acceptance check — bit-identical databases and ScheduleOutcomes
    // on the Table 1 CLOUDSC workloads and all PolyBench A/B variants — is
    // the same one `reproduce --verify` runs, fed the scheduler whose
    // seeding was just timed so seeding is not paid twice.
    let report =
        verify_scheduler_against_store(&cold, options, kind).expect("store was just persisted");

    Row {
        config: kind.stem(),
        entries,
        store_bytes,
        cold_seed_seconds,
        warm_start_seconds,
        outcomes_checked: report.outcomes_checked,
        identical: report.identical,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dir = std::env::temp_dir().join(format!("bench-pr3-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let options = ReproOptions {
        smoke,
        store: Some(dir.clone()),
        ..ReproOptions::default()
    };

    let rows: Vec<Row> = SchedulerKind::ALL
        .iter()
        .map(|&kind| measure(kind, &options))
        .collect();
    std::fs::remove_dir_all(&dir).ok();

    print_table(
        "warm_start (seeding cost eliminated by the persistent store)",
        &[
            "config",
            "entries",
            "store [B]",
            "cold seed [s]",
            "warm start [s]",
            "speedup",
            "bit-identical",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.config.to_string(),
                    r.entries.to_string(),
                    r.store_bytes.to_string(),
                    format!("{:.4}", r.cold_seed_seconds),
                    format!("{:.6}", r.warm_start_seconds),
                    format!("{:.0}x", r.speedup()),
                    r.identical.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let all_identical = rows.iter().all(|r| r.identical);
    println!(
        "\nacceptance: cold/warm ScheduleOutcomes bit-identical on the Table 1 + A/B workloads: {all_identical}"
    );

    let dataset = if smoke { "mini" } else { "large" };
    let mut json = String::from("{\n");
    json.push_str("  \"generated_by\": \"cargo run --release -p bench --bin bench_pr3\",\n");
    json.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    json.push_str("  \"warm_start\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"entries\": {}, \"store_bytes\": {}, \
             \"cold_seed_seconds\": {:.4}, \"warm_start_seconds\": {:.6}, \
             \"seeding_speedup\": {:.1}, \"outcomes_checked\": {}, \
             \"cold_warm_bit_identical\": {}}}{}\n",
            r.config,
            r.entries,
            r.store_bytes,
            r.cold_seed_seconds,
            r.warm_start_seconds,
            r.speedup(),
            r.outcomes_checked,
            r.identical,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_PR3.json", &json).expect("write BENCH_PR3.json");
    println!("wrote BENCH_PR3.json");

    if !all_identical {
        std::process::exit(1);
    }
}
