//! Figure 12: strong scaling (fixed workload, 1-12 threads) and weak scaling
//! (workload grows with the thread count) of the CLOUDSC proxy for the
//! Fortran, C, DaCe and daisy versions.
//!
//! Thin wrapper around [`bench::figures::fig12_cloudsc_scaling`]; the
//! unified `reproduce` binary batches all figures behind one entry point.

use bench::figures::{fig12_cloudsc_scaling, ReproContext, ReproOptions, ScalingMode};

fn main() {
    let mode = match std::env::args().nth(1).as_deref() {
        Some("strong") => ScalingMode::Strong,
        Some("weak") => ScalingMode::Weak,
        _ => ScalingMode::Both,
    };
    let ctx = ReproContext::new(ReproOptions::default());
    fig12_cloudsc_scaling(&ctx, mode);
}
