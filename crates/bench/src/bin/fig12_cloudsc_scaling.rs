//! Figure 12: strong scaling (fixed workload, 1-12 threads) and weak scaling
//! (workload grows with the thread count) of the CLOUDSC proxy for the
//! Fortran, C, DaCe and daisy versions.

use bench::{paper_machine_model, print_table};
use normalize::Normalizer;
use polybench::cloudsc::{full_model, CloudscSizes, CloudscVariant};
use transforms::fuse_producer_consumers;

fn versions(sizes: CloudscSizes) -> Vec<(&'static str, loop_ir::Program)> {
    let fortran = full_model(CloudscVariant::Fortran, sizes);
    let c = full_model(CloudscVariant::C, sizes);
    let dace = full_model(CloudscVariant::Dace, sizes);
    let daisy_prog = {
        let normalized = Normalizer::new().run(&dace).expect("normalizes").program;
        fuse_producer_consumers(&normalized)
    };
    vec![
        ("Fortran", fortran),
        ("C", c),
        ("DaCe", dace),
        ("daisy", daisy_prog),
    ]
}

fn strong_scaling() {
    let sizes = CloudscSizes::paper();
    let programs = versions(sizes);
    let mut rows = Vec::new();
    for threads in [1usize, 2, 4, 6, 8, 10, 12] {
        let model = paper_machine_model(threads);
        let times: Vec<f64> = programs
            .iter()
            .map(|(_, p)| model.estimate(p).seconds)
            .collect();
        let gain = 100.0 * (times[0] - times[3]) / times[0];
        rows.push(vec![
            threads.to_string(),
            format!("{:.3}", times[0]),
            format!("{:.3}", times[1]),
            format!("{:.3}", times[2]),
            format!("{:.3}", times[3]),
            format!("{gain:.2}%"),
        ]);
    }
    print_table(
        "Figure 12a: strong scaling (seconds per run)",
        &[
            "threads",
            "Fortran",
            "C",
            "DaCe",
            "daisy",
            "daisy vs Fortran",
        ],
        &rows,
    );
}

fn weak_scaling() {
    let mut rows = Vec::new();
    for (columns, threads) in [(65536i64, 1usize), (131072, 2), (262144, 4), (524288, 8)] {
        let sizes = CloudscSizes::with_columns(columns);
        let programs = versions(sizes);
        let model = paper_machine_model(threads);
        let times: Vec<f64> = programs
            .iter()
            .map(|(_, p)| model.estimate(p).seconds)
            .collect();
        let gain = 100.0 * (times[0] - times[3]) / times[0];
        rows.push(vec![
            format!("{columns} / {threads}"),
            format!("{:.3}", times[0]),
            format!("{:.3}", times[1]),
            format!("{:.3}", times[2]),
            format!("{:.3}", times[3]),
            format!("{gain:.2}%"),
        ]);
    }
    print_table(
        "Figure 12b: weak scaling (seconds per run)",
        &[
            "columns/threads",
            "Fortran",
            "C",
            "DaCe",
            "daisy",
            "daisy vs Fortran",
        ],
        &rows,
    );
}

fn main() {
    let mode = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "both".to_string());
    match mode.as_str() {
        "strong" => strong_scaling(),
        "weak" => weak_scaling(),
        _ => {
            strong_scaling();
            weak_scaling();
        }
    }
}
