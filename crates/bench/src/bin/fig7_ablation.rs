//! Figure 7: ablation study — clang alone, transfer tuning without
//! normalization (Opt), normalization without transfer tuning (Norm), and
//! the full pipeline (Norm + Opt), on the A and B variants of every
//! benchmark. Runtimes are normalized to clang on the A variant.
//!
//! Thin wrapper around [`bench::figures::fig7_ablation`]; the unified
//! `reproduce` binary batches all figures (and adds warm-start flags).

use bench::figures::{fig7_ablation, ReproContext, ReproOptions};

fn main() {
    let mut ctx = ReproContext::new(ReproOptions::default());
    fig7_ablation(&mut ctx);
}
