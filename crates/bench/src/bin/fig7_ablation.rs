//! Figure 7: ablation study — clang alone, transfer tuning without
//! normalization (Opt), normalization without transfer tuning (Norm), and
//! the full pipeline (Norm + Opt), on the A and B variants of every
//! benchmark. Runtimes are normalized to clang on the A variant.

use baselines::clang_schedule;
use bench::{daisy_seeded_from_a_variants, paper_machine_model, print_table, ratio};
use daisy::DaisyConfig;
use normalize::Normalizer;
use polybench::{all_benchmarks, Dataset};

fn main() {
    let dataset = Dataset::Large;
    let sequential = paper_machine_model(1);

    // Full pipeline and the "Opt only" (no normalization) scheduler.
    let full = daisy_seeded_from_a_variants(dataset, DaisyConfig::default());
    let opt_only = daisy_seeded_from_a_variants(
        dataset,
        DaisyConfig {
            normalize: false,
            ..DaisyConfig::default()
        },
    );

    let mut rows = Vec::new();
    for b in all_benchmarks() {
        let a_prog = (b.a)(dataset);
        let b_prog = (b.b)(dataset);
        let clang_a = sequential.estimate(&clang_schedule(&a_prog)).seconds;
        let clang_b = sequential.estimate(&clang_schedule(&b_prog)).seconds;
        let norm_only = |p: &loop_ir::Program| {
            let normalized = Normalizer::new().run(p).expect("normalizes").program;
            sequential.estimate(&clang_schedule(&normalized)).seconds
        };
        let row = vec![
            b.name.to_string(),
            format!("{clang_a:.4}"),
            ratio(Some(clang_a), clang_a),
            ratio(Some(opt_only.schedule(&a_prog).seconds()), clang_a),
            ratio(Some(norm_only(&a_prog)), clang_a),
            ratio(Some(full.schedule(&a_prog).seconds()), clang_a),
            ratio(Some(clang_b), clang_a),
            ratio(Some(opt_only.schedule(&b_prog).seconds()), clang_a),
            ratio(Some(norm_only(&b_prog)), clang_a),
            ratio(Some(full.schedule(&b_prog).seconds()), clang_a),
        ];
        rows.push(row);
    }
    print_table(
        "Figure 7: ablation (baseline = clang A, lower is better)",
        &[
            "benchmark",
            "clang A [s]",
            "clang A",
            "Opt A",
            "Norm A",
            "Norm+Opt A",
            "clang B",
            "Opt B",
            "Norm B",
            "Norm+Opt B",
        ],
        &rows,
    );
    println!(
        "\nBoth normalization and transfer tuning are required for consistently low runtimes;"
    );
    println!("without normalization the database recipes fail to apply to the B variants.");
}
