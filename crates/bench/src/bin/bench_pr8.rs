//! Telemetry overhead snapshot (PR 8).
//!
//! The scheduling stack is instrumented with `telemetry` spans and counters
//! (`daisy`, `machine`, `tunestore`, `fuzz`), and the instrumentation must
//! stay effectively free: hooks sit at simulation/phase *boundaries*, not in
//! per-access loops, and the disabled fast path is a single relaxed atomic
//! load. Two acceptance criteria, measured on the BENCH_PR5 unit-stride
//! cache workloads (the hottest instrumented code in the repo):
//!
//! 1. **Disabled overhead.** With no recorder installed, the instrumented
//!    pipeline must run within noise of itself — the per-hook disabled cost
//!    (measured by a primitive microbenchmark) times the hooks a simulation
//!    executes must account for < 2% of the simulation's wall clock.
//! 2. **Enabled tripwire.** With a live [`telemetry::AggregatingRecorder`]
//!    installed, the instrumented-vs-disabled wall-clock ratio must stay
//!    < 1.5x. A live recorder pays a lock per event, so a few percent on a
//!    millisecond simulation is expected; what the tripwire catches is a
//!    hook accidentally moving into a per-access loop, which shows up as
//!    2-10x, not percent.
//!
//! Writes `BENCH_PR8.json` into the current directory and prints the same
//! numbers as tables. Run with
//! `cargo run --release -p bench --bin bench_pr8` (add `--smoke` for tiny
//! problem sizes — the CI configuration, which runs the full protocol but
//! skips the gates: mini workloads are jitter-bound by design).

use std::sync::Arc;
use std::time::Instant;

use bench::print_table;
use loop_ir::parser::parse_program;
use loop_ir::program::Program;
use machine::{simulate_cache, MachineConfig};

/// Runs measured per side; both sides take the minimum.
const REPS: usize = 5;

/// Iterations of the primitive microbenchmark loops.
const PRIMITIVE_ITERS: u64 = 1_000_000;

/// Counts every telemetry event a run emits, so the disabled-path cost can
/// be charged per *actual* hook execution instead of a guessed constant.
/// The count is pessimistic for the disabled path: with no recorder, the
/// per-simulation counter block behind `telemetry::enabled()` collapses to
/// one atomic load, but every event it would have emitted is still charged.
#[derive(Default)]
struct HookCountingRecorder(std::sync::atomic::AtomicU64);

impl HookCountingRecorder {
    fn bump(&self) {
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn count(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl telemetry::Recorder for HookCountingRecorder {
    fn counter_add(&self, _name: &'static str, _delta: u64) {
        self.bump();
    }

    fn histogram_record(&self, _name: &'static str, _value: u64) {
        self.bump();
    }

    fn span_enter(&self, _path: &str) {
        self.bump();
    }

    fn span_exit(&self, _path: &str, _nanos: u64) {
        self.bump();
    }
}

struct OverheadRow {
    workload: String,
    /// Telemetry events one simulation emits (exact, via [`HookCountingRecorder`]).
    hooks: u64,
    disabled_seconds: f64,
    enabled_seconds: f64,
    /// Estimated fraction of the disabled run spent in disabled-path hooks.
    disabled_hook_fraction: f64,
}

impl OverheadRow {
    fn enabled_ratio(&self) -> f64 {
        self.enabled_seconds / self.disabled_seconds
    }
}

/// Best-of-REPS wall clock of `simulate_cache` on `program`.
fn best_simulation_seconds(program: &Program, machine: &MachineConfig) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let cache = simulate_cache(program, machine).expect("workload simulates");
        best = best.min(start.elapsed().as_secs_f64());
        // Keep the result observable so the simulation cannot be elided.
        assert!(cache.accesses() > 0);
    }
    best
}

fn measure(name: &str, program: &Program, disabled_ns_per_hook: f64) -> OverheadRow {
    let machine = MachineConfig::xeon_e5_2680v3();
    assert!(
        !telemetry::enabled(),
        "bench_pr8 must start with no recorder installed"
    );

    // One untimed counting run pins down exactly how many telemetry events
    // this workload emits per simulation.
    let counting = Arc::new(HookCountingRecorder::default());
    telemetry::install(counting.clone());
    simulate_cache(program, &machine).expect("workload simulates");
    telemetry::uninstall();
    let hooks = counting.count();

    let disabled_seconds = best_simulation_seconds(program, &machine);

    telemetry::install(Arc::new(telemetry::AggregatingRecorder::default()));
    let enabled_seconds = best_simulation_seconds(program, &machine);
    telemetry::uninstall();

    let disabled_hook_fraction = (hooks as f64 * disabled_ns_per_hook * 1e-9) / disabled_seconds;
    OverheadRow {
        workload: name.to_string(),
        hooks,
        disabled_seconds,
        enabled_seconds,
        disabled_hook_fraction,
    }
}

/// Per-call cost of `telemetry::counter` with no recorder installed — the
/// disabled fast path (one relaxed atomic load and an early return).
fn disabled_counter_ns() -> f64 {
    let start = Instant::now();
    for i in 0..PRIMITIVE_ITERS {
        telemetry::counter("bench_pr8.disabled_probe", i & 1);
    }
    start.elapsed().as_secs_f64() * 1e9 / PRIMITIVE_ITERS as f64
}

/// Per-call cost of creating and dropping a `telemetry::span` guard with no
/// recorder installed.
fn disabled_span_ns() -> f64 {
    let start = Instant::now();
    for _ in 0..PRIMITIVE_ITERS {
        let _span = telemetry::span("bench_pr8.disabled_span");
    }
    start.elapsed().as_secs_f64() * 1e9 / PRIMITIVE_ITERS as f64
}

/// The BENCH_PR5 unit-stride cache workloads: fused multi-statement bodies
/// sweeping cache-resident rows, the shape run compression was built for
/// and the hottest instrumented loops in the repo.
fn workloads(smoke: bool) -> Vec<(String, Program)> {
    let ew_n = if smoke { 128 } else { 400 };
    let ew_t = if smoke { 8 } else { 1600 };
    let sweep_t = if smoke { 2 } else { 40 };
    let sweep_klev = if smoke { 5 } else { 137 };
    let sweep_nproma = if smoke { 16 } else { 128 };
    let saxpy_n = if smoke { 128 } else { 512 };
    let saxpy_t = if smoke { 8 } else { 2500 };
    let elementwise = parse_program(&format!(
        "program fused_elementwise {{ param N = {ew_n}; param T = {ew_t};
           array A[N]; array B[N]; array C[N]; array D[N]; array E[N];
           for t in 0..T {{
             for i in 0..N {{
               D[i] = A[i] * B[i] + C[i];
               E[i] = D[i] * 0.5 + A[i];
               C[i] = E[i] - B[i];
             }}
           }} }}"
    ))
    .expect("elementwise parses");
    let nproma_sweep = parse_program(&format!(
        "program cloudsc_nproma_sweep {{
           param NPROMA = {sweep_nproma}; param KLEV = {sweep_klev}; param T = {sweep_t};
           array za[NPROMA]; array zb[NPROMA]; array zc[NPROMA]; array zd[NPROMA];
           for t in 0..T {{ for jk in 0..KLEV {{ for jl in 0..NPROMA {{
             za[jl] = za[jl] * 0.9 + zb[jl] * 0.1;
             zc[jl] = za[jl] - zd[jl];
             zd[jl] += zc[jl] * 0.5;
           }} }} }} }}"
    ))
    .expect("nproma sweep parses");
    let saxpy = parse_program(&format!(
        "program saxpy_steps {{ param N = {saxpy_n}; param T = {saxpy_t};
           array A[N]; array B[N];
           for t in 0..T {{
             for i in 0..N {{ A[i] = A[i] * 1.5 + B[i]; }}
           }} }}"
    ))
    .expect("saxpy parses");
    vec![
        ("fused_elementwise".to_string(), elementwise),
        ("cloudsc_nproma_sweep".to_string(), nproma_sweep),
        ("saxpy_steps".to_string(), saxpy),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dataset_name = if smoke { "mini" } else { "paper" };

    // Primitive costs first — the disabled fast path itself.
    let counter_ns = disabled_counter_ns();
    let span_ns = disabled_span_ns();
    let hook_ns = counter_ns.max(span_ns);

    let rows: Vec<OverheadRow> = workloads(smoke)
        .iter()
        .map(|(name, p)| measure(name, p, hook_ns))
        .collect();

    print_table(
        "telemetry overhead: instrumented cache simulation, disabled vs enabled recorder",
        &[
            "workload",
            "hooks/sim",
            "disabled [s]",
            "enabled [s]",
            "enabled/disabled",
            "disabled hook share",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.hooks.to_string(),
                    format!("{:.4}", r.disabled_seconds),
                    format!("{:.4}", r.enabled_seconds),
                    format!("{:.3}x", r.enabled_ratio()),
                    format!("{:.4}%", r.disabled_hook_fraction * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let max_enabled_ratio = rows
        .iter()
        .map(OverheadRow::enabled_ratio)
        .fold(0.0f64, f64::max);
    let max_disabled_fraction = rows
        .iter()
        .map(|r| r.disabled_hook_fraction)
        .fold(0.0f64, f64::max);
    println!(
        "\ndisabled primitives: counter {counter_ns:.1}ns/call, span guard {span_ns:.1}ns/call"
    );
    println!(
        "worst disabled hook share: {:.4}% of simulation wall clock (acceptance: < 2%)",
        max_disabled_fraction * 100.0
    );
    println!("worst enabled/disabled ratio: {max_enabled_ratio:.3}x (tripwire: < 1.5x)");

    // -- JSON ----------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"generated_by\": \"cargo run --release -p bench --bin bench_pr8\",\n");
    json.push_str(&format!("  \"dataset\": \"{dataset_name}\",\n"));
    json.push_str(&format!(
        "  \"disabled_counter_ns_per_call\": {counter_ns:.3},\n"
    ));
    json.push_str(&format!("  \"disabled_span_ns_per_call\": {span_ns:.3},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"hooks_per_simulation\": {}, \
             \"disabled_seconds\": {:.6}, \
             \"enabled_seconds\": {:.6}, \"enabled_over_disabled\": {:.4}, \
             \"disabled_hook_fraction\": {:.6}}}{}\n",
            r.workload,
            r.hooks,
            r.disabled_seconds,
            r.enabled_seconds,
            r.enabled_ratio(),
            r.disabled_hook_fraction,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"max_enabled_over_disabled\": {max_enabled_ratio:.4},\n"
    ));
    json.push_str(&format!(
        "  \"max_disabled_hook_fraction\": {max_disabled_fraction:.6},\n"
    ));
    json.push_str(&format!(
        "  \"disabled_overhead_under_2_percent\": {}\n",
        max_disabled_fraction < 0.02
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_PR8.json", &json).expect("write BENCH_PR8.json");
    println!("wrote BENCH_PR8.json");

    // Acceptance gates, at paper sizes only: the mini workloads finish in
    // microseconds and both ratios are jitter-bound there (the smoke run
    // still proves the protocol itself works end to end).
    let mut failed = false;
    if !smoke && max_disabled_fraction >= 0.02 {
        eprintln!(
            "bench_pr8: disabled-telemetry overhead acceptance FAILED \
             ({:.4}% >= 2%)",
            max_disabled_fraction * 100.0
        );
        failed = true;
    }
    if !smoke && max_enabled_ratio >= 1.5 {
        eprintln!(
            "bench_pr8: enabled-recorder tripwire FAILED \
             ({max_enabled_ratio:.3}x >= 1.5x — is a hook inside a per-access loop?)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
