//! Run-compressed cache-simulation snapshot (PR 5).
//!
//! Measures the run-level simulation pipeline ([`machine::simulate_cache`]:
//! `CompiledProgram::stream` emitting lockstep `StrideRun` groups into
//! `CacheHierarchy::access_run_group`) against the retained PR 1 pipeline
//! ([`machine::simulate_cache_per_access`]: one simulated access per trace
//! entry of an interleaved innermost loop). Two acceptance criteria:
//!
//! 1. **Throughput.** On unit-stride workloads the run-compressed pipeline
//!    must sustain at least 5x the per-access baseline's accesses/second,
//!    with `CacheStats` bit-identical on *every* workload (unit-stride or
//!    not — the fast path must never change counters).
//! 2. **Scale.** The multi-block full-model CLOUDSC entries (the Fig. 11/12
//!    schedule points) must stream at least 10M accesses per schedule point
//!    and simulate each in well under a second.
//!
//! Writes `BENCH_PR5.json` into the current directory and prints the same
//! numbers as tables. Run with
//! `cargo run --release -p bench --bin bench_pr5` (add `--smoke` for tiny
//! problem sizes — the CI configuration, which checks bit-identity but not
//! the throughput gates).

use std::time::Instant;

use bench::figures::daisy_full_model;
use bench::{geometric_mean, print_table};
use loop_ir::parser::parse_program;
use loop_ir::program::Program;
use machine::exec::CompiledProgram;
use machine::{AccessSink, CacheHierarchy, MachineConfig, StrideRun, TraceEntry};
use polybench::cloudsc::{erosion_optimized, full_model, CloudscSizes, CloudscVariant};

/// The run-compressed pipeline: whole lockstep run groups reach the
/// simulator's phase-based fast path (what `machine::simulate_cache` does).
struct RunSink<'a>(&'a mut CacheHierarchy);

impl AccessSink for RunSink<'_> {
    fn access(&mut self, entry: TraceEntry) {
        self.0.access(entry.address);
    }

    fn run(&mut self, start: u64, stride: i64, count: u64, _is_write: bool) {
        self.0.access_run(start, stride, count);
    }

    fn run_group(&mut self, runs: &[StrideRun]) {
        self.0.access_run_group(runs);
    }
}

/// The PR 1 baseline pipeline: single-access runs still collapse, but
/// interleaved groups expand to one simulated access per trace entry (what
/// `machine::simulate_cache_per_access` does).
struct PerAccessSink<'a>(&'a mut CacheHierarchy);

impl AccessSink for PerAccessSink<'_> {
    fn access(&mut self, entry: TraceEntry) {
        self.0.access(entry.address);
    }

    fn run(&mut self, start: u64, stride: i64, count: u64, _is_write: bool) {
        self.0.access_run(start, stride, count);
    }
}

struct CacheRow {
    workload: String,
    /// Counts toward the >=5x unit-stride gate (kernels whose traces are
    /// dominated by within-line repeats; see [`workloads`]).
    unit_stride: bool,
    /// A Fig. 11/12 schedule point (the >=10M accesses entries).
    schedule_point: bool,
    accesses: u64,
    per_access_seconds: f64,
    run_seconds: f64,
    stats_match: bool,
}

impl CacheRow {
    fn speedup(&self) -> f64 {
        self.per_access_seconds / self.run_seconds
    }

    fn run_rate(&self) -> f64 {
        self.accesses as f64 / self.run_seconds
    }
}

/// Runs measured per side; both take the minimum.
const REPS: usize = 3;

fn measure(name: &str, unit_stride: bool, schedule_point: bool, program: &Program) -> CacheRow {
    let machine = MachineConfig::xeon_e5_2680v3();
    // Symmetric protocol: the program is lowered once (the evaluation
    // pipeline lowers once and simulates many schedule points), then both
    // pipelines stream the identical trace REPS times into a fresh
    // hierarchy, taking the minimum.
    let compiled = CompiledProgram::lower(program).expect("program lowers");
    let mut per_access_seconds = f64::INFINITY;
    let mut base = CacheHierarchy::from_machine(&machine);
    for _ in 0..REPS {
        let mut cache = CacheHierarchy::from_machine(&machine);
        let start = Instant::now();
        compiled
            .stream(&mut PerAccessSink(&mut cache))
            .expect("baseline simulates");
        per_access_seconds = per_access_seconds.min(start.elapsed().as_secs_f64());
        base = cache;
    }
    let mut run_seconds = f64::INFINITY;
    let mut fast = CacheHierarchy::from_machine(&machine);
    for _ in 0..REPS {
        let mut cache = CacheHierarchy::from_machine(&machine);
        let start = Instant::now();
        compiled
            .stream(&mut RunSink(&mut cache))
            .expect("run-compressed simulates");
        run_seconds = run_seconds.min(start.elapsed().as_secs_f64());
        fast = cache;
    }
    let stats_match =
        fast.accesses() == base.accesses() && fast.l1() == base.l1() && fast.l2() == base.l2();
    CacheRow {
        workload: name.to_string(),
        unit_stride,
        schedule_point,
        accesses: fast.accesses(),
        per_access_seconds,
        run_seconds,
        stats_match,
    }
}

/// The measured workloads. The `>=5x` gate runs over the unit-stride
/// kernels whose traces within-line repeats dominate: fused multi-statement
/// bodies sweeping cache-resident rows — exactly the shape normalization +
/// producer-consumer fusion produce for CLOUDSC's NPROMA loops, which is
/// what the run compression was built for. Workloads whose traces are
/// bound by per-line *misses* (DRAM streaming, L1-overflowing operands
/// like GEMM's B panel, transposed super-line walks, the full multi-block
/// model — a miss must be simulated exactly once in either pipeline, so
/// collapsing repeats cannot speed them up further) or by staggered line
/// crossings (the `A[i-1]/A[i]/A[i+1]` stencil, whose lanes cross on
/// different iterations and shorten the phases) are reported with the same
/// bit-identity requirement but outside the throughput gate.
fn workloads(smoke: bool) -> Vec<(String, bool, bool, Program)> {
    let heat_n = if smoke { 256 } else { 1200 };
    let heat_t = if smoke { 8 } else { 1000 };
    let ew_n = if smoke { 128 } else { 400 };
    let ew_t = if smoke { 8 } else { 1600 };
    let sweep_t = if smoke { 2 } else { 40 };
    let sweep_klev = if smoke { 5 } else { 137 };
    let sweep_nproma = if smoke { 16 } else { 128 };
    let saxpy_n = if smoke { 128 } else { 512 };
    let saxpy_t = if smoke { 8 } else { 2500 };
    let gemm_n = if smoke { 48 } else { 160 };
    let triad_n = if smoke { 20_000 } else { 2_000_000 };
    let col_n = if smoke { 64 } else { 1024 };
    let erosion_sizes = if smoke {
        CloudscSizes::mini()
    } else {
        CloudscSizes::paper()
    };
    // The multi-block Fig. 11/12 schedule points: full-model CLOUDSC at
    // paper NPROMA/KLEV with enough blocks to stream >=10M accesses per
    // point (the acceptance target).
    let trace_sizes = CloudscSizes {
        nblocks: if smoke { 2 } else { 64 },
        ..erosion_sizes
    };
    let heat = parse_program(&format!(
        "program heat_1d {{ param N = {heat_n}; param T = {heat_t};
           array A[N]; array B[N];
           for t in 0..T {{
             for i in 1..N - 1 {{ B[i] = 0.25 * A[i - 1] + 0.5 * A[i] + 0.25 * A[i + 1]; }}
             for j in 1..N - 1 {{ A[j] = 0.25 * B[j - 1] + 0.5 * B[j] + 0.25 * B[j + 1]; }}
           }} }}"
    ))
    .expect("heat parses");
    let elementwise = parse_program(&format!(
        "program fused_elementwise {{ param N = {ew_n}; param T = {ew_t};
           array A[N]; array B[N]; array C[N]; array D[N]; array E[N];
           for t in 0..T {{
             for i in 0..N {{
               D[i] = A[i] * B[i] + C[i];
               E[i] = D[i] * 0.5 + A[i];
               C[i] = E[i] - B[i];
             }}
           }} }}"
    ))
    .expect("elementwise parses");
    let nproma_sweep = parse_program(&format!(
        "program cloudsc_nproma_sweep {{
           param NPROMA = {sweep_nproma}; param KLEV = {sweep_klev}; param T = {sweep_t};
           array za[NPROMA]; array zb[NPROMA]; array zc[NPROMA]; array zd[NPROMA];
           for t in 0..T {{ for jk in 0..KLEV {{ for jl in 0..NPROMA {{
             za[jl] = za[jl] * 0.9 + zb[jl] * 0.1;
             zc[jl] = za[jl] - zd[jl];
             zd[jl] += zc[jl] * 0.5;
           }} }} }} }}"
    ))
    .expect("nproma sweep parses");
    let saxpy = parse_program(&format!(
        "program saxpy_steps {{ param N = {saxpy_n}; param T = {saxpy_t};
           array A[N]; array B[N];
           for t in 0..T {{
             for i in 0..N {{ A[i] = A[i] * 1.5 + B[i]; }}
           }} }}"
    ))
    .expect("saxpy parses");
    let gemm = parse_program(&format!(
        "program gemm_ikj {{ param N = {gemm_n};
           array A[N][N]; array B[N][N]; array C[N][N];
           for i in 0..N {{ for k in 0..N {{ for j in 0..N {{
             C[i][j] += A[i][k] * B[k][j];
           }} }} }} }}"
    ))
    .expect("gemm parses");
    let triad = parse_program(&format!(
        "program stream_triad {{ param N = {triad_n};
           array A[N]; array B[N]; array C[N];
           for i in 0..N {{ A[i] = B[i] * 1.5 + C[i]; }} }}"
    ))
    .expect("triad parses");
    let col = parse_program(&format!(
        "program col_major {{ param N = {col_n}; array A[N][N];
           for j in 0..N {{ for i in 0..N {{ A[i][j] = A[i][j] * 0.5; }} }} }}"
    ))
    .expect("col parses");
    vec![
        ("fused_elementwise".to_string(), true, false, elementwise),
        (
            "cloudsc_nproma_sweep".to_string(),
            true,
            false,
            nproma_sweep,
        ),
        ("saxpy_steps".to_string(), true, false, saxpy),
        ("gemm_ikj".to_string(), false, false, gemm),
        ("heat_1d_steps".to_string(), false, false, heat),
        (
            "cloudsc_erosion_optimized".to_string(),
            false,
            false,
            erosion_optimized(erosion_sizes),
        ),
        (
            "cloudsc_full_fortran_multiblock".to_string(),
            false,
            true,
            full_model(CloudscVariant::Fortran, trace_sizes),
        ),
        (
            "cloudsc_full_daisy_multiblock".to_string(),
            false,
            true,
            daisy_full_model(trace_sizes),
        ),
        ("stream_triad".to_string(), false, false, triad),
        ("col_major".to_string(), false, false, col),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dataset_name = if smoke { "mini" } else { "paper" };

    let rows: Vec<CacheRow> = workloads(smoke)
        .iter()
        .map(|(name, unit, point, p)| measure(name, *unit, *point, p))
        .collect();

    print_table(
        "cache simulation: run-compressed vs per-access streaming (PR 1 pipeline)",
        &[
            "workload",
            "accesses",
            "per-access [s]",
            "run [s]",
            "run [Macc/s]",
            "speedup",
            "stats match",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    r.accesses.to_string(),
                    format!("{:.4}", r.per_access_seconds),
                    format!("{:.4}", r.run_seconds),
                    format!("{:.1}", r.run_rate() / 1e6),
                    format!("{:.1}x", r.speedup()),
                    r.stats_match.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let unit_speedups: Vec<f64> = rows
        .iter()
        .filter(|r| r.unit_stride)
        .map(CacheRow::speedup)
        .collect();
    let unit_geo_mean = geometric_mean(&unit_speedups);
    let all_match = rows.iter().all(|r| r.stats_match);
    let points: Vec<&CacheRow> = rows.iter().filter(|r| r.schedule_point).collect();
    let min_point_accesses = points.iter().map(|r| r.accesses).min().unwrap_or(0);
    let max_point_seconds = points.iter().map(|r| r.run_seconds).fold(0.0f64, f64::max);
    println!(
        "\ngeo-mean unit-stride speedup: {unit_geo_mean:.1}x (acceptance: >= 5x), stats bit-identical: {all_match}"
    );
    println!(
        "multi-block CLOUDSC schedule points: >= {min_point_accesses} accesses each, slowest simulated in {max_point_seconds:.3}s (acceptance: >= 10M in < 1s)"
    );

    // -- JSON ----------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"generated_by\": \"cargo run --release -p bench --bin bench_pr5\",\n");
    json.push_str(&format!("  \"dataset\": \"{dataset_name}\",\n"));
    json.push_str("  \"cache\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"in_unit_stride_gate\": {}, \"schedule_point\": {}, \
             \"accesses\": {}, \"per_access_seconds\": {:.6}, \"run_seconds\": {:.6}, \
             \"run_accesses_per_second\": {:.0}, \"speedup\": {:.2}, \
             \"stats_match_reference\": {}}}{}\n",
            r.workload,
            r.unit_stride,
            r.schedule_point,
            r.accesses,
            r.per_access_seconds,
            r.run_seconds,
            r.run_rate(),
            r.speedup(),
            r.stats_match,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"unit_stride_geo_mean_speedup\": {unit_geo_mean:.2},\n"
    ));
    json.push_str(&format!(
        "  \"min_schedule_point_accesses\": {min_point_accesses},\n"
    ));
    json.push_str(&format!(
        "  \"max_schedule_point_seconds\": {max_point_seconds:.6},\n"
    ));
    json.push_str(&format!("  \"all_stats_match_reference\": {all_match}\n"));
    json.push_str("}\n");
    std::fs::write("BENCH_PR5.json", &json).expect("write BENCH_PR5.json");
    println!("wrote BENCH_PR5.json");

    // Acceptance gates. Bit-identity must hold everywhere; the throughput
    // and scale gates only apply at paper sizes (mini workloads are
    // overhead-bound by design).
    let mut failed = false;
    if !all_match {
        eprintln!("bench_pr5: CacheStats bit-identity acceptance FAILED");
        failed = true;
    }
    if !smoke && unit_geo_mean < 5.0 {
        eprintln!("bench_pr5: unit-stride speedup acceptance FAILED ({unit_geo_mean:.2}x < 5x)");
        failed = true;
    }
    if !smoke && (min_point_accesses < 10_000_000 || max_point_seconds >= 1.0) {
        eprintln!(
            "bench_pr5: multi-block CLOUDSC acceptance FAILED ({min_point_accesses} accesses, {max_point_seconds:.3}s)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
