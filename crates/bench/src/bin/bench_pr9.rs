//! Block-sharded parallel cache simulation snapshot (PR 9).
//!
//! The sharded driver ([`machine::simulate_cache_sharded`]) cuts a compiled
//! program's trace at block granularity and streams each shard through its
//! own cache replica on a worker pool; the merged counters must be
//! *bit-identical* at any worker count. Two acceptance criteria on the
//! CLOUDSC full-model traces:
//!
//! 1. **Bit identity** (always, smoke included — determinism is not
//!    jitter-bound): the merged [`machine::ShardedCacheStats`] at worker
//!    counts 2, 4 and 8 must equal the 1-worker run exactly, and the access
//!    count must equal the monolithic sequential simulation's.
//! 2. **Throughput** (paper sizes on multi-core builders only): ≥ 3x
//!    Macc/s at 4 workers over 1 worker. Single-core builders run the full
//!    protocol but skip the gate; `cores_available` and
//!    `multicore_gate_applied` in the JSON record which case happened, as
//!    in BENCH_PR4.
//!
//! Writes `BENCH_PR9.json` into the current directory and prints the same
//! numbers as tables. Run with
//! `cargo run --release -p bench --bin bench_pr9` (add `--smoke` for tiny
//! problem sizes — the CI configuration).

use std::time::Instant;

use bench::print_table;
use loop_ir::program::Program;
use machine::{simulate_cache, simulate_cache_sharded, MachineConfig, ShardedCacheStats};
use polybench::cloudsc::{full_model, CloudscSizes, CloudscVariant};

/// Runs measured per worker count; throughput takes the best.
const REPS: usize = 3;

/// Worker counts the identity gate sweeps; throughput compares 1 vs 4.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct WorkloadRow {
    name: String,
    accesses: u64,
    shards: usize,
    /// Best Macc/s per swept worker count, in [`WORKER_COUNTS`] order.
    macc_per_s: Vec<f64>,
    /// Merged counters bit-identical across every swept worker count, and
    /// accesses equal to the monolithic sequential simulation.
    identical: bool,
}

impl WorkloadRow {
    fn speedup_at_4(&self) -> f64 {
        self.macc_per_s[2] / self.macc_per_s[0]
    }
}

/// Best-of-[`REPS`] sharded simulation: returns the stats (identical across
/// reps by the determinism contract) and the best wall-clock seconds.
fn best_sharded(
    program: &Program,
    machine: &MachineConfig,
    workers: usize,
) -> (ShardedCacheStats, f64) {
    let mut best = f64::INFINITY;
    let mut stats = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let run = simulate_cache_sharded(program, machine, workers).expect("workload simulates");
        best = best.min(start.elapsed().as_secs_f64().max(1e-9));
        if let Some(previous) = &stats {
            assert_eq!(&run, previous, "sharded simulation must be deterministic");
        }
        stats = Some(run);
    }
    (stats.expect("REPS > 0"), best)
}

fn measure(name: &str, program: &Program, machine: &MachineConfig) -> WorkloadRow {
    let mut macc_per_s = Vec::new();
    let mut identical = true;
    let mut baseline: Option<ShardedCacheStats> = None;
    for &workers in &WORKER_COUNTS {
        let (stats, seconds) = best_sharded(program, machine, workers);
        macc_per_s.push(stats.accesses() as f64 / seconds / 1e6);
        match &baseline {
            None => baseline = Some(stats),
            Some(first) => {
                if &stats != first {
                    eprintln!(
                        "bench_pr9: {name}: {workers}-worker counters diverged from 1-worker"
                    );
                    identical = false;
                }
            }
        }
    }
    let baseline = baseline.expect("worker sweep ran");
    // The sequential (monolithic) simulation walks the same trace once;
    // its access count pins the shards to covering the trace exactly.
    let sequential = simulate_cache(program, machine).expect("workload simulates");
    if sequential.accesses() != baseline.accesses() {
        eprintln!(
            "bench_pr9: {name}: sharded access count {} != sequential {}",
            baseline.accesses(),
            sequential.accesses()
        );
        identical = false;
    }
    WorkloadRow {
        name: name.to_string(),
        accesses: baseline.accesses(),
        shards: baseline.shards(),
        macc_per_s,
        identical,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let dataset_name = if smoke { "mini" } else { "paper" };
    let sizes = if smoke {
        CloudscSizes::mini()
    } else {
        CloudscSizes::paper()
    };
    let machine = MachineConfig::xeon_e5_2680v3();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let workloads = [
        (
            "cloudsc_fortran",
            full_model(CloudscVariant::Fortran, sizes),
        ),
        ("cloudsc_dace", full_model(CloudscVariant::Dace, sizes)),
    ];
    let rows: Vec<WorkloadRow> = workloads
        .iter()
        .map(|(name, p)| measure(name, p, &machine))
        .collect();

    print_table(
        &format!(
            "sharded cache simulation throughput, NBLOCKS={} ({} cores available)",
            sizes.nblocks, cores
        ),
        &[
            "workload",
            "accesses",
            "shards",
            "Macc/s @1",
            "Macc/s @2",
            "Macc/s @4",
            "Macc/s @8",
            "speedup @4",
            "bit-identical",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.accesses.to_string(),
                    r.shards.to_string(),
                    format!("{:.0}", r.macc_per_s[0]),
                    format!("{:.0}", r.macc_per_s[1]),
                    format!("{:.0}", r.macc_per_s[2]),
                    format!("{:.0}", r.macc_per_s[3]),
                    format!("{:.2}x", r.speedup_at_4()),
                    if r.identical { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let all_identical = rows.iter().all(|r| r.identical);
    let min_speedup = rows
        .iter()
        .map(WorkloadRow::speedup_at_4)
        .fold(f64::INFINITY, f64::min);
    // The ≥3x gate needs at least 4 real cores; single-core builders (and
    // smoke runs, which are jitter-bound) only verify bit identity.
    let gate_applies = !smoke && cores >= 4;
    println!(
        "\nworst 4-worker speedup: {min_speedup:.2}x (acceptance: >= 3x on multi-core at paper sizes; {})",
        if gate_applies {
            "gate applied"
        } else {
            "gate skipped on this builder"
        }
    );

    // -- JSON ----------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"generated_by\": \"cargo run --release -p bench --bin bench_pr9\",\n");
    json.push_str(&format!("  \"dataset\": \"{dataset_name}\",\n"));
    json.push_str(&format!("  \"nblocks\": {},\n", sizes.nblocks));
    json.push_str(&format!("  \"cores_available\": {cores},\n"));
    json.push_str("  \"worker_counts\": [1, 2, 4, 8],\n");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"accesses\": {}, \"shards\": {}, \
             \"macc_per_s\": [{:.1}, {:.1}, {:.1}, {:.1}], \
             \"speedup_at_4_workers\": {:.3}, \"bit_identical\": {}}}{}\n",
            r.name,
            r.accesses,
            r.shards,
            r.macc_per_s[0],
            r.macc_per_s[1],
            r.macc_per_s[2],
            r.macc_per_s[3],
            r.speedup_at_4(),
            r.identical,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"all_bit_identical\": {all_identical},\n"));
    json.push_str(&format!(
        "  \"min_speedup_at_4_workers\": {min_speedup:.3},\n"
    ));
    json.push_str(&format!("  \"multicore_gate_applied\": {gate_applies},\n"));
    json.push_str(&format!(
        "  \"speedup_gate_passed\": {}\n",
        !gate_applies || min_speedup >= 3.0
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_PR9.json", &json).expect("write BENCH_PR9.json");
    println!("wrote BENCH_PR9.json");

    // Acceptance gates. Bit identity holds everywhere, including smoke.
    let mut failed = false;
    if !all_identical {
        eprintln!("bench_pr9: sharded-vs-sequential bit identity FAILED");
        failed = true;
    }
    if gate_applies && min_speedup < 3.0 {
        eprintln!("bench_pr9: 4-worker speedup acceptance FAILED ({min_speedup:.2}x < 3x)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
