//! Figure 1: structurally different GEMM kernels yield significantly
//! different performance under a baseline compiler and under Polly, while the
//! normalized pipeline maps them all to the same canonical form.
//!
//! Thin wrapper around [`bench::figures::fig1_gemm_variants`]; the unified
//! `reproduce` binary batches all figures behind one entry point.

use bench::figures::{fig1_gemm_variants, ReproContext, ReproOptions};

fn main() {
    let ctx = ReproContext::new(ReproOptions::default());
    fig1_gemm_variants(&ctx);
}
