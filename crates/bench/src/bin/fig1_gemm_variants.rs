//! Figure 1: structurally different GEMM kernels yield significantly
//! different performance under a baseline compiler and under Polly, while the
//! normalized pipeline maps them all to the same canonical form.

use baselines::{clang_schedule, polly_schedule};
use bench::{paper_machine_model, print_table, THREADS};
use loop_ir::parser::parse_program;
use normalize::Normalizer;

fn gemm_with_order(order: &str) -> loop_ir::Program {
    let l: Vec<char> = order.chars().collect();
    let bound = |c: char| match c {
        'i' => "NI",
        'j' => "NJ",
        _ => "NK",
    };
    parse_program(&format!(
        "program gemm_{order} {{
           param NI = 1000; param NJ = 1100; param NK = 1200;
           scalar alpha = 1.5; scalar beta = 1.2;
           array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
           for {a} in 0..{ab} {{ for {b} in 0..{bb} {{ for {c} in 0..{cb} {{
             C[i][j] += alpha * A[i][k] * B[k][j];
           }} }} }}
         }}",
        a = l[0],
        b = l[1],
        c = l[2],
        ab = bound(l[0]),
        bb = bound(l[1]),
        cb = bound(l[2]),
    ))
    .expect("gemm variant parses")
}

fn main() {
    let model = paper_machine_model(THREADS);
    let sequential = paper_machine_model(1);
    let mut rows = Vec::new();
    let mut clang_times = Vec::new();
    let mut polly_times = Vec::new();
    for order in ["ijk", "ikj", "jik", "jki", "kij", "kji"] {
        let p = gemm_with_order(order);
        let clang = sequential.estimate(&clang_schedule(&p)).seconds;
        let polly = model.estimate(&polly_schedule(&p)).seconds;
        let normalized = Normalizer::new().run(&p).expect("normalizes").program;
        let canonical: Vec<String> = normalized.loop_nests()[0]
            .nested_iterators()
            .iter()
            .map(|v| v.to_string())
            .collect();
        clang_times.push(clang);
        polly_times.push(polly);
        rows.push(vec![
            order.to_string(),
            format!("{clang:.3}"),
            format!("{polly:.3}"),
            canonical.join(""),
        ]);
    }
    print_table(
        "Figure 1: GEMM loop-order variants (estimated seconds, LARGE size)",
        &["order", "clang -O3", "Polly", "normalized order"],
        &rows,
    );
    let spread = |times: &[f64]| {
        times.iter().cloned().fold(f64::MIN, f64::max)
            / times.iter().cloned().fold(f64::MAX, f64::min)
    };
    println!(
        "\nclang worst/best ratio: {:.1}x   Polly worst/best ratio: {:.1}x",
        spread(&clang_times),
        spread(&polly_times)
    );
    println!("after normalization every variant maps to the same canonical loop order");
}
