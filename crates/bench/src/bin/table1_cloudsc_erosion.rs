//! Table 1: the erosion-of-clouds loop nest before and after normalization +
//! producer-consumer fusion — runtime for a single vertical iteration and for
//! all KLEV iterations, plus the absolute number of L1 loads and evicts.
//!
//! Thin wrapper around [`bench::figures::table1_cloudsc_erosion`]; the
//! unified `reproduce` binary batches all figures behind one entry point.

use bench::figures::{table1_cloudsc_erosion, ReproContext, ReproOptions};

fn main() {
    let ctx = ReproContext::new(ReproOptions::default());
    table1_cloudsc_erosion(&ctx);
}
