//! Table 1: the erosion-of-clouds loop nest before and after normalization +
//! producer-consumer fusion — runtime for a single vertical iteration and for
//! all KLEV iterations, plus the absolute number of L1 loads and evicts.

use bench::{paper_machine_model, print_table};
use machine::{simulate_cache, MachineConfig};
use polybench::cloudsc::{erosion_optimized, erosion_original, erosion_single_level, CloudscSizes};

fn main() {
    let sizes = CloudscSizes::paper();
    let model = paper_machine_model(1);
    let machine = MachineConfig::xeon_e5_2680v3();

    let original_single = erosion_single_level(sizes, false);
    let optimized_single = erosion_single_level(sizes, true);
    let original_full = erosion_original(sizes);
    let optimized_full = erosion_optimized(sizes);

    let t = |p: &loop_ir::Program| model.estimate(p).seconds * 1000.0;
    let cache = |p: &loop_ir::Program| simulate_cache(p, &machine).expect("trace runs");
    let orig_cache = cache(&original_single);
    let opt_cache = cache(&optimized_single);

    let rows = vec![
        vec![
            "Single Iteration [ms]".to_string(),
            format!("{:.3}", t(&original_single)),
            format!("{:.3}", t(&optimized_single)),
        ],
        vec![
            "KLEV Iterations [ms]".to_string(),
            format!("{:.3}", t(&original_full)),
            format!("{:.3}", t(&optimized_full)),
        ],
        vec![
            "L1 Loads (single iteration)".to_string(),
            format!("{}", orig_cache.l1().loads),
            format!("{}", opt_cache.l1().loads),
        ],
        vec![
            "L1 Evicts (single iteration)".to_string(),
            format!("{}", orig_cache.l1().evicts),
            format!("{}", opt_cache.l1().evicts),
        ],
        vec![
            "L1 accesses (single iteration)".to_string(),
            format!("{}", orig_cache.accesses()),
            format!("{}", opt_cache.accesses()),
        ],
    ];
    print_table(
        "Table 1: erosion of clouds, NPROMA=128, KLEV=137",
        &["metric", "Original", "Optimized"],
        &rows,
    );
    println!(
        "\nruntime speedup: single iteration {:.2}x, KLEV iterations {:.2}x",
        t(&original_single) / t(&optimized_single),
        t(&original_full) / t(&optimized_full)
    );
    println!("note: the paper's lower L1 load/evict counts stem from removed register spills,");
    println!("which the IR-level cache simulation cannot observe (see EXPERIMENTS.md).");
}
