//! Before/after throughput snapshot of the evaluation-stack overhaul
//! (PR 1): streaming cache simulator vs the naive reference, and the
//! parallel/deduped/memoized evolutionary search vs the sequential
//! pre-refactor baseline. Writes `BENCH_PR1.json` into the current
//! directory and prints the same numbers as a table.
//!
//! Run with `cargo run --release -p bench --bin bench_pr1`.

use std::time::Instant;

use bench::print_table;
use daisy::search::EvolutionarySearch;
use daisy::SearchConfig;
use loop_ir::expr::Var;
use machine::{simulate_cache, simulate_cache_reference, CostModel, MachineConfig};
use normalize::{out_of_order_cost, sum_of_strides, Normalizer};
use polybench::cloudsc::{
    erosion_original, erosion_single_level, full_model, CloudscSizes, CloudscVariant,
};
use polybench::{benchmark, Dataset};

/// Best-of-`reps` wall time of one invocation, in seconds.
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct CacheRow {
    workload: &'static str,
    accesses: u64,
    reference_per_sec: f64,
    streaming_per_sec: f64,
}

impl CacheRow {
    fn speedup(&self) -> f64 {
        self.streaming_per_sec / self.reference_per_sec
    }
}

fn measure_cache(workload: &'static str, program: &loop_ir::Program) -> CacheRow {
    let machine = MachineConfig::xeon_e5_2680v3();
    // Correctness first: identical counters (the Table 1 acceptance check).
    let fast = simulate_cache(program, &machine).unwrap();
    let slow = simulate_cache_reference(program, &machine).unwrap();
    assert_eq!(
        fast.accesses(),
        slow.accesses(),
        "{workload}: access counts"
    );
    assert_eq!(fast.l1(), slow.l1(), "{workload}: L1 counters");
    assert_eq!(fast.l2(), slow.l2(), "{workload}: L2 counters");
    let accesses = fast.accesses();
    let t_ref = best_of(5, || simulate_cache_reference(program, &machine).unwrap());
    let t_new = best_of(5, || simulate_cache(program, &machine).unwrap());
    CacheRow {
        workload,
        accesses,
        reference_per_sec: accesses as f64 / t_ref,
        streaming_per_sec: accesses as f64 / t_new,
    }
}

struct SearchRow {
    workload: &'static str,
    candidates: usize,
    reference_per_sec: f64,
    overhauled_per_sec: f64,
}

impl SearchRow {
    fn speedup(&self) -> f64 {
        self.overhauled_per_sec / self.reference_per_sec
    }
}

fn measure_search(
    workload: &'static str,
    program: &loop_ir::Program,
    nest_index: usize,
) -> SearchRow {
    let config = SearchConfig {
        epochs: 2,
        iterations_per_epoch: 2,
        population: 8,
        seed: 7,
    };
    // Candidate recipes a search with this configuration scores: the initial
    // population, the per-iteration refills (half the population each) and
    // one epoch-reseed candidate per epoch.
    let refill = config.population - config.population / 2;
    let candidates =
        config.population + config.epochs * config.iterations_per_epoch * refill + config.epochs;

    let overhauled = EvolutionarySearch::new(config.clone());
    let reference = EvolutionarySearch::new(config).reference_evaluation();

    // Both sides get a fresh cost model per run: the memo must not leak
    // across repetitions, only within one search.
    let machine = MachineConfig::xeon_e5_2680v3();
    let t_new = best_of(5, || {
        overhauled.search(
            program,
            nest_index,
            &CostModel::new(machine.clone(), 12),
            &[],
        )
    });
    let t_ref = best_of(5, || {
        reference.search(
            program,
            nest_index,
            &CostModel::new(machine.clone(), 12).without_memoization(),
            &[],
        )
    });

    // Same configuration and seed must find the same recipe either way.
    let (r_new, s_new) = overhauled.search(
        program,
        nest_index,
        &CostModel::new(machine.clone(), 12),
        &[],
    );
    let (r_ref, s_ref) = reference.search(
        program,
        nest_index,
        &CostModel::new(machine.clone(), 12).without_memoization(),
        &[],
    );
    assert_eq!(r_new, r_ref, "search results diverged");
    assert_eq!(s_new, s_ref, "search scores diverged");

    SearchRow {
        workload,
        candidates,
        reference_per_sec: candidates as f64 / t_ref,
        overhauled_per_sec: candidates as f64 / t_new,
    }
}

fn measure_stride_cost() -> (f64, f64) {
    let gemm = (benchmark("gemm").unwrap().a)(Dataset::Large);
    let nest = gemm.loop_nests()[0].clone();
    let orders: Vec<Vec<Var>> = [
        ["i", "j", "k"],
        ["i", "k", "j"],
        ["j", "i", "k"],
        ["j", "k", "i"],
        ["k", "i", "j"],
        ["k", "j", "i"],
    ]
    .iter()
    .map(|o| o.iter().map(|s| Var::new(*s)).collect())
    .collect();
    let sum = best_of(20, || {
        orders
            .iter()
            .map(|o| sum_of_strides(&gemm, &nest, o))
            .fold(f64::INFINITY, f64::min)
    });
    let ooo = best_of(20, || {
        orders
            .iter()
            .map(|o| out_of_order_cost(&nest, o))
            .fold(f64::INFINITY, f64::min)
    });
    (sum * 1e9, ooo * 1e9)
}

fn main() {
    let sizes = CloudscSizes::paper();
    let cache_rows = [
        measure_cache(
            "cloudsc_erosion_single_level_original",
            &erosion_single_level(sizes, false),
        ),
        measure_cache(
            "cloudsc_erosion_single_level_optimized",
            &erosion_single_level(sizes, true),
        ),
        measure_cache("cloudsc_erosion_full_original", &erosion_original(sizes)),
    ];
    // The headline search workload: the normalized CLOUDSC proxy, whose
    // multi-nest body is what the memoized cost model was built for (the
    // search mutates one nest; the others must never be re-priced).
    let cloudsc = Normalizer::new()
        .run(&full_model(CloudscVariant::Dace, CloudscSizes::paper()))
        .unwrap()
        .program;
    let gemm = (benchmark("gemm").unwrap().a)(Dataset::Medium);
    let search_rows = [
        measure_search("cloudsc_dace_normalized_nest0", &cloudsc, 0),
        measure_search("gemm_a_medium", &gemm, 0),
    ];
    let search_row = &search_rows[0];
    let (stride_sum_ns, stride_ooo_ns) = measure_stride_cost();

    print_table(
        "cache_simulator (accesses/sec)",
        &["workload", "accesses", "reference", "streaming", "speedup"],
        &cache_rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.to_string(),
                    r.accesses.to_string(),
                    format!("{:.3e}", r.reference_per_sec),
                    format!("{:.3e}", r.streaming_per_sec),
                    format!("{:.2}x", r.speedup()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "scheduler_search (candidates/sec)",
        &[
            "workload",
            "candidates",
            "reference",
            "overhauled",
            "speedup",
        ],
        &search_rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.to_string(),
                    r.candidates.to_string(),
                    format!("{:.2}", r.reference_per_sec),
                    format!("{:.2}", r.overhauled_per_sec),
                    format!("{:.2}x", r.speedup()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_table(
        "stride_cost (ns, all 6 GEMM orders)",
        &["sum_of_strides", "out_of_order_cost"],
        &[vec![
            format!("{stride_sum_ns:.0}"),
            format!("{stride_ooo_ns:.0}"),
        ]],
    );

    let min_cache_speedup = cache_rows
        .iter()
        .map(CacheRow::speedup)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nacceptance: cache speedup >= 5x: {} ({min_cache_speedup:.2}x), \
         search speedup >= 3x: {} ({:.2}x)",
        min_cache_speedup >= 5.0,
        search_row.speedup() >= 3.0,
        search_row.speedup(),
    );

    let mut json = String::from("{\n");
    json.push_str("  \"generated_by\": \"cargo run --release -p bench --bin bench_pr1\",\n");
    json.push_str("  \"cache_simulator\": [\n");
    for (i, r) in cache_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"accesses\": {}, \
             \"reference_accesses_per_sec\": {:.0}, \"streaming_accesses_per_sec\": {:.0}, \
             \"speedup\": {:.2}, \"stats_match_reference\": true}}{}\n",
            r.workload,
            r.accesses,
            r.reference_per_sec,
            r.streaming_per_sec,
            r.speedup(),
            if i + 1 < cache_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"scheduler_search\": [\n");
    for (i, r) in search_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"candidates\": {}, \
             \"reference_candidates_per_sec\": {:.2}, \"overhauled_candidates_per_sec\": {:.2}, \
             \"speedup\": {:.2}, \"same_result_as_reference\": true}}{}\n",
            r.workload,
            r.candidates,
            r.reference_per_sec,
            r.overhauled_per_sec,
            r.speedup(),
            if i + 1 < search_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"stride_cost\": {{\"workload\": \"gemm_a_large_all_orders\", \
         \"sum_of_strides_ns\": {stride_sum_ns:.0}, \"out_of_order_cost_ns\": {stride_ooo_ns:.0}}}\n",
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_PR1.json", &json).expect("write BENCH_PR1.json");
    println!("\nwrote BENCH_PR1.json");
}
