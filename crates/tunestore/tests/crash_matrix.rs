//! The exhaustive crash matrix: a scripted store workload is dry-run once
//! to count its I/O operations, then re-run with a simulated power cut at
//! EVERY operation index. After each cut the storage materializes its
//! crash image (torn unsynced tails, rolled-back uncommitted renames,
//! optionally a flipped bit) and the store is reopened. The invariant at
//! every single crash point:
//!
//! > the recovered view equals the model state after `k` completed steps,
//! > where `k` is either the number of acknowledged steps or (when the cut
//! > interrupted an insert whose record reached the disk whole) one more.
//!
//! A second reopen must then be byte-stable and report a fully clean
//! [`StoreHealth`] — recovery repairs durably, it does not just mask.
//!
//! The matrix also mutation-tests itself: weakening [`Durability`] (the
//! skipped-fsync settings) must make some crash point FAIL the invariant,
//! proving the harness can actually see durability holes.

use std::path::PathBuf;
use std::sync::Arc;

use loop_ir::expr::Var;
use transforms::{Recipe, Transform};
use tunestore::{
    is_power_cut, Durability, DurableStore, FaultPlan, FaultStorage, Snapshot, SourceState,
    Storage, StoreError, StoredEntry,
};

const FP: &str = "matrix-fp";

fn store_path() -> PathBuf {
    PathBuf::from("dir/store.tunedb")
}

fn entry(key: u64, cost: f64) -> StoredEntry {
    StoredEntry {
        key,
        cost,
        embedding: vec![cost, 2.0 * cost],
        recipe: Recipe::new(vec![Transform::Vectorize {
            iter: Var::new("j"),
        }]),
        chain: vec![Var::new("i"), Var::new("j")],
        source: format!("matrix-{key}"),
    }
}

/// One step of the scripted workload.
#[derive(Debug, Clone, Copy)]
enum Step {
    Insert(u64, f64),
    Compact,
    Reopen,
}

/// The workload: inserts (including a best-cost improvement and a
/// rejected worse-cost duplicate), compactions, and a mid-script reopen,
/// so crash points land in every phase of the store's life.
fn script() -> Vec<Step> {
    use Step::*;
    vec![
        Insert(1, 0.9),
        Insert(2, 0.8),
        Insert(1, 0.5), // improves key 1
        Compact,        // folds the journal into the snapshot
        Insert(3, 0.7),
        Insert(2, 0.95), // rejected (worse cost): completes with no I/O
        Reopen,          // recovery mid-script
        Insert(4, 0.6),
        Compact,
        Insert(5, 0.45),
    ]
}

/// Canonical form of a set of entries, for order-insensitive comparison.
fn canon(entries: &[StoredEntry]) -> Vec<(u64, u64, String)> {
    let mut out: Vec<(u64, u64, String)> = entries
        .iter()
        .map(|e| (e.key, e.cost.to_bits(), e.source.clone()))
        .collect();
    out.sort();
    out
}

/// `models()[k]` is the expected store content after `k` completed steps
/// (computed purely in memory — `Snapshot::insert` is the same best-cost
/// merge the store uses).
fn models() -> Vec<Vec<(u64, u64, String)>> {
    let mut view = Snapshot {
        fingerprint: FP.to_string(),
        entries: Vec::new(),
    };
    let mut out = vec![canon(&view.entries)];
    for step in script() {
        if let Step::Insert(key, cost) = step {
            view.insert(entry(key, cost));
        }
        out.push(canon(&view.entries));
    }
    out
}

/// Runs the scripted workload, returning how many steps completed and the
/// error (if any) that stopped it.
fn drive(storage: &Arc<FaultStorage>, durability: Durability) -> (usize, Option<StoreError>) {
    let open = || {
        DurableStore::open_with(
            Arc::clone(storage) as Arc<dyn Storage>,
            store_path(),
            FP,
            durability,
        )
    };
    let mut store = match open() {
        Ok(store) => store,
        Err(error) => return (0, Some(error)),
    };
    let mut completed = 0;
    for step in script() {
        let result = match step {
            Step::Insert(key, cost) => store.insert(entry(key, cost)).map(|_| ()),
            Step::Compact => store.compact(),
            Step::Reopen => match open() {
                Ok(reopened) => {
                    store = reopened;
                    Ok(())
                }
                Err(error) => Err(error),
            },
        };
        match result {
            Ok(()) => completed += 1,
            Err(error) => return (completed, Some(error)),
        }
    }
    (completed, None)
}

/// Reopens cleanly after a crash and returns the recovered view.
fn reopen(storage: &Arc<FaultStorage>) -> DurableStore {
    DurableStore::open(Arc::clone(storage) as Arc<dyn Storage>, store_path(), FP)
        .expect("recovery after a reboot must succeed")
}

/// Runs the full matrix at the given durability, returning the crash
/// points whose recovery VIOLATED the invariant (empty = crash-safe).
fn matrix_violations(durability: Durability, flip_bits: bool) -> Vec<u64> {
    // Dry run: count the ops and check the script completes.
    let dry = Arc::new(FaultStorage::default());
    let (completed, error) = drive(&dry, durability);
    assert!(error.is_none(), "dry run must not fail: {error:?}");
    assert_eq!(completed, script().len());
    let total = dry.ops();
    assert!(total > 20, "the script must produce a real op stream");
    let models = models();

    let mut violations = Vec::new();
    for cut in 0..total {
        let storage = Arc::new(FaultStorage::new(FaultPlan {
            seed: cut.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            crash_at_op: Some(cut),
            flip_bit_on_crash: flip_bits,
            ..FaultPlan::default()
        }));
        let (acked, error) = drive(&storage, durability);
        if let Some(error) = &error {
            match error {
                StoreError::Io(io) => assert!(
                    is_power_cut(io),
                    "cut {cut}: only the power cut may fail the script, got {io}"
                ),
                other => panic!("cut {cut}: unexpected error {other}"),
            }
        }
        storage.crash();
        storage.set_plan(FaultPlan::default());

        let store = reopen(&storage);
        let got = canon(store.entries());
        let in_flight = (acked + 1).min(models.len() - 1);
        if got != models[acked] && got != models[in_flight] {
            violations.push(cut);
            continue;
        }
        // Under FULL durability a power cut can only tear or lose the
        // un-acknowledged tail — never corrupt acknowledged, fsynced data
        // into quarantine. (Weakened durability runs the matrix as a
        // mutation test, where quarantine is an expected symptom.)
        if durability == Durability::FULL {
            for source in [&store.health().snapshot, &store.health().journal] {
                assert!(
                    !matches!(
                        source,
                        SourceState::Quarantined { .. } | SourceState::Foreign { .. }
                    ),
                    "cut {cut}: a pure power cut must never quarantine: {source}"
                );
            }
        }
        // Recovery must repair durably: a second open is byte-stable and
        // fully clean (the torn tail is gone from disk, not just skipped).
        drop(store);
        let again = reopen(&storage);
        assert_eq!(canon(again.entries()), got, "cut {cut}: reopen is stable");
        if durability == Durability::FULL {
            assert!(
                again.health().is_clean(),
                "cut {cut}: second open must be clean, got {}",
                again.health()
            );
        }
    }
    violations
}

#[test]
fn every_crash_point_recovers_an_acknowledged_prefix() {
    let violations = matrix_violations(Durability::FULL, false);
    assert!(
        violations.is_empty(),
        "crash points violating recovery: {violations:?}"
    );
}

#[test]
fn every_crash_point_recovers_even_with_bit_corruption() {
    let violations = matrix_violations(Durability::FULL, true);
    assert!(
        violations.is_empty(),
        "crash points violating recovery under bit flips: {violations:?}"
    );
}

/// Mutation test of the harness itself: skipping data fsyncs MUST make
/// some crash point lose an acknowledged write. If the weakened store
/// passed the matrix, the harness would be too lenient to trust.
#[test]
fn the_matrix_catches_a_store_that_skips_data_fsync() {
    let weakened = Durability {
        sync_data: false,
        ..Durability::FULL
    };
    let violations = matrix_violations(weakened, false);
    assert!(
        !violations.is_empty(),
        "a store that never fsyncs data must fail the crash matrix"
    );
}

/// Same mutation test for the rename protocol: writing snapshots in place
/// (no temp file + atomic rename) must be caught by the matrix.
#[test]
fn the_matrix_catches_a_store_that_writes_snapshots_in_place() {
    let weakened = Durability {
        atomic_rename: false,
        ..Durability::FULL
    };
    let violations = matrix_violations(weakened, false);
    assert!(
        !violations.is_empty(),
        "a store that rewrites snapshots in place must fail the crash matrix"
    );
}
