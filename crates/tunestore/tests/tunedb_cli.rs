//! CLI contract of the `tunedb` binary: any subcommand given a missing or
//! corrupt snapshot path must exit non-zero with a single one-line
//! diagnostic on stderr — never a panic or a backtrace.

use std::path::PathBuf;
use std::process::{Command, Output};

use tunestore::Snapshot;

fn tunedb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tunedb"))
        .args(args)
        .output()
        .expect("tunedb runs")
}

fn tmpdir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tunedb-cli-{label}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Asserts the failure contract: exit code 1, no panic markers, exactly one
/// stderr line of the form `tunedb: <path>: <reason>`.
fn assert_clean_failure(output: &Output, path: &str, label: &str) {
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(1),
        "{label}: expected exit 1, stderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "{label}: panicked instead of reporting: {stderr}"
    );
    let lines: Vec<&str> = stderr.lines().collect();
    assert_eq!(
        lines.len(),
        1,
        "{label}: diagnostic must be one line: {stderr}"
    );
    assert!(
        lines[0].starts_with("tunedb: ") && lines[0].contains(path),
        "{label}: diagnostic must name the store: {stderr}"
    );
}

#[test]
fn every_subcommand_reports_missing_stores_cleanly() {
    let dir = tmpdir("missing");
    let missing = dir.join("missing.tunedb");
    let missing = missing.to_str().unwrap();
    let out = dir.join("out.tunedb");
    let out = out.to_str().unwrap();
    for args in [
        vec!["stats", missing],
        vec!["inspect", missing],
        vec!["inspect", missing, "5"],
        vec!["verify", missing],
        vec!["gc", missing],
        vec!["merge", out, missing],
    ] {
        let output = tunedb(&args);
        assert_clean_failure(&output, missing, &args.join(" "));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_subcommand_reports_corrupt_stores_cleanly() {
    let dir = tmpdir("corrupt");
    let out = dir.join("out.tunedb");
    let out = out.to_str().unwrap();
    // A zoo of corruption: wrong magic, truncated header, empty file, and a
    // bit-flipped but otherwise valid store.
    let garbage = dir.join("garbage.tunedb");
    std::fs::write(&garbage, b"DAISYTDBgarbage").unwrap();
    let empty = dir.join("empty.tunedb");
    std::fs::write(&empty, b"").unwrap();
    let flipped = dir.join("flipped.tunedb");
    let snapshot = Snapshot::new();
    snapshot.save(&flipped).unwrap();
    let mut bytes = std::fs::read(&flipped).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&flipped, &bytes).unwrap();

    for corrupt in [&garbage, &empty, &flipped] {
        let corrupt = corrupt.to_str().unwrap();
        for args in [
            vec!["stats", corrupt],
            vec!["inspect", corrupt],
            vec!["verify", corrupt],
            vec!["gc", corrupt],
            vec!["merge", out, corrupt],
        ] {
            let output = tunedb(&args);
            assert_clean_failure(&output, corrupt, &args.join(" "));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_reports_the_unwritable_output_path() {
    let dir = tmpdir("merge-out");
    let store = dir.join("ok.tunedb");
    Snapshot::new().save(&store).unwrap();
    let store = store.to_str().unwrap();
    // A parent that is a regular file: creating the output directory fails.
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"file").unwrap();
    let bad_out = blocker.join("out.tunedb");
    let bad_out = bad_out.to_str().unwrap();
    let output = tunedb(&["merge", bad_out, store]);
    assert_clean_failure(&output, bad_out, "merge to unwritable path");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_with_code_two() {
    for args in [vec![], vec!["stats"], vec!["frobnicate", "x"]] {
        let output = tunedb(&args);
        assert_eq!(output.status.code(), Some(2), "args: {args:?}");
    }
    let output = tunedb(&["inspect", "x.tunedb", "not-a-number"]);
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn happy_path_round_trips() {
    let dir = tmpdir("ok");
    let store = dir.join("ok.tunedb");
    Snapshot::new().save(&store).unwrap();
    let store = store.to_str().unwrap();
    for args in [
        vec!["stats", store],
        vec!["verify", store],
        vec!["gc", store],
    ] {
        let output = tunedb(&args);
        assert_eq!(
            output.status.code(),
            Some(0),
            "args {args:?}, stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
