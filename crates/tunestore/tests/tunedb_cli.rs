//! CLI contract of the `tunedb` binary: any subcommand given a missing or
//! corrupt snapshot path must exit non-zero with a single one-line
//! diagnostic on stderr — never a panic or a backtrace.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Arc;

use tunestore::store::journal_path;
use tunestore::{DurableStore, OsStorage, Snapshot, StoredEntry};

fn tunedb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tunedb"))
        .args(args)
        .output()
        .expect("tunedb runs")
}

fn tmpdir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tunedb-cli-{label}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Asserts the failure contract: exit code 1, no panic markers, exactly one
/// stderr line of the form `tunedb: <path>: <reason>`.
fn assert_clean_failure(output: &Output, path: &str, label: &str) {
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(1),
        "{label}: expected exit 1, stderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "{label}: panicked instead of reporting: {stderr}"
    );
    let lines: Vec<&str> = stderr.lines().collect();
    assert_eq!(
        lines.len(),
        1,
        "{label}: diagnostic must be one line: {stderr}"
    );
    assert!(
        lines[0].starts_with("tunedb: ") && lines[0].contains(path),
        "{label}: diagnostic must name the store: {stderr}"
    );
}

/// A minimal valid entry for building stores the CLI is pointed at.
fn entry(key: u64, cost: f64) -> StoredEntry {
    StoredEntry {
        key,
        cost,
        embedding: vec![1.0, 2.0, 3.0],
        recipe: transforms::Recipe::identity(),
        chain: vec![loop_ir::expr::Var::new("i")],
        source: format!("cli-{key}"),
    }
}

/// Builds a store on real disk with `n` journaled (uncompacted) inserts.
fn journaled_store(dir: &std::path::Path, n: u64) -> PathBuf {
    let path = dir.join("store.tunedb");
    let mut store = DurableStore::open(
        Arc::new(OsStorage),
        &path,
        &tunestore::environment_fingerprint(),
    )
    .unwrap();
    for key in 0..n {
        store.insert(entry(key, 0.5 + key as f64)).unwrap();
    }
    path
}

#[test]
fn every_subcommand_reports_missing_stores_cleanly() {
    let dir = tmpdir("missing");
    let missing = dir.join("missing.tunedb");
    let missing = missing.to_str().unwrap();
    let out = dir.join("out.tunedb");
    let out = out.to_str().unwrap();
    for args in [
        vec!["stats", missing],
        vec!["inspect", missing],
        vec!["inspect", missing, "5"],
        vec!["verify", missing],
        vec!["verify", missing, "--deep"],
        vec!["gc", missing],
        vec!["merge", out, missing],
        vec!["recover", missing],
        vec!["compact", missing],
    ] {
        let output = tunedb(&args);
        assert_clean_failure(&output, missing, &args.join(" "));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_subcommand_reports_corrupt_stores_cleanly() {
    let dir = tmpdir("corrupt");
    let out = dir.join("out.tunedb");
    let out = out.to_str().unwrap();
    // A zoo of corruption: wrong magic, truncated header, empty file, and a
    // bit-flipped but otherwise valid store.
    let garbage = dir.join("garbage.tunedb");
    std::fs::write(&garbage, b"DAISYTDBgarbage").unwrap();
    let empty = dir.join("empty.tunedb");
    std::fs::write(&empty, b"").unwrap();
    let flipped = dir.join("flipped.tunedb");
    let snapshot = Snapshot::new();
    snapshot.save(&flipped).unwrap();
    let mut bytes = std::fs::read(&flipped).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&flipped, &bytes).unwrap();

    for corrupt in [&garbage, &empty, &flipped] {
        let corrupt = corrupt.to_str().unwrap();
        for args in [
            vec!["stats", corrupt],
            vec!["inspect", corrupt],
            vec!["verify", corrupt],
            vec!["verify", corrupt, "--deep"],
            vec!["gc", corrupt],
            vec!["merge", out, corrupt],
        ] {
            let output = tunedb(&args);
            assert_clean_failure(&output, corrupt, &args.join(" "));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_reports_the_unwritable_output_path() {
    let dir = tmpdir("merge-out");
    let store = dir.join("ok.tunedb");
    Snapshot::new().save(&store).unwrap();
    let store = store.to_str().unwrap();
    // A parent that is a regular file: creating the output directory fails.
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"file").unwrap();
    let bad_out = blocker.join("out.tunedb");
    let bad_out = bad_out.to_str().unwrap();
    let output = tunedb(&["merge", bad_out, store]);
    assert_clean_failure(&output, bad_out, "merge to unwritable path");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_with_code_two() {
    for args in [
        vec![],
        vec!["stats"],
        vec!["frobnicate", "x"],
        vec!["recover"],
        vec!["compact"],
        vec!["verify", "--deep", "--deep"],
        vec!["verify", "a.tunedb", "b.tunedb"],
    ] {
        let output = tunedb(&args);
        assert_eq!(output.status.code(), Some(2), "args: {args:?}");
    }
    let output = tunedb(&["inspect", "x.tunedb", "not-a-number"]);
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn deep_verify_gates_and_recover_repairs_a_torn_journal() {
    let dir = tmpdir("torn-journal");
    let store = journaled_store(&dir, 3);
    let path = store.to_str().unwrap();
    // The journal alone holds the entries; compact first so the snapshot
    // exists, then journal two more and tear the tail by hand.
    assert_eq!(tunedb(&["compact", path]).status.code(), Some(0));
    let mut handle = DurableStore::open(
        Arc::new(OsStorage),
        &store,
        &tunestore::environment_fingerprint(),
    )
    .unwrap();
    handle.insert(entry(10, 0.125)).unwrap();
    handle.insert(entry(11, 0.25)).unwrap();
    drop(handle);
    let jpath = journal_path(&store);
    let mut bytes = std::fs::read(&jpath).unwrap();
    bytes.truncate(bytes.len() - 5);
    std::fs::write(&jpath, &bytes).unwrap();

    // Deep verify refuses the torn journal (naming the journal file) but
    // does NOT repair it: a second deep verify still fails.
    let output = tunedb(&["verify", path, "--deep"]);
    assert_clean_failure(&output, jpath.to_str().unwrap(), "deep verify torn");
    let output = tunedb(&["verify", "--deep", path]);
    assert_clean_failure(&output, jpath.to_str().unwrap(), "deep verify is read-only");
    // Shallow verify only looks at the snapshot and passes.
    assert_eq!(tunedb(&["verify", path]).status.code(), Some(0));

    // Recover truncates the torn tail durably and reports it.
    let output = tunedb(&["recover", path]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("torn tail"), "recover reports: {stdout}");
    // Now the gate passes again, with the surviving record intact.
    let output = tunedb(&["verify", path, "--deep"]);
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("journal OK (1 records)"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recover_quarantines_a_corrupt_snapshot_and_exits_zero() {
    let dir = tmpdir("recover-corrupt");
    let store = journaled_store(&dir, 2);
    let path = store.to_str().unwrap();
    assert_eq!(tunedb(&["compact", path]).status.code(), Some(0));
    // Flip a byte in the snapshot body.
    let mut bytes = std::fs::read(&store).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&store, &bytes).unwrap();

    let output = tunedb(&["recover", path]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "recover must degrade, not fail; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("quarantined"), "recover reports: {stdout}");
    let quarantined = dir.join("store.tunedb.corrupt");
    assert!(quarantined.exists(), "damaged snapshot preserved");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compact_folds_the_journal_and_leaves_a_deep_verifiable_store() {
    let dir = tmpdir("compact");
    let store = journaled_store(&dir, 4);
    let path = store.to_str().unwrap();
    // Before compaction everything lives in the journal; no snapshot file
    // exists yet.
    assert!(!store.exists(), "no snapshot before the first compact");
    let output = tunedb(&["compact", path]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("compacted 4 entries"), "{stdout}");
    // The snapshot now holds all entries and the journal is a bare header.
    let snapshot = Snapshot::load(&store).unwrap();
    assert_eq!(snapshot.entries.len(), 4);
    let output = tunedb(&["verify", path, "--deep"]);
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("journal OK (0 records)"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_reports_journal_health_and_degrades_to_journal_only_stores() {
    let dir = tmpdir("stats-journal");
    let store = journaled_store(&dir, 3);
    let path = store.to_str().unwrap();

    // No snapshot exists yet: stats must degrade to journal-only output
    // instead of failing, and report the journal's health.
    assert!(!store.exists());
    let output = tunedb(&["stats", path]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "journal-only store, stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("journal-only store"), "{stdout}");
    assert!(stdout.contains("journal records:  3"), "{stdout}");
    assert!(stdout.contains("torn tail:        none"), "{stdout}");

    // After a compact the journal is a bare header: zero records, zero
    // bytes since the last compact.
    assert_eq!(tunedb(&["compact", path]).status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&tunedb(&["stats", path]).stdout).to_string();
    assert!(stdout.contains("entries:          3"), "{stdout}");
    assert!(stdout.contains("journal records:  0"), "{stdout}");
    assert!(
        stdout.contains("journal bytes:    0 since last compact"),
        "{stdout}"
    );

    // Journal one more entry and tear its tail: stats *reports* the torn
    // bytes read-only (recover is the repairing counterpart).
    let mut handle = DurableStore::open(
        Arc::new(OsStorage),
        &store,
        &tunestore::environment_fingerprint(),
    )
    .unwrap();
    handle.insert(entry(7, 0.125)).unwrap();
    handle.insert(entry(8, 0.25)).unwrap();
    drop(handle);
    let jpath = journal_path(&store);
    let mut bytes = std::fs::read(&jpath).unwrap();
    bytes.truncate(bytes.len() - 5);
    std::fs::write(&jpath, &bytes).unwrap();
    let output = tunedb(&["stats", path]);
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("journal records:  1"), "{stdout}");
    assert!(stdout.contains("torn tail:        "), "{stdout}");
    assert!(stdout.contains("tunedb recover"), "{stdout}");
    // And it really was read-only: the torn tail is still there.
    let again = String::from_utf8_lossy(&tunedb(&["stats", path]).stdout).to_string();
    assert!(again.contains("tunedb recover"), "{again}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn happy_path_round_trips() {
    let dir = tmpdir("ok");
    let store = dir.join("ok.tunedb");
    Snapshot::new().save(&store).unwrap();
    let store = store.to_str().unwrap();
    for args in [
        vec!["stats", store],
        vec!["verify", store],
        vec!["gc", store],
    ] {
        let output = tunedb(&args);
        assert_eq!(
            output.status.code(),
            Some(0),
            "args {args:?}, stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
