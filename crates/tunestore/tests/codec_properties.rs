//! Property tests of the store codec: random snapshots round-trip exactly,
//! and random corruption/truncation must produce an `Err`, never a panic.

use loop_ir::expr::Var;
use loop_ir::nest::BlasKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transforms::{Recipe, Transform};
use tunestore::{Snapshot, StoredEntry};

/// Uniform float in `[0, 1)` (the shimmed `rand` has no float sampling).
fn unit_f64(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draws a random iterator name from a small pool (including tile-loop
/// names, which exercise the `_t` suffix paths downstream).
fn any_var(rng: &mut StdRng) -> Var {
    const NAMES: [&str; 8] = ["i", "j", "k", "jl", "jk", "i_t", "j_t", "block"];
    Var::new(NAMES[rng.gen_range(0..NAMES.len())])
}

/// Draws one random transform, covering every variant.
fn any_transform(rng: &mut StdRng) -> Transform {
    match rng.gen_range(0..6) {
        0 => Transform::Interchange {
            order: (0..rng.gen_range(0..4usize))
                .map(|_| any_var(rng))
                .collect(),
        },
        1 => Transform::Tile {
            tiles: (0..rng.gen_range(0..4usize))
                .map(|_| (any_var(rng), rng.gen_range(1..1024i64)))
                .collect(),
        },
        2 => Transform::Parallelize { iter: any_var(rng) },
        3 => Transform::Vectorize { iter: any_var(rng) },
        4 => Transform::Unroll {
            iter: any_var(rng),
            factor: rng.gen_range(2..32u32),
        },
        _ => Transform::Fission,
    }
}

/// Draws a random recipe: either a BLAS marker or 0..6 random steps.
fn any_recipe(rng: &mut StdRng) -> Recipe {
    if rng.gen_bool(0.15) {
        let kind = match rng.gen_range(0..4) {
            0 => BlasKind::Gemm,
            1 => BlasKind::Syrk,
            2 => BlasKind::Syr2k,
            _ => BlasKind::Gemv,
        };
        return Recipe::blas(kind);
    }
    Recipe::new(
        (0..rng.gen_range(0..6usize))
            .map(|_| any_transform(rng))
            .collect(),
    )
}

/// Draws a random entry: random key, cost (including negatives/zero),
/// embedding of random dimension, chain and source string.
fn any_entry(rng: &mut StdRng) -> StoredEntry {
    StoredEntry {
        key: rng.next_u64(),
        cost: (unit_f64(rng) - 0.25) * 10.0_f64.powi(rng.gen_range(-6..3i32)),
        embedding: (0..rng.gen_range(0..16usize))
            .map(|_| unit_f64(rng) * 100.0 - 50.0)
            .collect(),
        recipe: any_recipe(rng),
        chain: (0..rng.gen_range(0..5usize))
            .map(|_| any_var(rng))
            .collect(),
        source: format!("bench#{}", rng.gen_range(0..100u32)),
    }
}

fn any_snapshot(seed: u64) -> Snapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut snapshot = Snapshot::new();
    // Push directly (no dedupe) so duplicate keys also round-trip.
    for _ in 0..rng.gen_range(0..12usize) {
        snapshot.entries.push(any_entry(&mut rng));
    }
    snapshot
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_snapshots_round_trip(seed in 0..u64::MAX) {
        let snapshot = any_snapshot(seed);
        let bytes = snapshot.encode();
        let decoded = Snapshot::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &snapshot);
        // Encoding is deterministic: same snapshot, same bytes.
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn corrupted_bytes_never_panic(seed in 0..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let snapshot = any_snapshot(seed);
        let good = snapshot.encode();
        // Random single-byte corruption: must either fail cleanly or decode
        // to the identical snapshot (a flip in ignored padding does not
        // exist in this format, but the property is the safe one).
        for _ in 0..16 {
            let mut bytes = good.clone();
            let pos = rng.gen_range(0..bytes.len());
            let bit = 1u8 << rng.gen_range(0..8u8);
            bytes[pos] ^= bit;
            match Snapshot::decode(&bytes) {
                Err(_) => {}
                Ok(decoded) => prop_assert_eq!(decoded, snapshot.clone()),
            }
        }
    }

    #[test]
    fn truncated_files_never_panic(seed in 0..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let snapshot = any_snapshot(seed);
        let good = snapshot.encode();
        for _ in 0..16 {
            let cut = rng.gen_range(0..good.len());
            prop_assert!(Snapshot::decode(&good[..cut]).is_err());
        }
        // Garbage appended after a valid file is also rejected.
        let mut extended = good.clone();
        extended.extend_from_slice(&[0u8; 7]);
        prop_assert!(Snapshot::decode(&extended).is_err());
    }

    #[test]
    fn random_garbage_never_panics(seed in 0..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0..512usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Random bytes essentially never carry the magic; either way the
        // decoder must return instead of panicking.
        let _ = Snapshot::decode(&bytes);
    }
}
