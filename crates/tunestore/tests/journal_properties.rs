//! Property tests of the journal replay path: random journals round-trip,
//! and random truncation or corruption must never panic, never yield an
//! entry that fails its checksum, and always recover the longest valid
//! prefix of the records.

use loop_ir::expr::Var;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transforms::{Recipe, Transform};
use tunestore::journal::{encode_header, encode_record, replay};
use tunestore::StoredEntry;

/// Uniform float in `[0, 1)` (the shimmed `rand` has no float sampling).
fn unit_f64(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draws one random entry, small but covering the variable-length fields.
fn any_entry(rng: &mut StdRng) -> StoredEntry {
    const NAMES: [&str; 4] = ["i", "j", "k", "j_t"];
    StoredEntry {
        key: rng.next_u64(),
        cost: unit_f64(rng) * 4.0,
        embedding: (0..rng.gen_range(0..6usize))
            .map(|_| unit_f64(rng) * 10.0)
            .collect(),
        recipe: if rng.gen_bool(0.3) {
            Recipe::identity()
        } else {
            Recipe::new(vec![Transform::Vectorize {
                iter: Var::new(NAMES[rng.gen_range(0..NAMES.len())]),
            }])
        },
        chain: (0..rng.gen_range(0..4usize))
            .map(|_| Var::new(NAMES[rng.gen_range(0..NAMES.len())]))
            .collect(),
        source: format!("prop-{}", rng.gen_range(0..64u32)),
    }
}

/// A random journal: header plus `0..8` records, returning both the bytes
/// and the byte offset where each record ends (so tests can reason about
/// which record a mutation landed in).
fn any_journal(seed: u64) -> (Vec<u8>, Vec<StoredEntry>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bytes = encode_header(&format!("fp-{}", rng.gen_range(0..4u32)));
    let mut entries = Vec::new();
    let mut ends = vec![bytes.len()];
    for _ in 0..rng.gen_range(0..8usize) {
        let entry = any_entry(&mut rng);
        bytes.extend_from_slice(&encode_record(&entry));
        entries.push(entry);
        ends.push(bytes.len());
    }
    (bytes, entries, ends)
}

/// The invariants replay must uphold on ANY bytes it accepts: the valid
/// prefix and dropped tail partition the input, and replaying just the
/// valid prefix is a fixpoint (same entries, nothing further dropped).
fn assert_replay_consistent(bytes: &[u8], r: &tunestore::journal::Replay) {
    assert_eq!(r.valid_len + r.dropped_bytes, bytes.len());
    let again = replay(&bytes[..r.valid_len]).expect("valid prefix replays");
    assert_eq!(again.entries, r.entries);
    assert_eq!(again.dropped_bytes, 0);
    assert_eq!(again.valid_len, r.valid_len);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn intact_journals_replay_every_record(seed in 0..u64::MAX) {
        let (bytes, entries, _) = any_journal(seed);
        let r = replay(&bytes).expect("own encoding replays");
        prop_assert_eq!(&r.entries, &entries);
        prop_assert_eq!(r.dropped_bytes, 0);
        prop_assert_eq!(r.valid_len, bytes.len());
    }

    #[test]
    fn truncation_recovers_the_longest_valid_prefix(seed in 0..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let (bytes, entries, ends) = any_journal(seed);
        for _ in 0..16 {
            let cut = rng.gen_range(0..bytes.len() + 1);
            match replay(&bytes[..cut]) {
                Ok(r) => {
                    // Exactly the records wholly inside the cut survive.
                    let kept = ends[1..].iter().filter(|&&e| e <= cut).count();
                    prop_assert_eq!(&r.entries, &entries[..kept]);
                    prop_assert_eq!(r.valid_len, ends[kept]);
                    assert_replay_consistent(&bytes[..cut], &r);
                }
                // Only a cut inside the header itself is a hard error.
                Err(_) => prop_assert!(cut < ends[0], "hard error after the header (cut {cut})"),
            }
        }
    }

    #[test]
    fn single_byte_corruption_never_panics_or_forges_records(seed in 0..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2545f4914f6cdd1d);
        let (bytes, entries, ends) = any_journal(seed);
        for _ in 0..16 {
            let mut mutated = bytes.clone();
            let pos = rng.gen_range(0..mutated.len());
            mutated[pos] ^= 1u8 << rng.gen_range(0..8u8);
            match replay(&mutated) {
                Ok(r) => {
                    // The flip landed in record `hit` (or nowhere, if the
                    // flip was inside the header yet replay still passed —
                    // impossible, header flips are hard errors, asserted
                    // below). Records before it must be returned verbatim.
                    prop_assert!(pos >= ends[0], "header flips are hard errors");
                    let hit = ends[1..].iter().filter(|&&e| e <= pos).count();
                    prop_assert!(r.entries.len() >= hit);
                    prop_assert_eq!(&r.entries[..hit], &entries[..hit]);
                    // Anything replay yields must re-encode to a record
                    // whose checksum validates — no forged entries.
                    assert_replay_consistent(&mutated, &r);
                }
                Err(_) => prop_assert!(pos < ends[0], "record flips only tear the tail"),
            }
        }
    }

    #[test]
    fn random_garbage_never_panics(seed in 0..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0..512usize);
        let bytes: Vec<u8>  = (0..len).map(|_| rng.next_u64() as u8).collect();
        if let Ok(r) = replay(&bytes) {
            assert_replay_consistent(&bytes, &r);
        }
    }
}
