//! The on-disk snapshot: header + entries sections with per-section
//! checksums, plus the set-level operations (`merge`, `gc`, stats, verify).
//!
//! # File layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"DAISYTDB"
//! 8       4     format version (u32, currently 1)
//! 12      8     header section length H (u64)
//! 20      H     header section: fingerprint string, entry count (u32)
//! 20+H    8     FNV-1a checksum of the header section (u64)
//! ..      8     entries section length E (u64)
//! ..      E     entries section: `entry count` encoded StoredEntry records
//! ..      8     FNV-1a checksum of the entries section (u64)
//! ```
//!
//! Checksums cover each section's raw bytes, so a flipped bit anywhere in a
//! section is detected before any of its fields are interpreted; the
//! bounds-checked [`codec`](crate::codec) primitives then guarantee that even
//! an adversarial file that *happens* to checksum correctly can only produce
//! an `Err`, never a panic or runaway allocation.

use std::collections::HashMap;
use std::path::Path;

use crate::codec::{read_section, write_section, ByteReader, ByteWriter};
use crate::entry::StoredEntry;
use crate::error::{Result, StoreError};
use crate::fingerprint::environment_fingerprint;
use crate::storage::{atomic_write, Durability, OsStorage, Storage};

/// The eight magic bytes every store file starts with.
pub const MAGIC: &[u8; 8] = b"DAISYTDB";

/// Current store format version. Bump when the layout changes; readers
/// reject versions they do not understand rather than misinterpreting bytes.
pub const FORMAT_VERSION: u32 = 1;

/// An in-memory store snapshot: the environment fingerprint it was produced
/// under and its entries, in insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Fingerprint of the environment that produced the entries.
    pub fingerprint: String,
    /// Entries in insertion order (order is preserved across save/load so
    /// nearest-neighbour ties break identically warm and cold).
    pub entries: Vec<StoredEntry>,
}

/// Summary statistics of a snapshot, as reported by `tunedb stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStats {
    /// Number of entries.
    pub entries: usize,
    /// Number of distinct structural-hash keys.
    pub distinct_keys: usize,
    /// Entries whose recipe is the identity (candidates for `gc`).
    pub identity_recipes: usize,
    /// Total transformation steps across all recipes.
    pub total_steps: usize,
    /// Smallest stored cost, if any entry exists.
    pub min_cost: Option<f64>,
    /// Largest stored cost, if any entry exists.
    pub max_cost: Option<f64>,
}

impl Snapshot {
    /// An empty snapshot stamped with the current environment fingerprint.
    pub fn new() -> Self {
        Snapshot {
            fingerprint: environment_fingerprint(),
            entries: Vec::new(),
        }
    }

    /// Serializes the snapshot to its binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut header = ByteWriter::new();
        header.string(&self.fingerprint);
        header.u32(self.entries.len() as u32);
        let header = header.into_bytes();

        let mut body = ByteWriter::new();
        for entry in &self.entries {
            entry.encode(&mut body);
        }
        let body = body.into_bytes();

        let mut out = ByteWriter::new();
        out.bytes(MAGIC);
        out.u32(FORMAT_VERSION);
        write_section(&mut out, &header);
        write_section(&mut out, &body);
        out.into_bytes()
    }

    /// Decodes a snapshot, verifying magic, version and both checksums.
    /// Corrupted or truncated bytes yield an `Err`, never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let magic = r.bytes(MAGIC.len(), "magic")?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = r.u32("format version")?;
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }

        let header = read_section(&mut r, "header")?;
        let mut h = ByteReader::new(header);
        let fingerprint = h.string("fingerprint")?;
        let declared_entries = h.u32("entry count")? as usize;
        if !h.is_exhausted() {
            return Err(StoreError::Corrupt("trailing bytes in header".to_string()));
        }

        let body = read_section(&mut r, "entries")?;
        if !r.is_exhausted() {
            return Err(StoreError::Corrupt(
                "trailing bytes after entries section".to_string(),
            ));
        }
        let mut b = ByteReader::new(body);
        let mut entries = Vec::new();
        for _ in 0..declared_entries {
            entries.push(StoredEntry::decode(&mut b)?);
        }
        if !b.is_exhausted() {
            return Err(StoreError::Corrupt(
                "entries section longer than the declared entry count".to_string(),
            ));
        }
        Ok(Snapshot {
            fingerprint,
            entries,
        })
    }

    /// Writes the snapshot to a file atomically *and durably*: a temp file
    /// in the same directory is written, fsynced, renamed over the target,
    /// and the parent directory fsynced — so readers never observe a
    /// half-written store and an acknowledged save survives power loss.
    /// Stale temp files left by earlier failed saves of the same target
    /// are swept first. (All of this lives in
    /// [`atomic_write`](crate::storage::atomic_write).)
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        self.save_with(&OsStorage, path.as_ref(), Durability::FULL)
    }

    /// [`Snapshot::save`] through an explicit [`Storage`] (the fault
    /// harness) with an explicit [`Durability`] setting.
    pub fn save_with(
        &self,
        storage: &dyn Storage,
        path: &Path,
        durability: Durability,
    ) -> Result<()> {
        atomic_write(storage, path, &self.encode(), durability)
    }

    /// Reads and decodes a snapshot from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        Snapshot::load_with(&OsStorage, path.as_ref())
    }

    /// [`Snapshot::load`] through an explicit [`Storage`].
    pub fn load_with(storage: &dyn Storage, path: &Path) -> Result<Self> {
        let bytes = storage.read(path)?;
        Snapshot::decode(&bytes)
    }

    /// Like [`Snapshot::load`], but additionally rejects stores produced
    /// under a different environment fingerprint. Callers may extend the
    /// fingerprint with a model-specific suffix (the daisy scheduler
    /// appends its machine model and thread count), so compatibility here
    /// means *starts with* this environment's fingerprint; stricter
    /// equality checks are the extending caller's job.
    pub fn load_compatible(path: impl AsRef<Path>) -> Result<Self> {
        let snapshot = Snapshot::load(path)?;
        let expected = environment_fingerprint();
        if !snapshot.fingerprint.starts_with(&expected) {
            return Err(StoreError::FingerprintMismatch {
                found: snapshot.fingerprint,
                expected,
            });
        }
        Ok(snapshot)
    }

    /// True when [`Snapshot::insert`] would accept an entry with this key
    /// and cost (new key, or strictly lower cost than the stored one).
    /// Lets durable callers skip journal I/O for inserts that would be
    /// rejected anyway.
    pub fn would_accept(&self, key: u64, cost: f64) -> bool {
        match self.entries.iter().find(|e| e.key == key) {
            Some(existing) => cost < existing.cost,
            None => true,
        }
    }

    /// Inserts one entry with best-cost-per-key dedupe: a new key is
    /// appended; an existing key is replaced *in place* only when the new
    /// cost is strictly lower. Position stability keeps entry order — and
    /// therefore nearest-neighbour tie-breaking — independent of how many
    /// duplicates were folded in. Returns `true` when the entry was
    /// appended or replaced an existing one.
    ///
    /// Each call scans linearly for the key (`entries` is a public field,
    /// so a cached index could silently go stale); inserting N entries one
    /// at a time is O(N²). Bulk construction should go through
    /// [`Snapshot::merge`], which builds a key index once, or through
    /// `daisy::TuningDatabase`, which maintains one.
    pub fn insert(&mut self, entry: StoredEntry) -> bool {
        match self.entries.iter_mut().find(|e| e.key == entry.key) {
            Some(existing) => {
                if entry.cost < existing.cost {
                    *existing = entry;
                    true
                } else {
                    false
                }
            }
            None => {
                self.entries.push(entry);
                true
            }
        }
    }

    /// Merges another snapshot into this one, deduping by key and keeping
    /// the lower-cost recipe. Returns the number of entries that were
    /// appended or replaced. Runs in O(self + other) via a key index
    /// (entry-at-a-time [`Snapshot::insert`] would be quadratic here).
    pub fn merge(&mut self, other: &Snapshot) -> usize {
        let mut index: HashMap<u64, usize> = self
            .entries
            .iter()
            .enumerate()
            .map(|(pos, e)| (e.key, pos))
            .collect();
        let mut changed = 0;
        for entry in &other.entries {
            match index.get(&entry.key) {
                Some(&pos) => {
                    if entry.cost < self.entries[pos].cost {
                        self.entries[pos] = entry.clone();
                        changed += 1;
                    }
                }
                None => {
                    index.insert(entry.key, self.entries.len());
                    self.entries.push(entry.clone());
                    changed += 1;
                }
            }
        }
        changed
    }

    /// Garbage-collects the snapshot: drops identity recipes (they encode
    /// "no improvement found" and a scheduler falls back to -O3 without
    /// them) and folds duplicate keys down to the best-cost entry. Returns
    /// the number of entries removed.
    pub fn gc(&mut self) -> usize {
        let before = self.entries.len();
        // Best cost per key *among the survivors* (identity recipes are
        // dropped regardless): were identity entries allowed to set the
        // bar, a cheap identity duplicate would get a key's real recipe
        // discarded too, losing the key entirely.
        let mut best: HashMap<u64, f64> = HashMap::new();
        for e in &self.entries {
            if e.recipe.is_identity() {
                continue;
            }
            best.entry(e.key)
                .and_modify(|c| *c = c.min(e.cost))
                .or_insert(e.cost);
        }
        let mut kept: HashMap<u64, bool> = HashMap::new();
        self.entries.retain(|e| {
            if e.recipe.is_identity() {
                return false;
            }
            if e.cost > best[&e.key] {
                return false;
            }
            // Of several entries sharing the best cost, keep the first.
            !std::mem::replace(kept.entry(e.key).or_insert(false), true)
        });
        before - self.entries.len()
    }

    /// Summary statistics.
    pub fn stats(&self) -> StoreStats {
        let mut keys: Vec<u64> = self.entries.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        keys.dedup();
        StoreStats {
            entries: self.entries.len(),
            distinct_keys: keys.len(),
            identity_recipes: self
                .entries
                .iter()
                .filter(|e| e.recipe.is_identity())
                .count(),
            total_steps: self.entries.iter().map(|e| e.recipe.steps.len()).sum(),
            min_cost: self
                .entries
                .iter()
                .map(|e| e.cost)
                .min_by(|a, b| a.total_cmp(b)),
            max_cost: self
                .entries
                .iter()
                .map(|e| e.cost)
                .max_by(|a, b| a.total_cmp(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::expr::Var;
    use transforms::{Recipe, Transform};

    fn entry(key: u64, cost: f64, source: &str) -> StoredEntry {
        StoredEntry {
            key,
            cost,
            embedding: vec![1.0, 2.0, 3.0],
            recipe: Recipe::new(vec![Transform::Vectorize {
                iter: Var::new("j"),
            }]),
            chain: vec![Var::new("i"), Var::new("j")],
            source: source.to_string(),
        }
    }

    fn snapshot() -> Snapshot {
        let mut s = Snapshot::new();
        s.insert(entry(1, 0.5, "a"));
        s.insert(entry(2, 0.25, "b"));
        s
    }

    #[test]
    fn snapshot_round_trips_through_bytes_and_files() {
        let s = snapshot();
        let decoded = Snapshot::decode(&s.encode()).unwrap();
        assert_eq!(decoded, s);

        let dir = std::env::temp_dir().join(format!("tunestore-test-{}", std::process::id()));
        let path = dir.join("round.tunedb");
        s.save(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), s);
        assert_eq!(Snapshot::load_compatible(&path).unwrap(), s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = snapshot().encode();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(StoreError::BadMagic)
        ));
        let mut bytes = snapshot().encode();
        bytes[8] = 99; // version little-endian low byte
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(StoreError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn flipped_bits_fail_the_checksum() {
        let good = snapshot().encode();
        // Flip one bit in every byte position after the version field; each
        // must produce an error (checksum, truncation, or corrupt field) —
        // never a panic and never silent acceptance of different data.
        for pos in 12..good.len() {
            let mut bytes = good.clone();
            bytes[pos] ^= 0x40;
            match Snapshot::decode(&bytes) {
                Err(_) => {}
                Ok(decoded) => assert_eq!(
                    decoded,
                    snapshot(),
                    "byte {pos}: accepted bytes must decode identically"
                ),
            }
        }
    }

    #[test]
    fn truncations_never_panic() {
        let good = snapshot().encode();
        for cut in 0..good.len() {
            assert!(
                Snapshot::decode(&good[..cut]).is_err(),
                "a {cut}-byte prefix must not decode"
            );
        }
    }

    #[test]
    fn save_sweeps_stale_temp_files_of_the_same_target() {
        let dir = std::env::temp_dir().join(format!("tunestore-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.tunedb");
        // A temp file left behind by a save that died between write and
        // rename (note the foreign pid/seq), and one belonging to a
        // different target, which must survive.
        let stale = dir.join("s.tunedb.tmp.424242.7");
        let other = dir.join("other.tunedb.tmp.1.0");
        std::fs::write(&stale, b"half-written").unwrap();
        std::fs::write(&other, b"not ours").unwrap();
        snapshot().save(&path).unwrap();
        assert!(!stale.exists(), "stale temp of the same target swept");
        assert!(other.exists(), "other targets' temps untouched");
        assert_eq!(Snapshot::load(&path).unwrap(), snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_detected() {
        let mut s = snapshot();
        s.fingerprint = "some-other-machine".to_string();
        let dir = std::env::temp_dir().join(format!("tunestore-fp-{}", std::process::id()));
        let path = dir.join("other.tunedb");
        s.save(&path).unwrap();
        assert!(Snapshot::load(&path).is_ok());
        assert!(matches!(
            Snapshot::load_compatible(&path),
            Err(StoreError::FingerprintMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn insert_dedupes_by_key_keeping_best_cost() {
        let mut s = Snapshot::new();
        s.insert(entry(7, 0.5, "first"));
        s.insert(entry(8, 0.9, "other"));
        s.insert(entry(7, 0.4, "better"));
        s.insert(entry(7, 0.6, "worse"));
        assert_eq!(s.entries.len(), 2);
        assert_eq!(s.entries[0].source, "better");
        assert_eq!(s.entries[0].cost, 0.4);
        // Replacement happened in place: key 7 still precedes key 8.
        assert_eq!(s.entries[1].key, 8);
    }

    #[test]
    fn merge_keeps_best_cost_per_key() {
        let mut a = snapshot();
        let mut b = Snapshot::new();
        b.insert(entry(2, 0.1, "improved"));
        b.insert(entry(3, 1.0, "new"));
        let changed = a.merge(&b);
        assert_eq!(changed, 2);
        assert_eq!(a.entries.len(), 3);
        assert_eq!(
            a.entries.iter().find(|e| e.key == 2).unwrap().source,
            "improved"
        );
        // Merging the same thing again changes nothing.
        assert_eq!(a.merge(&b), 0);
    }

    #[test]
    fn gc_drops_identity_recipes_and_duplicate_keys() {
        let mut s = Snapshot::new();
        s.entries.push(entry(1, 0.5, "keep"));
        s.entries.push(StoredEntry {
            recipe: Recipe::identity(),
            ..entry(2, 0.1, "identity")
        });
        s.entries.push(entry(1, 0.9, "dup-worse"));
        s.entries.push(entry(1, 0.5, "dup-tied"));
        let removed = s.gc();
        assert_eq!(removed, 3);
        assert_eq!(s.entries.len(), 1);
        assert_eq!(s.entries[0].source, "keep");
    }

    #[test]
    fn gc_keeps_a_keys_real_recipe_despite_a_cheaper_identity_duplicate() {
        let mut s = Snapshot::new();
        s.entries.push(StoredEntry {
            recipe: Recipe::identity(),
            ..entry(5, 0.1, "identity-cheap")
        });
        s.entries.push(entry(5, 0.5, "real"));
        let removed = s.gc();
        assert_eq!(removed, 1);
        assert_eq!(s.entries.len(), 1);
        assert_eq!(
            s.entries[0].source, "real",
            "the identity duplicate must not drag the real recipe out with it"
        );
    }

    #[test]
    fn stats_summarize() {
        let stats = snapshot().stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.distinct_keys, 2);
        assert_eq!(stats.identity_recipes, 0);
        assert_eq!(stats.total_steps, 2);
        assert_eq!(stats.min_cost, Some(0.25));
        assert_eq!(stats.max_cost, Some(0.5));
        let empty = Snapshot::new().stats();
        assert_eq!(empty.entries, 0);
        assert_eq!(empty.min_cost, None);
    }
}
