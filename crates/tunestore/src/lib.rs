//! # tunestore — the persistent transfer-tuning database
//!
//! The paper's central artifact is a scheduling database of `(performance
//! embedding, transformation recipe)` pairs (§4, "Seeding a Scheduling
//! Database"). This crate gives that database a life beyond one process: a
//! dependency-free, versioned binary snapshot format keyed by the run-stable
//! `loop_ir::StructuralHasher`, so a database seeded once can warm-start
//! every later run — the "tuned once, reused everywhere" economics the
//! transfer-tuning line of work is built on.
//!
//! * [`codec`] — bounds-checked little-endian primitives (no serde is
//!   available offline, so the format is hand-rolled),
//! * [`entry`] — the stored record ([`StoredEntry`]) and the recipe codec
//!   built on the stable wire tags in `transforms::recipe`,
//! * [`snapshot`] — the file format (magic, version, environment
//!   fingerprint, per-section checksums) and the set-level operations:
//!   best-cost-per-key [`Snapshot::insert`]/[`Snapshot::merge`], and
//!   [`Snapshot::gc`],
//! * [`fingerprint`] — the environment fingerprint warm starts validate,
//! * [`storage`] — the pluggable [`Storage`] trait with the real
//!   [`OsStorage`] and the deterministic fault-injecting [`FaultStorage`]
//!   used by the crash-matrix harness,
//! * [`journal`] — the append-only, torn-tail-tolerant journal that makes
//!   inserts durable between snapshots,
//! * [`store`] — [`DurableStore`], the crash-safe handle combining both
//!   files with quarantine-based recovery,
//! * [`health`] — the [`StoreHealth`] report recovery produces instead of
//!   erroring.
//!
//! The `tunedb` binary in this crate inspects, verifies, merges and
//! garbage-collects store files from the command line; the `daisy` crate's
//! `DaisyScheduler::warm_start` / `persist` wire snapshots into the
//! scheduler.
//!
//! # Guarantees
//!
//! * **Deterministic bytes**: encoding the same snapshot twice yields
//!   identical files; entry order is preserved, so a warm-started database
//!   is byte-for-byte the database that was persisted.
//! * **Panic-free decoding**: corrupted, truncated or adversarial input
//!   returns [`StoreError`], never panics and never triggers unbounded
//!   allocation (claimed lengths are validated against the bytes actually
//!   present).
//! * **Versioned**: files carry a magic, a format version and per-section
//!   FNV-1a checksums; readers reject anything they cannot prove intact.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod entry;
pub mod error;
pub mod fingerprint;
pub mod health;
pub mod journal;
pub mod snapshot;
pub mod storage;
pub mod store;

pub use entry::StoredEntry;
pub use error::{Result, StoreError};
pub use fingerprint::environment_fingerprint;
pub use health::{SourceState, StoreHealth};
pub use snapshot::{Snapshot, StoreStats, FORMAT_VERSION, MAGIC};
pub use storage::{
    atomic_write, is_power_cut, Durability, FaultPlan, FaultStorage, OpKind, OsStorage, Storage,
};
pub use store::DurableStore;
