//! The crash-safe store: a snapshot plus an append-only journal behind
//! one handle, with recovery that degrades instead of erroring.
//!
//! # Write path
//!
//! [`DurableStore::insert`] appends one checksummed record to the journal
//! and fsyncs it *before* reporting success — the fsync return is the
//! acknowledgement point. Rejected inserts (a key already stored at equal
//! or lower cost) do no I/O at all. [`DurableStore::compact`] folds the
//! journal into the snapshot: it writes the snapshot atomically (temp
//! file, fsync, rename, directory fsync) and then resets the journal to a
//! fresh header the same way. A crash between those two steps is harmless
//! because journal replay is idempotent under the best-cost merge.
//!
//! # Recovery
//!
//! [`DurableStore::open`] never fails on damaged files; it degrades:
//!
//! * a valid snapshot/journal is loaded;
//! * a journal with a torn tail is truncated back to its longest valid
//!   prefix (every acknowledged record is in that prefix, because
//!   acknowledgement required the fsync);
//! * a file that fails validation is **quarantined** — renamed to
//!   `<name>.corrupt` so the damage is preserved for inspection but can
//!   never poison a later open;
//! * a valid file with a different environment fingerprint is moved to
//!   `<name>.foreign` (its costs are not transferable, but it is not
//!   damaged, so it is kept intact).
//!
//! What happened is reported in a [`StoreHealth`] available from
//! [`DurableStore::health`]. Only real I/O failures during recovery
//! itself (e.g. the power cut again) return an error.
//!
//! # Failed appends
//!
//! A failed journal append (full disk, injected fault) can leave a torn
//! record in the file. Replay stops at the first bad record, so a later
//! acknowledged append after a torn one would be unreachable — silently
//! lost. The store therefore rolls the journal back to its last
//! known-good length after any failed append; if even that rollback
//! fails, the store *wedges*: further inserts are refused until a
//! [`DurableStore::compact`] rebuilds both files.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::{Result, StoreError};
use crate::health::{SourceState, StoreHealth};
use crate::journal;
use crate::snapshot::Snapshot;
use crate::storage::{atomic_write, Durability, Storage};
use crate::StoredEntry;

/// The journal sibling of a snapshot path: `store.tunedb` →
/// `store.tunedb.journal`.
pub fn journal_path(snapshot_path: &Path) -> PathBuf {
    sibling(snapshot_path, "journal")
}

/// `<name>.<suffix>` next to `path` (quarantine and journal naming).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    match path.file_name() {
        Some(name) => path.with_file_name(format!("{}.{suffix}", name.to_string_lossy())),
        None => path.with_file_name(suffix),
    }
}

/// Moves a damaged or foreign file aside to `<name>.<suffix>`. Best-effort:
/// on failure the file is left in place (and `None` returned); the next
/// open will try again.
fn quarantine(
    storage: &dyn Storage,
    path: &Path,
    suffix: &str,
    durability: Durability,
) -> Option<PathBuf> {
    let target = sibling(path, suffix);
    storage.rename(path, &target).ok()?;
    if durability.sync_dirs {
        if let Some(parent) = path.parent() {
            let _ = storage.sync_dir(parent);
        }
    }
    Some(target)
}

/// Publishes what recovery found and did at open time. Repairs and
/// quarantines are rare but load-bearing events; the counters make them
/// visible in a profile without anyone watching logs.
fn record_recovery(health: &StoreHealth) {
    if !telemetry::enabled() {
        return;
    }
    telemetry::counter("tunestore.opens", 1);
    telemetry::counter("tunestore.replay.records", health.journal.entries() as u64);
    for state in [&health.snapshot, &health.journal] {
        match state {
            SourceState::TruncatedTail { dropped_bytes, .. } => {
                telemetry::counter("tunestore.replay.torn_tail_repairs", 1);
                telemetry::counter("tunestore.replay.dropped_bytes", *dropped_bytes as u64);
            }
            SourceState::Quarantined { .. } => telemetry::counter("tunestore.quarantines", 1),
            SourceState::Foreign { .. } => telemetry::counter("tunestore.foreign_files", 1),
            SourceState::Intact { .. } | SourceState::Missing => {}
        }
    }
}

/// A tuning store with a durable write path and degrading recovery. See
/// the module docs for the contract.
#[derive(Debug)]
pub struct DurableStore {
    storage: Arc<dyn Storage>,
    path: PathBuf,
    journal_path: PathBuf,
    durability: Durability,
    view: Snapshot,
    health: StoreHealth,
    /// Length of the journal's known-good prefix (header + acked records).
    journal_len: u64,
    /// Set when a failed append could not be rolled back; inserts are
    /// refused until a compact rebuilds the journal.
    wedged: bool,
}

impl DurableStore {
    /// Opens (or creates) the store at `path` with full durability,
    /// recovering whatever the on-disk state holds. `fingerprint` is the
    /// identity the caller requires; files carrying a different one are
    /// moved aside, not merged.
    pub fn open(
        storage: Arc<dyn Storage>,
        path: impl AsRef<Path>,
        fingerprint: &str,
    ) -> Result<DurableStore> {
        DurableStore::open_with(storage, path, fingerprint, Durability::FULL)
    }

    /// [`DurableStore::open`] with an explicit [`Durability`] setting. The
    /// weakened settings exist for mutation-testing the fault harness;
    /// production callers use [`Durability::FULL`].
    pub fn open_with(
        storage: Arc<dyn Storage>,
        path: impl AsRef<Path>,
        fingerprint: &str,
        durability: Durability,
    ) -> Result<DurableStore> {
        let path = path.as_ref().to_path_buf();
        let journal_path = journal_path(&path);
        let mut view = Snapshot {
            fingerprint: fingerprint.to_string(),
            entries: Vec::new(),
        };

        let snapshot_state = if storage.exists(&path) {
            let bytes = storage.read(&path)?;
            match Snapshot::decode(&bytes) {
                Ok(snapshot) if snapshot.fingerprint == fingerprint => {
                    let entries = snapshot.entries.len();
                    view.entries = snapshot.entries;
                    SourceState::Intact { entries }
                }
                Ok(snapshot) => SourceState::Foreign {
                    found: snapshot.fingerprint,
                    moved_to: quarantine(storage.as_ref(), &path, "foreign", durability),
                },
                Err(error) => SourceState::Quarantined {
                    reason: error.to_string(),
                    moved_to: quarantine(storage.as_ref(), &path, "corrupt", durability),
                },
            }
        } else {
            SourceState::Missing
        };

        let mut journal_len = None;
        let journal_state = if storage.exists(&journal_path) {
            let bytes = storage.read(&journal_path)?;
            match journal::replay(&bytes) {
                Ok(replay) if replay.fingerprint == fingerprint => {
                    let entries = replay.entries.len();
                    for entry in replay.entries {
                        view.insert(entry);
                    }
                    journal_len = Some(replay.valid_len as u64);
                    if replay.dropped_bytes > 0 {
                        // Durably pin the valid prefix so the torn bytes
                        // can never resurface under a future append.
                        storage.truncate(&journal_path, replay.valid_len as u64)?;
                        if durability.sync_data {
                            storage.sync_file(&journal_path)?;
                        }
                        SourceState::TruncatedTail {
                            entries,
                            dropped_bytes: replay.dropped_bytes,
                        }
                    } else {
                        SourceState::Intact { entries }
                    }
                }
                Ok(replay) => SourceState::Foreign {
                    found: replay.fingerprint,
                    moved_to: quarantine(storage.as_ref(), &journal_path, "foreign", durability),
                },
                Err(error) => SourceState::Quarantined {
                    reason: error.to_string(),
                    moved_to: quarantine(storage.as_ref(), &journal_path, "corrupt", durability),
                },
            }
        } else {
            SourceState::Missing
        };

        // Make sure a journal with a valid header exists (atomically, so a
        // crash here leaves either no journal or a complete header).
        let journal_len = match journal_len {
            Some(len) => len,
            None => {
                let header = journal::encode_header(fingerprint);
                atomic_write(storage.as_ref(), &journal_path, &header, durability)?;
                header.len() as u64
            }
        };

        let health = StoreHealth {
            snapshot: snapshot_state,
            journal: journal_state,
            entries: view.entries.len(),
        };
        record_recovery(&health);
        Ok(DurableStore {
            storage,
            path,
            journal_path,
            durability,
            view,
            health,
            journal_len,
            wedged: false,
        })
    }

    /// Opens a store accepting whatever fingerprint its files carry (the
    /// snapshot's, else the journal's, else this environment's) — the
    /// `tunedb recover`/`compact` entry point, which must work on stores
    /// written by other machines.
    pub fn open_existing(
        storage: Arc<dyn Storage>,
        path: impl AsRef<Path>,
        durability: Durability,
    ) -> Result<DurableStore> {
        let path = path.as_ref();
        let journal_path = journal_path(path);
        let fingerprint = storage
            .read(path)
            .ok()
            .and_then(|bytes| Snapshot::decode(&bytes).ok())
            .map(|snapshot| snapshot.fingerprint)
            .or_else(|| {
                let bytes = storage.read(&journal_path).ok()?;
                Some(journal::replay(&bytes).ok()?.fingerprint)
            })
            .unwrap_or_else(crate::fingerprint::environment_fingerprint);
        DurableStore::open_with(storage, path, &fingerprint, durability)
    }

    /// Inserts one entry with best-cost semantics, journaling it durably
    /// before acknowledging. Returns `Ok(false)` — with no I/O — when the
    /// key is already stored at equal or lower cost. An `Err` means the
    /// entry is **not** acknowledged: it may or may not survive a crash,
    /// but recovery will still yield a consistent prefix.
    pub fn insert(&mut self, entry: StoredEntry) -> Result<bool> {
        if !self.view.would_accept(entry.key, entry.cost) {
            return Ok(false);
        }
        if self.wedged {
            return Err(StoreError::Io(std::io::Error::other(
                "journal wedged by an earlier failed append; compact to recover",
            )));
        }
        let record = journal::encode_record(&entry);
        let appended = self
            .storage
            .append(&self.journal_path, &record)
            .and_then(|()| {
                if self.durability.sync_data {
                    self.storage.sync_file(&self.journal_path)
                } else {
                    Ok(())
                }
            });
        match appended {
            Ok(()) => {
                telemetry::counter("tunestore.journal.appends", 1);
                telemetry::counter("tunestore.journal.bytes", record.len() as u64);
                if self.durability.sync_data {
                    telemetry::counter("tunestore.journal.fsyncs", 1);
                }
                self.journal_len += record.len() as u64;
                self.view.insert(entry);
                self.health.entries = self.view.entries.len();
                Ok(true)
            }
            Err(error) => {
                telemetry::counter("tunestore.journal.failed_appends", 1);
                // Roll back to the known-good length so a torn record can
                // never orphan later acknowledged appends at replay time.
                let rolled_back = self
                    .storage
                    .truncate(&self.journal_path, self.journal_len)
                    .and_then(|()| self.storage.sync_file(&self.journal_path));
                if rolled_back.is_err() {
                    self.wedged = true;
                }
                Err(error.into())
            }
        }
    }

    /// Folds the journal into the snapshot: saves the current view
    /// atomically, then resets the journal to a fresh header. Crash-safe
    /// at every step — a crash between the snapshot save and the journal
    /// reset merely replays entries the snapshot already holds (replay is
    /// idempotent under the best-cost merge). Also clears a wedged state.
    pub fn compact(&mut self) -> Result<()> {
        let _span = telemetry::span("compact");
        telemetry::counter("tunestore.compactions", 1);
        self.view
            .save_with(self.storage.as_ref(), &self.path, self.durability)?;
        let header = journal::encode_header(&self.view.fingerprint);
        atomic_write(
            self.storage.as_ref(),
            &self.journal_path,
            &header,
            self.durability,
        )?;
        self.journal_len = header.len() as u64;
        self.wedged = false;
        self.health = StoreHealth {
            snapshot: SourceState::Intact {
                entries: self.view.entries.len(),
            },
            journal: SourceState::Intact { entries: 0 },
            entries: self.view.entries.len(),
        };
        Ok(())
    }

    /// The recovered view (snapshot ∪ journal under best-cost merge).
    pub fn snapshot(&self) -> &Snapshot {
        &self.view
    }

    /// The recovered entries, in deterministic order (snapshot order, then
    /// first-insertion order of journal-only keys).
    pub fn entries(&self) -> &[StoredEntry] {
        &self.view.entries
    }

    /// Number of entries in the view.
    pub fn len(&self) -> usize {
        self.view.entries.len()
    }

    /// True when the view holds no entries.
    pub fn is_empty(&self) -> bool {
        self.view.entries.is_empty()
    }

    /// What recovery found and did at open time (updated by
    /// [`DurableStore::compact`]).
    pub fn health(&self) -> &StoreHealth {
        &self.health
    }

    /// True when a failed append could not be rolled back and inserts are
    /// refused until the next [`DurableStore::compact`].
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// The snapshot path this store serves.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The journal path this store appends to.
    pub fn journal_file(&self) -> &Path {
        &self.journal_path
    }

    /// Bytes in the journal's known-good prefix (test/diagnostic).
    pub fn journal_len(&self) -> u64 {
        self.journal_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FaultPlan, FaultStorage, OpKind};
    use loop_ir::expr::Var;
    use transforms::{Recipe, Transform};

    const FP: &str = "test-fp";

    fn entry(key: u64, cost: f64) -> StoredEntry {
        StoredEntry {
            key,
            cost,
            embedding: vec![1.0, 2.0],
            recipe: Recipe::new(vec![Transform::Vectorize {
                iter: Var::new("j"),
            }]),
            chain: vec![Var::new("i"), Var::new("j")],
            source: format!("s{key}"),
        }
    }

    fn store_path() -> PathBuf {
        PathBuf::from("dir/store.tunedb")
    }

    fn open(storage: &Arc<FaultStorage>) -> DurableStore {
        DurableStore::open(Arc::clone(storage) as Arc<dyn Storage>, store_path(), FP).unwrap()
    }

    #[test]
    fn inserts_survive_reopen_without_compaction() {
        let storage = Arc::new(FaultStorage::default());
        let mut store = open(&storage);
        assert!(store.insert(entry(1, 0.5)).unwrap());
        assert!(store.insert(entry(2, 0.25)).unwrap());
        assert!(!store.insert(entry(1, 0.9)).unwrap(), "worse cost rejected");
        assert!(store.insert(entry(1, 0.4)).unwrap(), "better cost accepted");
        drop(store);

        let store = open(&storage);
        assert_eq!(store.len(), 2);
        assert_eq!(store.entries()[0].cost, 0.4);
        assert!(store.health().is_clean());
    }

    #[test]
    fn acked_inserts_survive_a_crash() {
        let storage = Arc::new(FaultStorage::default());
        let mut store = open(&storage);
        store.insert(entry(1, 0.5)).unwrap();
        store.insert(entry(2, 0.25)).unwrap();
        storage.crash();
        let store = open(&storage);
        assert_eq!(store.len(), 2, "both inserts were acknowledged");
    }

    #[test]
    fn compact_folds_journal_into_snapshot() {
        let storage = Arc::new(FaultStorage::default());
        let mut store = open(&storage);
        store.insert(entry(1, 0.5)).unwrap();
        store.insert(entry(2, 0.25)).unwrap();
        let journal_before = store.journal_len();
        store.compact().unwrap();
        assert!(store.journal_len() < journal_before);
        storage.crash();
        let store = open(&storage);
        assert_eq!(store.len(), 2);
        assert!(store.health().is_clean());
        assert_eq!(store.health().snapshot.entries(), 2);
        assert_eq!(store.health().journal.entries(), 0);
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_and_store_degrades() {
        let storage = Arc::new(FaultStorage::default());
        let mut store = open(&storage);
        store.insert(entry(1, 0.5)).unwrap();
        store.compact().unwrap();
        drop(store);
        // Smash a byte in the middle of the snapshot.
        storage.corrupt_byte(&store_path(), 30, 0xFF);
        let store = open(&storage);
        assert!(matches!(
            store.health().snapshot,
            SourceState::Quarantined { .. }
        ));
        assert!(storage.exists(&PathBuf::from("dir/store.tunedb.corrupt")));
        assert!(!storage.exists(&store_path()));
        // Journal was reset by the compact, so the view is empty — but the
        // open *succeeded* and the store is writable again.
        let mut store = store;
        assert!(store.insert(entry(3, 0.1)).unwrap());
    }

    #[test]
    fn corrupt_journal_header_is_quarantined() {
        let storage = Arc::new(FaultStorage::default());
        let mut store = open(&storage);
        store.insert(entry(1, 0.5)).unwrap();
        drop(store);
        storage.corrupt_byte(&journal_path(&store_path()), 9, 0xFF);
        let store = open(&storage);
        assert!(matches!(
            store.health().journal,
            SourceState::Quarantined { .. }
        ));
        assert!(storage.exists(&PathBuf::from("dir/store.tunedb.journal.corrupt")));
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn torn_journal_tail_is_truncated_and_reported() {
        let storage = Arc::new(FaultStorage::default());
        let mut store = open(&storage);
        store.insert(entry(1, 0.5)).unwrap();
        let good_len = store.journal_len();
        store.insert(entry(2, 0.25)).unwrap();
        drop(store);
        // Tear the second record by hand.
        let jpath = journal_path(&store_path());
        let torn_len = good_len + 3;
        storage
            .truncate(&jpath, torn_len)
            .expect("test setup truncate");
        let store = open(&storage);
        assert_eq!(store.len(), 1);
        assert!(matches!(
            store.health().journal,
            SourceState::TruncatedTail {
                entries: 1,
                dropped_bytes: 3
            }
        ));
        assert_eq!(store.journal_len(), good_len);
        // A second open sees a clean store: the tail was durably removed.
        drop(store);
        let store = open(&storage);
        assert!(store.health().is_clean());
    }

    #[test]
    fn foreign_files_are_moved_aside_not_destroyed() {
        let storage = Arc::new(FaultStorage::default());
        {
            let mut other = DurableStore::open(
                Arc::clone(&storage) as Arc<dyn Storage>,
                store_path(),
                "other-machine",
            )
            .unwrap();
            other.insert(entry(1, 0.5)).unwrap();
            other.compact().unwrap();
            other.insert(entry(2, 0.25)).unwrap();
        }
        let store = open(&storage);
        assert_eq!(store.len(), 0);
        assert!(matches!(
            &store.health().snapshot,
            SourceState::Foreign { found, .. } if found == "other-machine"
        ));
        assert!(matches!(
            store.health().journal,
            SourceState::Foreign { .. }
        ));
        let foreign = PathBuf::from("dir/store.tunedb.foreign");
        assert!(storage.exists(&foreign), "foreign snapshot preserved");
        let bytes = storage.read(&foreign).unwrap();
        assert_eq!(
            Snapshot::decode(&bytes).unwrap().fingerprint,
            "other-machine"
        );
    }

    #[test]
    fn failed_append_rolls_back_and_later_inserts_still_replay() {
        let storage = Arc::new(FaultStorage::default());
        let mut store = open(&storage);
        store.insert(entry(1, 0.5)).unwrap();
        // Fail the next append cleanly (applied partially? no — clean
        // fail_op is not applied at all; use disk budget for partial).
        storage.set_plan(FaultPlan {
            fail_op: Some((OpKind::Append, 1)),
            ..FaultPlan::default()
        });
        assert!(store.insert(entry(2, 0.25)).is_err());
        assert!(!store.is_wedged());
        // The store keeps working, and everything acked replays.
        assert!(store.insert(entry(3, 0.75)).unwrap());
        drop(store);
        let store = open(&storage);
        assert!(store.health().is_clean());
        let keys: Vec<u64> = store.entries().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![1, 3]);
    }

    #[test]
    fn partial_append_under_enospc_cannot_orphan_later_acks() {
        let storage = Arc::new(FaultStorage::default());
        let mut store = open(&storage);
        store.insert(entry(1, 0.5)).unwrap();
        // The next record is applied only partially, then ENOSPC: leave
        // 10 spare bytes over what has been written so far.
        let budget = storage.file_len(&journal_path(&store_path())).unwrap() as u64 + 10;
        storage.set_plan(FaultPlan {
            disk_budget: Some(budget),
            ..FaultPlan::default()
        });
        assert!(store.insert(entry(2, 0.25)).is_err());
        // Rollback truncated the torn record; lift the budget and insert.
        storage.set_plan(FaultPlan::default());
        assert!(store.insert(entry(3, 0.75)).unwrap());
        drop(store);
        let store = open(&storage);
        let keys: Vec<u64> = store.entries().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![1, 3], "the acked insert after ENOSPC replays");
    }

    #[test]
    fn wedged_store_refuses_inserts_until_compact() {
        let storage = Arc::new(FaultStorage::default());
        let mut store = open(&storage);
        store.insert(entry(1, 0.5)).unwrap();
        // Double fault: the next append runs out of disk mid-record (torn
        // bytes land in the file) and the rollback truncate fails too.
        let used = storage.file_len(&journal_path(&store_path())).unwrap() as u64;
        storage.set_plan(FaultPlan {
            disk_budget: Some(used + 3),
            fail_op: Some((OpKind::Truncate, 0)),
            ..FaultPlan::default()
        });
        assert!(store.insert(entry(2, 0.25)).is_err());
        assert!(store.is_wedged(), "failed rollback must wedge the store");
        storage.set_plan(FaultPlan::default());
        assert!(store.insert(entry(4, 0.1)).is_err(), "wedged: no appends");
        store.compact().unwrap();
        assert!(!store.is_wedged());
        assert!(store.insert(entry(4, 0.1)).unwrap());
        drop(store);
        let store = open(&storage);
        let keys: Vec<u64> = store.entries().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![1, 4]);
    }

    #[test]
    fn open_existing_adopts_the_on_disk_fingerprint() {
        let storage = Arc::new(FaultStorage::default());
        {
            let mut store = DurableStore::open(
                Arc::clone(&storage) as Arc<dyn Storage>,
                store_path(),
                "far-away-machine",
            )
            .unwrap();
            store.insert(entry(1, 0.5)).unwrap();
            store.compact().unwrap();
        }
        let store = DurableStore::open_existing(
            Arc::clone(&storage) as Arc<dyn Storage>,
            store_path(),
            Durability::FULL,
        )
        .unwrap();
        assert_eq!(store.snapshot().fingerprint, "far-away-machine");
        assert_eq!(store.len(), 1);
        assert!(store.health().is_clean());
    }
}
