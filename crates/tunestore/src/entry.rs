//! The stored form of one tuning-database entry and its binary codec.

use loop_ir::expr::Var;
use transforms::{blas_from_wire, blas_to_wire, Recipe, Transform, TransformTag};

use crate::codec::{ByteReader, ByteWriter};
use crate::error::{Result, StoreError};

/// One persisted tuning-database record: the structural-hash key of the
/// (normalized) source nest, the nest-scoped cost-model seconds of the
/// winning recipe, the performance embedding, the recipe, the perfect-chain
/// iterators it refers to, and the provenance string.
///
/// This mirrors `daisy::DatabaseEntry` field for field; it lives here (with
/// the embedding as a plain `Vec<f64>`) so the codec does not depend on the
/// scheduler crate.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEntry {
    /// Structural hash of the source loop nest (`loop_ir::structural_hash_node`).
    pub key: u64,
    /// Nest-scoped cost-model seconds of the winning recipe when it was
    /// found (the seeding program's whole-program cost minus the other
    /// nodes' baseline); used to rank duplicate keys during insert/merge,
    /// comparably across seeding programs.
    pub cost: f64,
    /// Performance-embedding feature vector of the source nest.
    pub embedding: Vec<f64>,
    /// The optimization recipe.
    pub recipe: Recipe,
    /// Perfect-chain iterators of the source nest, outermost first.
    pub chain: Vec<Var>,
    /// Name of the benchmark / nest the entry was derived from.
    pub source: String,
}

impl StoredEntry {
    /// Encodes the entry onto a writer.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.key);
        w.f64(self.cost);
        w.u32(self.embedding.len() as u32);
        for &f in &self.embedding {
            w.f64(f);
        }
        encode_recipe(&self.recipe, w);
        w.u32(self.chain.len() as u32);
        for v in &self.chain {
            w.string(v.as_str());
        }
        w.string(&self.source);
    }

    /// Decodes one entry from a reader. Never panics: corrupted or truncated
    /// input yields an `Err`.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let key = r.u64("entry key")?;
        let cost = r.f64("entry cost")?;
        let dim = r.count(8, "embedding length")?;
        let mut embedding = Vec::with_capacity(dim);
        for _ in 0..dim {
            embedding.push(r.f64("embedding feature")?);
        }
        let recipe = decode_recipe(r)?;
        let chain_len = r.count(4, "chain length")?;
        let mut chain = Vec::with_capacity(chain_len);
        for _ in 0..chain_len {
            chain.push(Var::new(r.string("chain iterator")?));
        }
        let source = r.string("entry source")?;
        Ok(StoredEntry {
            key,
            cost,
            embedding,
            recipe,
            chain,
            source,
        })
    }
}

/// Encodes a recipe: the BLAS marker byte, then the tagged step list.
pub fn encode_recipe(recipe: &Recipe, w: &mut ByteWriter) {
    w.u8(blas_to_wire(recipe.blas));
    w.u32(recipe.steps.len() as u32);
    for step in &recipe.steps {
        w.u8(step.tag() as u8);
        match step {
            Transform::Interchange { order } => {
                w.u32(order.len() as u32);
                for v in order {
                    w.string(v.as_str());
                }
            }
            Transform::Tile { tiles } => {
                w.u32(tiles.len() as u32);
                for (v, size) in tiles {
                    w.string(v.as_str());
                    w.i64(*size);
                }
            }
            Transform::Parallelize { iter } | Transform::Vectorize { iter } => {
                w.string(iter.as_str());
            }
            Transform::Unroll { iter, factor } => {
                w.string(iter.as_str());
                w.u32(*factor);
            }
            Transform::Fission => {}
        }
    }
}

/// Decodes a recipe written by [`encode_recipe`].
pub fn decode_recipe(r: &mut ByteReader<'_>) -> Result<Recipe> {
    let blas_byte = r.u8("blas marker")?;
    let blas = blas_from_wire(blas_byte)
        .ok_or_else(|| StoreError::Corrupt(format!("unknown BLAS marker byte {blas_byte}")))?;
    let step_count = r.count(1, "step count")?;
    let mut steps = Vec::with_capacity(step_count);
    for _ in 0..step_count {
        let tag_byte = r.u8("step tag")?;
        let tag = TransformTag::from_wire(tag_byte)
            .ok_or_else(|| StoreError::Corrupt(format!("unknown transform tag {tag_byte}")))?;
        steps.push(match tag {
            TransformTag::Interchange => {
                let n = r.count(4, "interchange order length")?;
                let mut order = Vec::with_capacity(n);
                for _ in 0..n {
                    order.push(Var::new(r.string("interchange iterator")?));
                }
                Transform::Interchange { order }
            }
            TransformTag::Tile => {
                let n = r.count(12, "tile count")?;
                let mut tiles = Vec::with_capacity(n);
                for _ in 0..n {
                    let v = Var::new(r.string("tile iterator")?);
                    let size = r.i64("tile size")?;
                    tiles.push((v, size));
                }
                Transform::Tile { tiles }
            }
            TransformTag::Parallelize => Transform::Parallelize {
                iter: Var::new(r.string("parallelize iterator")?),
            },
            TransformTag::Vectorize => Transform::Vectorize {
                iter: Var::new(r.string("vectorize iterator")?),
            },
            TransformTag::Unroll => Transform::Unroll {
                iter: Var::new(r.string("unroll iterator")?),
                factor: r.u32("unroll factor")?,
            },
            TransformTag::Fission => Transform::Fission,
        });
    }
    Ok(Recipe { steps, blas })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::nest::BlasKind;

    fn sample_entry() -> StoredEntry {
        StoredEntry {
            key: 0x1234_5678_9ABC_DEF0,
            cost: 0.0123,
            embedding: vec![1.0, -2.5, 0.0, 3.25],
            recipe: Recipe::new(vec![
                Transform::Interchange {
                    order: vec![Var::new("i"), Var::new("k"), Var::new("j")],
                },
                Transform::Tile {
                    tiles: vec![(Var::new("i"), 32), (Var::new("j"), 64)],
                },
                Transform::Parallelize {
                    iter: Var::new("i_t"),
                },
                Transform::Vectorize {
                    iter: Var::new("j"),
                },
                Transform::Unroll {
                    iter: Var::new("k"),
                    factor: 4,
                },
                Transform::Fission,
            ]),
            chain: vec![Var::new("i"), Var::new("k"), Var::new("j")],
            source: "gemm#0".to_string(),
        }
    }

    #[test]
    fn entry_round_trips() {
        let entry = sample_entry();
        let mut w = ByteWriter::new();
        entry.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = StoredEntry::decode(&mut r).unwrap();
        assert_eq!(decoded, entry);
        assert!(r.is_exhausted());
    }

    #[test]
    fn blas_recipe_round_trips() {
        let mut entry = sample_entry();
        entry.recipe = Recipe::blas(BlasKind::Syr2k);
        let mut w = ByteWriter::new();
        entry.encode(&mut w);
        let bytes = w.into_bytes();
        let decoded = StoredEntry::decode(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(decoded.recipe.blas, Some(BlasKind::Syr2k));
        assert!(decoded.recipe.steps.is_empty());
    }

    #[test]
    fn every_truncation_point_errors() {
        let entry = sample_entry();
        let mut w = ByteWriter::new();
        entry.encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                StoredEntry::decode(&mut r).is_err(),
                "decoding a {cut}-byte prefix must fail"
            );
        }
    }

    #[test]
    fn unknown_tags_are_corrupt() {
        let mut w = ByteWriter::new();
        w.u8(77); // bogus BLAS marker
        let bytes = w.into_bytes();
        assert!(matches!(
            decode_recipe(&mut ByteReader::new(&bytes)),
            Err(StoreError::Corrupt(_))
        ));
        let mut w = ByteWriter::new();
        w.u8(0); // blas: none
        w.u32(1); // one step
        w.u8(250); // bogus transform tag
        let bytes = w.into_bytes();
        assert!(matches!(
            decode_recipe(&mut ByteReader::new(&bytes)),
            Err(StoreError::Corrupt(_))
        ));
    }
}
