//! Errors of the tuning-store codec and file format.

use std::fmt;

/// Everything that can go wrong reading, writing or validating a store file.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error while reading or writing the store file.
    Io(std::io::Error),
    /// The file does not start with the store magic — not a tuning store.
    BadMagic,
    /// The file uses a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The file ended in the middle of a field.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// A section's stored checksum does not match its contents.
    ChecksumMismatch {
        /// Which section failed ("header" or "entries").
        section: &'static str,
    },
    /// A field decoded to a value no encoder produces (bad tag, bad UTF-8,
    /// an impossible length, …).
    Corrupt(String),
    /// The store was produced under a different environment fingerprint than
    /// the caller requires (costs are not transferable between machines).
    FingerprintMismatch {
        /// Fingerprint recorded in the file.
        found: String,
        /// Fingerprint of the running environment.
        expected: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a tuning store (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported store format version {v}")
            }
            StoreError::Truncated { context } => {
                write!(f, "store file truncated while reading {context}")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in {section} section")
            }
            StoreError::Corrupt(what) => write!(f, "corrupt store: {what}"),
            StoreError::FingerprintMismatch { found, expected } => write!(
                f,
                "store fingerprint {found:?} does not match this environment ({expected:?})"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;
