//! The machine/environment fingerprint recorded in store headers.

/// Fingerprint of the running environment.
///
/// Recipes transfer across machines, but the *costs* stored alongside them
/// come from the analytical machine model evaluated in this build, so a
/// store is only trusted for warm starts when it was produced under the same
/// fingerprint. The fingerprint deliberately excludes anything unstable
/// (hostnames, core counts, clock speeds): it captures the facts that change
/// the bit patterns a store round-trips — target architecture, operating
/// system family, and the store format version itself.
pub fn environment_fingerprint() -> String {
    format!(
        "{}-{}-fmt{}",
        std::env::consts::ARCH,
        std::env::consts::OS,
        crate::snapshot::FORMAT_VERSION
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_within_a_process() {
        assert_eq!(environment_fingerprint(), environment_fingerprint());
        assert!(environment_fingerprint().contains("fmt"));
    }
}
