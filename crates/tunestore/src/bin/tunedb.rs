//! `tunedb` — command-line inspector for persistent tuning stores.
//!
//! ```text
//! tunedb stats  <store>             summary statistics
//! tunedb inspect <store> [limit]    per-entry listing (default 20 entries)
//! tunedb verify <store> [--deep]    decode + checksum + fingerprint check;
//!                                   --deep also validates the journal
//! tunedb merge  <out> <in> [<in>..] merge stores, best cost per key wins
//! tunedb gc     <store>             drop identity recipes / duplicate keys
//! tunedb recover <store>            recover snapshot + journal, quarantine
//!                                   damage, report the health line
//! tunedb compact <store>            fold the journal into the snapshot
//! ```
//!
//! `verify --deep` is strictly read-only: it reports damage without moving
//! or truncating anything, so it composes as a gate (`verify --deep f &&
//! use f`). `recover` is the repairing counterpart: it quarantines what it
//! cannot trust and exits 0 once the store is consistent again, printing
//! what it did.
//!
//! Every failure — a missing snapshot path, a corrupt or truncated store, an
//! unwritable output — exits with a non-zero status and a single
//! `tunedb: <path>: <reason>` diagnostic on stderr (never a panic or
//! backtrace), so the binary composes soundly in scripts and CI gates.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use tunestore::store::journal_path;
use tunestore::{journal, Durability, DurableStore, OsStorage, Snapshot, StoreError};

/// A CLI failure: the offending path plus the underlying store error, so the
/// one-line diagnostic always names the file it is about.
struct Failure {
    path: String,
    error: StoreError,
}

type CliResult = Result<(), Failure>;

/// Attaches a path to a [`StoreError`], for `map_err(at(path))`.
fn at(path: &str) -> impl FnOnce(StoreError) -> Failure + '_ {
    move |error| Failure {
        path: path.to_string(),
        error,
    }
}

/// Loads a snapshot, attaching the path to any failure.
fn load(path: &str) -> Result<Snapshot, Failure> {
    Snapshot::load(path).map_err(at(path))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") if args.len() == 2 => stats(&args[1]),
        Some("inspect") if args.len() == 2 || args.len() == 3 => {
            let limit = match args.get(2).map(|s| s.parse::<usize>()) {
                None => 20,
                Some(Ok(limit)) => limit,
                Some(Err(_)) => {
                    eprintln!("tunedb: inspect limit {:?} is not a number", args[2]);
                    return ExitCode::from(2);
                }
            };
            inspect(&args[1], limit)
        }
        Some("verify") if args.len() == 2 => verify(&args[1], false),
        // `--deep` may come before or after the path.
        Some("verify")
            if args.len() == 3 && args[1..].iter().filter(|a| *a == "--deep").count() == 1 =>
        {
            let path = args[1..].iter().find(|a| *a != "--deep").unwrap();
            verify(path, true)
        }
        Some("merge") if args.len() >= 3 => merge(&args[1], &args[2..]),
        Some("gc") if args.len() == 2 => gc(&args[1]),
        Some("recover") if args.len() == 2 => recover(&args[1]),
        Some("compact") if args.len() == 2 => compact(&args[1]),
        _ => {
            eprintln!(
                "usage:\n  tunedb stats  <store>\n  tunedb inspect <store> [limit]\n  \
                 tunedb verify <store> [--deep]\n  tunedb merge  <out> <in> [<in>...]\n  \
                 tunedb gc     <store>\n  tunedb recover <store>\n  tunedb compact <store>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            eprintln!("tunedb: {}: {}", failure.path, failure.error);
            ExitCode::FAILURE
        }
    }
}

fn stats(path: &str) -> CliResult {
    // A store that has only ever journaled has no snapshot yet; that is a
    // journal-only store, not an error. Anything else (corrupt snapshot,
    // no store at all) keeps the one-line failure contract.
    let jpath = journal_path(Path::new(path));
    let snapshot = match load(path) {
        Ok(snapshot) => Some(snapshot),
        Err(_) if !Path::new(path).exists() && jpath.exists() => None,
        Err(failure) => return Err(failure),
    };
    // The journal is inspected strictly read-only (like `verify --deep`):
    // a torn tail is *reported* here, repaired only by `tunedb recover`.
    let jname = jpath.display().to_string();
    let replay = if jpath.exists() {
        let bytes = std::fs::read(&jpath).map_err(|e| Failure {
            path: jname.clone(),
            error: e.into(),
        })?;
        Some(journal::replay(&bytes).map_err(at(&jname))?)
    } else {
        None
    };

    println!("store:            {path}");
    match (&snapshot, &replay) {
        (Some(snapshot), _) => println!("fingerprint:      {}", snapshot.fingerprint),
        (None, Some(replay)) => {
            println!("fingerprint:      {} (from journal)", replay.fingerprint)
        }
        (None, None) => unreachable!("journal-only degradation requires a journal"),
    }
    if let Some(snapshot) = &snapshot {
        let stats = snapshot.stats();
        println!("entries:          {}", stats.entries);
        println!("distinct keys:    {}", stats.distinct_keys);
        println!("identity recipes: {}", stats.identity_recipes);
        println!("total steps:      {}", stats.total_steps);
        if let (Some(min), Some(max)) = (stats.min_cost, stats.max_cost) {
            println!("cost range:       {min:.6}s .. {max:.6}s");
        }
    } else {
        println!("snapshot:         missing (journal-only store)");
    }
    match &replay {
        Some(replay) => {
            let header_len = journal::encode_header(&replay.fingerprint).len();
            println!("journal records:  {}", replay.entries.len());
            println!(
                "journal bytes:    {} since last compact",
                replay.valid_len.saturating_sub(header_len)
            );
            if replay.dropped_bytes > 0 {
                println!(
                    "torn tail:        {} bytes (run `tunedb recover` to repair)",
                    replay.dropped_bytes
                );
            } else {
                println!("torn tail:        none");
            }
        }
        None => println!("journal:          none"),
    }
    Ok(())
}

fn inspect(path: &str, limit: usize) -> CliResult {
    let snapshot = load(path)?;
    println!(
        "{} entries (fingerprint {}), showing up to {limit}:",
        snapshot.entries.len(),
        snapshot.fingerprint
    );
    for entry in snapshot.entries.iter().take(limit) {
        let chain: Vec<&str> = entry.chain.iter().map(|v| v.as_str()).collect();
        println!(
            "  {:016x}  cost {:.6}s  chain [{}]  {}  <- {}",
            entry.key,
            entry.cost,
            chain.join(", "),
            entry.recipe,
            entry.source
        );
    }
    if snapshot.entries.len() > limit {
        println!("  ... {} more", snapshot.entries.len() - limit);
    }
    Ok(())
}

fn verify(path: &str, deep: bool) -> CliResult {
    // `load` already checks magic, version, both section checksums and
    // decodes every entry; `load_compatible` adds the fingerprint check.
    // Every failure — including a fingerprint mismatch — exits nonzero so
    // `tunedb verify f && use f` is a sound gate in scripts.
    let snapshot = Snapshot::load_compatible(path).map_err(at(path))?;
    if !deep {
        println!(
            "{path}: OK ({} entries, fingerprint {})",
            snapshot.entries.len(),
            snapshot.fingerprint
        );
        return Ok(());
    }
    // Deep mode also validates the journal sibling — read-only: a torn
    // tail or a corrupt record fails the gate here but is *not* repaired
    // (that is `tunedb recover`'s job).
    let jpath = journal_path(Path::new(path));
    let jname = jpath.display().to_string();
    let journal_line = if jpath.exists() {
        let bytes = std::fs::read(&jpath).map_err(|e| Failure {
            path: jname.clone(),
            error: e.into(),
        })?;
        let replay = journal::replay(&bytes).map_err(at(&jname))?;
        if replay.fingerprint != snapshot.fingerprint {
            return Err(Failure {
                path: jname,
                error: StoreError::FingerprintMismatch {
                    found: replay.fingerprint,
                    expected: snapshot.fingerprint,
                },
            });
        }
        if replay.dropped_bytes > 0 {
            return Err(Failure {
                path: jname,
                error: StoreError::Corrupt(format!(
                    "journal carries a torn tail ({} bytes after the last valid record)",
                    replay.dropped_bytes
                )),
            });
        }
        format!("journal OK ({} records)", replay.entries.len())
    } else {
        "no journal".to_string()
    };
    println!(
        "{path}: OK ({} entries, fingerprint {}); {journal_line}",
        snapshot.entries.len(),
        snapshot.fingerprint
    );
    Ok(())
}

/// Opens the store for repair, refusing to invent one out of thin air: a
/// path with neither a snapshot nor a journal is a user error, not an
/// empty store.
fn open_for_repair(path: &str) -> Result<DurableStore, Failure> {
    let p = Path::new(path);
    if !p.exists() && !journal_path(p).exists() {
        return Err(Failure {
            path: path.to_string(),
            error: StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "no such store (neither snapshot nor journal exists)",
            )),
        });
    }
    DurableStore::open_existing(Arc::new(OsStorage), p, Durability::FULL).map_err(at(path))
}

fn recover(path: &str) -> CliResult {
    // Opening *is* the recovery: damaged files are quarantined, torn
    // journal tails durably truncated, and the surviving view reported.
    // Exit 0 means the store is consistent now, however it was found.
    let store = open_for_repair(path)?;
    println!("{path}: {}", store.health());
    Ok(())
}

fn compact(path: &str) -> CliResult {
    let mut store = open_for_repair(path)?;
    let health = store.health().clone();
    if !health.is_clean() {
        println!("{path}: {health}");
    }
    store.compact().map_err(at(path))?;
    println!(
        "{path}: compacted {} entries into the snapshot, journal reset",
        store.len()
    );
    Ok(())
}

fn merge(out: &str, inputs: &[String]) -> CliResult {
    let mut merged = load(&inputs[0])?;
    println!("{}: {} entries", inputs[0], merged.entries.len());
    for path in &inputs[1..] {
        let other = load(path)?;
        if other.fingerprint != merged.fingerprint {
            return Err(Failure {
                path: path.clone(),
                error: StoreError::FingerprintMismatch {
                    found: other.fingerprint,
                    expected: merged.fingerprint,
                },
            });
        }
        let changed = merged.merge(&other);
        println!(
            "{path}: {} entries, {changed} merged in",
            other.entries.len()
        );
    }
    merged.save(out).map_err(at(out))?;
    println!("{out}: wrote {} entries", merged.entries.len());
    Ok(())
}

fn gc(path: &str) -> CliResult {
    let mut snapshot = load(path)?;
    let before = snapshot.entries.len();
    let removed = snapshot.gc();
    snapshot.save(path).map_err(at(path))?;
    println!(
        "{path}: {before} -> {} entries ({removed} removed)",
        snapshot.entries.len()
    );
    Ok(())
}
