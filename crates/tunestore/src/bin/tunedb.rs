//! `tunedb` — command-line inspector for persistent tuning stores.
//!
//! ```text
//! tunedb stats  <store>             summary statistics
//! tunedb inspect <store> [limit]    per-entry listing (default 20 entries)
//! tunedb verify <store>             decode + checksum + fingerprint check
//! tunedb merge  <out> <in> [<in>..] merge stores, best cost per key wins
//! tunedb gc     <store>             drop identity recipes / duplicate keys
//! ```

use std::process::ExitCode;

use tunestore::{Snapshot, StoreError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") if args.len() == 2 => stats(&args[1]),
        Some("inspect") if args.len() == 2 || args.len() == 3 => {
            let limit = match args.get(2).map(|s| s.parse::<usize>()) {
                None => 20,
                Some(Ok(limit)) => limit,
                Some(Err(_)) => {
                    eprintln!("tunedb: inspect limit {:?} is not a number", args[2]);
                    return ExitCode::from(2);
                }
            };
            inspect(&args[1], limit)
        }
        Some("verify") if args.len() == 2 => verify(&args[1]),
        Some("merge") if args.len() >= 3 => merge(&args[1], &args[2..]),
        Some("gc") if args.len() == 2 => gc(&args[1]),
        _ => {
            eprintln!(
                "usage:\n  tunedb stats  <store>\n  tunedb inspect <store> [limit]\n  \
                 tunedb verify <store>\n  tunedb merge  <out> <in> [<in>...]\n  tunedb gc     <store>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tunedb: {e}");
            ExitCode::FAILURE
        }
    }
}

fn stats(path: &str) -> Result<(), StoreError> {
    let snapshot = Snapshot::load(path)?;
    let stats = snapshot.stats();
    println!("store:            {path}");
    println!("fingerprint:      {}", snapshot.fingerprint);
    println!("entries:          {}", stats.entries);
    println!("distinct keys:    {}", stats.distinct_keys);
    println!("identity recipes: {}", stats.identity_recipes);
    println!("total steps:      {}", stats.total_steps);
    if let (Some(min), Some(max)) = (stats.min_cost, stats.max_cost) {
        println!("cost range:       {min:.6}s .. {max:.6}s");
    }
    Ok(())
}

fn inspect(path: &str, limit: usize) -> Result<(), StoreError> {
    let snapshot = Snapshot::load(path)?;
    println!(
        "{} entries (fingerprint {}), showing up to {limit}:",
        snapshot.entries.len(),
        snapshot.fingerprint
    );
    for entry in snapshot.entries.iter().take(limit) {
        let chain: Vec<&str> = entry.chain.iter().map(|v| v.as_str()).collect();
        println!(
            "  {:016x}  cost {:.6}s  chain [{}]  {}  <- {}",
            entry.key,
            entry.cost,
            chain.join(", "),
            entry.recipe,
            entry.source
        );
    }
    if snapshot.entries.len() > limit {
        println!("  ... {} more", snapshot.entries.len() - limit);
    }
    Ok(())
}

fn verify(path: &str) -> Result<(), StoreError> {
    // `load` already checks magic, version, both section checksums and
    // decodes every entry; `load_compatible` adds the fingerprint check.
    // Every failure — including a fingerprint mismatch — exits nonzero so
    // `tunedb verify f && use f` is a sound gate in scripts.
    let snapshot = Snapshot::load_compatible(path)?;
    println!(
        "{path}: OK ({} entries, fingerprint {})",
        snapshot.entries.len(),
        snapshot.fingerprint
    );
    Ok(())
}

fn merge(out: &str, inputs: &[String]) -> Result<(), StoreError> {
    let mut merged = Snapshot::load(&inputs[0])?;
    println!("{}: {} entries", inputs[0], merged.entries.len());
    for path in &inputs[1..] {
        let other = Snapshot::load(path)?;
        if other.fingerprint != merged.fingerprint {
            return Err(StoreError::FingerprintMismatch {
                found: other.fingerprint,
                expected: merged.fingerprint,
            });
        }
        let changed = merged.merge(&other);
        println!(
            "{path}: {} entries, {changed} merged in",
            other.entries.len()
        );
    }
    merged.save(out)?;
    println!("{out}: wrote {} entries", merged.entries.len());
    Ok(())
}

fn gc(path: &str) -> Result<(), StoreError> {
    let mut snapshot = Snapshot::load(path)?;
    let before = snapshot.entries.len();
    let removed = snapshot.gc();
    snapshot.save(path)?;
    println!(
        "{path}: {before} -> {} entries ({removed} removed)",
        snapshot.entries.len()
    );
    Ok(())
}
