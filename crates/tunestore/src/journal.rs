//! The append-only journal that makes inserts durable between snapshots.
//!
//! # File layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"DAISYJNL"
//! 8       4     journal format version (u32, currently 1)
//! 12      8     header section length H (u64)
//! 20      H     header section: fingerprint string
//! 20+H    8     FNV-1a checksum of the header section (u64)
//! ..            records, each:
//!                 u32   payload length L
//!                 u64   FNV-1a checksum of the payload
//!                 L     one encoded `StoredEntry`
//! ```
//!
//! The header is written atomically (temp file + rename), so it is either
//! complete or absent; a header that fails validation is real corruption
//! and the whole file is quarantined. Records, by contrast, are *appended*
//! — a crash can tear the last one — so [`replay`] is torn-tail-tolerant:
//! it decodes records until the first invalid one and returns the longest
//! valid prefix plus how many trailing bytes it dropped. Because the store
//! fsyncs the journal before acknowledging an insert, every acknowledged
//! record sits before any torn tail, and replay recovers exactly a prefix
//! of the issued inserts (all acknowledged ones included).
//!
//! Replaying a record re-runs `Snapshot::insert`, whose best-cost merge is
//! idempotent — re-inserting an identical entry is a no-op. That makes the
//! compaction protocol (write snapshot, then reset journal) crash-safe:
//! a crash between the two steps merely replays entries the snapshot
//! already holds.

use crate::codec::{checksum, read_section, write_section, ByteReader, ByteWriter};
use crate::entry::StoredEntry;
use crate::error::{Result, StoreError};

/// The eight magic bytes every journal file starts with.
pub const JOURNAL_MAGIC: &[u8; 8] = b"DAISYJNL";

/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;

/// Encodes a fresh journal containing only the header (no records).
pub fn encode_header(fingerprint: &str) -> Vec<u8> {
    let mut header = ByteWriter::new();
    header.string(fingerprint);
    let header = header.into_bytes();

    let mut out = ByteWriter::new();
    out.bytes(JOURNAL_MAGIC);
    out.u32(JOURNAL_VERSION);
    write_section(&mut out, &header);
    out.into_bytes()
}

/// Encodes one journal record: length, payload checksum, payload.
pub fn encode_record(entry: &StoredEntry) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    entry.encode(&mut payload);
    let payload = payload.into_bytes();

    let mut out = ByteWriter::new();
    out.u32(payload.len() as u32);
    out.u64(checksum(&payload));
    out.bytes(&payload);
    out.into_bytes()
}

/// The result of replaying a journal file.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Fingerprint recorded in the journal header.
    pub fingerprint: String,
    /// Every record of the longest valid prefix, in append order.
    pub entries: Vec<StoredEntry>,
    /// Length in bytes of the valid prefix (header + intact records). The
    /// store truncates the file back to this length during recovery.
    pub valid_len: usize,
    /// Trailing bytes dropped as a torn tail (0 when the file is intact).
    pub dropped_bytes: usize,
}

/// Replays a journal file: validates the header strictly (an invalid
/// header means the file is not a trustworthy journal and is quarantined
/// by the caller), then decodes records until the first invalid one.
/// Never panics on arbitrary bytes.
pub fn replay(bytes: &[u8]) -> Result<Replay> {
    let mut r = ByteReader::new(bytes);
    let magic = r.bytes(JOURNAL_MAGIC.len(), "journal magic")?;
    if magic != JOURNAL_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.u32("journal version")?;
    if version != JOURNAL_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let header = read_section(&mut r, "journal header")?;
    let mut h = ByteReader::new(header);
    let fingerprint = h.string("journal fingerprint")?;
    if !h.is_exhausted() {
        return Err(StoreError::Corrupt(
            "trailing bytes in journal header".to_string(),
        ));
    }

    let mut entries = Vec::new();
    let mut valid_len = bytes.len() - r.remaining();
    while !r.is_exhausted() {
        match read_record(&mut r) {
            Some(entry) => {
                entries.push(entry);
                valid_len = bytes.len() - r.remaining();
            }
            None => break,
        }
    }
    Ok(Replay {
        fingerprint,
        entries,
        valid_len,
        dropped_bytes: bytes.len() - valid_len,
    })
}

/// Decodes one record; any defect — truncation, checksum mismatch, a
/// payload that does not decode or has trailing bytes — yields `None`
/// (the record and everything after it is the torn tail).
fn read_record(r: &mut ByteReader<'_>) -> Option<StoredEntry> {
    let len = r.u32("record length").ok()? as usize;
    let stored = r.u64("record checksum").ok()?;
    let payload = r.bytes(len, "record payload").ok()?;
    if checksum(payload) != stored {
        return None;
    }
    let mut p = ByteReader::new(payload);
    let entry = StoredEntry::decode(&mut p).ok()?;
    if !p.is_exhausted() {
        return None;
    }
    Some(entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::expr::Var;
    use transforms::{Recipe, Transform};

    fn entry(key: u64, cost: f64) -> StoredEntry {
        StoredEntry {
            key,
            cost,
            embedding: vec![0.25, 0.5],
            recipe: Recipe::new(vec![Transform::Vectorize {
                iter: Var::new("j"),
            }]),
            chain: vec![Var::new("i"), Var::new("j")],
            source: format!("journal-{key}"),
        }
    }

    fn journal_bytes(entries: &[StoredEntry]) -> Vec<u8> {
        let mut bytes = encode_header("test-fp");
        for e in entries {
            bytes.extend_from_slice(&encode_record(e));
        }
        bytes
    }

    #[test]
    fn records_round_trip_in_order() {
        let entries = vec![entry(1, 0.5), entry(2, 0.25), entry(1, 0.4)];
        let replay = replay(&journal_bytes(&entries)).unwrap();
        assert_eq!(replay.fingerprint, "test-fp");
        assert_eq!(replay.entries, entries);
        assert_eq!(replay.dropped_bytes, 0);
        assert_eq!(replay.valid_len, journal_bytes(&entries).len());
    }

    #[test]
    fn empty_journal_is_just_the_header() {
        let bytes = encode_header("fp");
        let r = replay(&bytes).unwrap();
        assert!(r.entries.is_empty());
        assert_eq!(r.valid_len, bytes.len());
        assert_eq!(r.dropped_bytes, 0);
    }

    #[test]
    fn torn_tail_recovers_the_prefix() {
        let entries = vec![entry(1, 0.5), entry(2, 0.25)];
        let full = journal_bytes(&entries);
        let one = journal_bytes(&entries[..1]);
        // Cut anywhere inside the second record: first record survives.
        for cut in one.len() + 1..full.len() {
            let r = replay(&full[..cut]).unwrap();
            assert_eq!(r.entries, &entries[..1], "cut at {cut}");
            assert_eq!(r.valid_len, one.len());
            assert_eq!(r.dropped_bytes, cut - one.len());
        }
    }

    #[test]
    fn corrupt_record_stops_replay_there() {
        let entries = vec![entry(1, 0.5), entry(2, 0.25), entry(3, 0.75)];
        let full = journal_bytes(&entries);
        let one = journal_bytes(&entries[..1]);
        // Flip a bit inside the second record's payload: replay keeps the
        // first record only — a corrupt middle never yields later records.
        let mut bytes = full.clone();
        bytes[one.len() + 12 + 3] ^= 0x10;
        let r = replay(&bytes).unwrap();
        assert_eq!(r.entries, &entries[..1]);
        assert_eq!(r.valid_len, one.len());
    }

    #[test]
    fn header_corruption_is_a_hard_error() {
        let bytes = journal_bytes(&[entry(1, 0.5)]);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(replay(&bad), Err(StoreError::BadMagic)));
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            replay(&bad),
            Err(StoreError::UnsupportedVersion(_))
        ));
        let mut bad = bytes;
        bad[21] ^= 0x01; // inside the header section body
        assert!(replay(&bad).is_err());
    }

    #[test]
    fn arbitrary_truncation_never_panics() {
        let full = journal_bytes(&[entry(1, 0.5), entry(2, 0.25)]);
        let header = encode_header("test-fp");
        for cut in 0..full.len() {
            match replay(&full[..cut]) {
                Ok(r) => {
                    assert!(cut >= header.len(), "valid replay needs a header");
                    assert_eq!(r.valid_len + r.dropped_bytes, cut);
                }
                Err(_) => assert!(cut < header.len(), "past the header only torn tails"),
            }
        }
    }
}
