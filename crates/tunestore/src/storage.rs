//! The pluggable storage layer every on-disk operation goes through.
//!
//! The store never calls `std::fs` directly: all filesystem traffic is
//! routed through the [`Storage`] trait, so the same snapshot/journal code
//! runs against the real filesystem ([`OsStorage`]) and against the
//! deterministic in-memory [`FaultStorage`], which can inject torn writes,
//! partial appends, rename failures, `ENOSPC`, bit corruption, and a
//! simulated power cut after the Nth I/O operation. The crash-matrix
//! harness (`tests/crash_matrix.rs`) enumerates every operation index,
//! crashes there, reopens, and asserts the recovery invariant.
//!
//! # The crash model
//!
//! [`FaultStorage`] models an ext4-like contract, adversarially:
//!
//! * Data written or appended but **not** `sync_file`d survives a crash
//!   only as a deterministically *torn prefix* (possibly with a flipped
//!   bit when [`FaultPlan::flip_bit_on_crash`] is set). An overwrite
//!   destroys the old contents immediately — after a crash, the file
//!   holds a torn prefix of the *new* bytes.
//! * Namespace operations (file creation, `rename`, `remove_file`) are
//!   volatile until the parent directory is `sync_dir`ed: a crash rolls
//!   back every uncommitted namespace operation, newest first.
//!
//! Code that survives this model (fsync file, rename, fsync directory —
//! the contract [`atomic_write`] implements) is durable on real POSIX
//! filesystems; code that skips a sync is caught by the harness.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::error::Result;

/// Message carried by the [`io::Error`] every operation returns after a
/// simulated power cut. Callers that must distinguish "the fault plan cut
/// the power" from a real I/O failure can match on it via
/// [`is_power_cut`].
pub const POWER_CUT_MSG: &str = "simulated power cut";

/// True when an I/O error is [`FaultStorage`]'s simulated power cut.
pub fn is_power_cut(error: &io::Error) -> bool {
    error.to_string().contains(POWER_CUT_MSG)
}

/// Abstraction over every filesystem operation the store performs.
///
/// Implementations must be usable from `&self` (interior mutability where
/// needed) so one storage can be shared across components.
pub trait Storage: Send + Sync + fmt::Debug {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates or truncates `path` and writes `bytes`.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to `path`, creating it when missing.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Truncates `path` to `len` bytes (used to roll back a failed append).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Flushes a file's data to durable storage (`fsync`).
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Flushes a directory's entries to durable storage (`fsync` on the
    /// directory), making renames/creations/removals inside it durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and all its ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Lists the files (not directories) directly inside `path`.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// True when a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// How much durability the write paths buy. [`Durability::FULL`] is the
/// correct production setting; the weakened variants exist so the fault
/// harness can mutation-test itself — each skipped sync must be *caught*
/// by the crash matrix, proving the harness detects real durability holes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Durability {
    /// `fsync` file data before acknowledging (and before renaming over a
    /// target).
    pub sync_data: bool,
    /// `fsync` the parent directory after namespace changes.
    pub sync_dirs: bool,
    /// Write snapshots to a temp file renamed over the target. When
    /// `false`, snapshots are written in place (non-atomically).
    pub atomic_rename: bool,
}

impl Durability {
    /// Full fsync/rename discipline — the production setting.
    pub const FULL: Durability = Durability {
        sync_data: true,
        sync_dirs: true,
        atomic_rename: true,
    };
}

impl Default for Durability {
    fn default() -> Self {
        Durability::FULL
    }
}

/// The real filesystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsStorage;

impl Storage for OsStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(bytes)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directories can be opened read-only and fsynced on unix; on
        // platforms where opening a directory fails, the rename-based
        // protocol still gives atomicity, just not power-loss durability
        // of the namespace change.
        match std::fs::File::open(path) {
            Ok(dir) => dir.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.is_file()
    }
}

/// The kind of a storage operation, for targeted clean-failure injection
/// ([`FaultPlan::fail_op`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// [`Storage::read`]
    Read,
    /// [`Storage::write`]
    Write,
    /// [`Storage::append`]
    Append,
    /// [`Storage::truncate`]
    Truncate,
    /// [`Storage::sync_file`]
    SyncFile,
    /// [`Storage::sync_dir`]
    SyncDir,
    /// [`Storage::rename`]
    Rename,
    /// [`Storage::remove_file`]
    RemoveFile,
    /// [`Storage::create_dir_all`]
    CreateDir,
    /// [`Storage::list_dir`]
    ListDir,
}

/// Deterministic fault plan for a [`FaultStorage`]. Everything a plan does
/// is a pure function of the plan and the operation sequence, so a failing
/// case replays exactly from its seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the deterministic tearing / bit-flip decisions.
    pub seed: u64,
    /// Simulated power cut: the operation with this index (0-based, in
    /// call order) and every later one fail with [`POWER_CUT_MSG`]. The
    /// on-disk image is materialized by [`FaultStorage::crash`].
    pub crash_at_op: Option<u64>,
    /// Clean failure injection: the Nth operation (0-based, counted per
    /// kind) of the given kind fails with an I/O error *without* being
    /// applied and without cutting the power — e.g. a rename failure or a
    /// transient full disk.
    pub fail_op: Option<(OpKind, u64)>,
    /// Byte budget for `write`/`append`: once this many payload bytes have
    /// been accepted, further data is applied only partially (up to the
    /// budget) and the operation fails with an `ENOSPC`-style error.
    pub disk_budget: Option<u64>,
    /// Flip one deterministic bit inside each torn (un-synced) region when
    /// the crash image is materialized — simulating a sector that was
    /// mid-write at power-off.
    pub flip_bit_on_crash: bool,
}

impl FaultPlan {
    /// A plan that cuts the power before the operation with index `op`.
    pub fn power_cut_at(op: u64) -> FaultPlan {
        FaultPlan {
            crash_at_op: Some(op),
            ..FaultPlan::default()
        }
    }
}

/// One in-memory file: its live contents and how much of them is durable.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FileState {
    /// Current contents as the process sees them.
    live: Vec<u8>,
    /// `live[..synced_len]` survives a crash intact; the rest is torn.
    synced_len: usize,
}

impl FileState {
    fn new() -> FileState {
        FileState {
            live: Vec::new(),
            synced_len: 0,
        }
    }
}

/// A namespace change that is volatile until its directory is synced.
/// Rollback information is captured at operation time.
#[derive(Debug, Clone)]
enum NsOp {
    /// `path` was created; rollback removes it.
    Create { path: PathBuf },
    /// `path` was removed; rollback restores `prev`.
    Remove { path: PathBuf, prev: FileState },
    /// `from` was renamed over `to`; rollback moves the file back and
    /// restores whatever `to` held before.
    Rename {
        from: PathBuf,
        to: PathBuf,
        prev_to: Option<FileState>,
    },
}

impl NsOp {
    /// The directory whose `sync_dir` commits this operation.
    fn parent(&self) -> &Path {
        let path = match self {
            NsOp::Create { path } => path,
            NsOp::Remove { path, .. } => path,
            NsOp::Rename { to, .. } => to,
        };
        path.parent().unwrap_or_else(|| Path::new(""))
    }
}

#[derive(Debug, Default)]
struct FaultState {
    files: BTreeMap<PathBuf, FileState>,
    dirs: BTreeSet<PathBuf>,
    pending: Vec<NsOp>,
    ops: u64,
    per_kind: BTreeMap<&'static str, u64>,
    bytes_written: u64,
    crashed: bool,
}

/// Deterministic in-memory filesystem with fault injection, for the
/// crash-matrix harness and the `daisyfuzz store` sweep. See the module
/// docs for the crash model.
#[derive(Debug)]
pub struct FaultStorage {
    plan: Mutex<FaultPlan>,
    state: Mutex<FaultState>,
}

impl Default for FaultStorage {
    fn default() -> Self {
        FaultStorage::new(FaultPlan::default())
    }
}

/// SplitMix64 — the deterministic mix used for tearing decisions.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn path_mix(path: &Path) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in path.as_os_str().as_encoded_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FaultStorage {
    /// An empty storage governed by `plan`.
    pub fn new(plan: FaultPlan) -> FaultStorage {
        FaultStorage {
            plan: Mutex::new(plan),
            state: Mutex::new(FaultState::default()),
        }
    }

    /// Number of operations performed so far (the crash matrix enumerates
    /// crash points over this count from a clean dry run).
    pub fn ops(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// Replaces the fault plan (counters keep running).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock().unwrap() = plan;
    }

    /// Simulates the reboot after a power cut: uncommitted namespace
    /// operations are rolled back (newest first), un-synced file contents
    /// are torn to a deterministic prefix (with an optional bit flip), and
    /// subsequent operations succeed again. Also callable without a prior
    /// cut, to ask "what would survive if the power failed now?".
    pub fn crash(&self) {
        let plan = *self.plan.lock().unwrap();
        let mut state = self.state.lock().unwrap();
        // Roll back volatile namespace changes, newest first.
        while let Some(op) = state.pending.pop() {
            match op {
                NsOp::Create { path } => {
                    state.files.remove(&path);
                }
                NsOp::Remove { path, prev } => {
                    state.files.insert(path, prev);
                }
                NsOp::Rename { from, to, prev_to } => {
                    if let Some(current) = state.files.remove(&to) {
                        state.files.insert(from, current);
                    }
                    if let Some(prev) = prev_to {
                        state.files.insert(to, prev);
                    }
                }
            }
        }
        // Tear every un-synced file to a deterministic prefix.
        let ops = state.ops;
        for (path, file) in state.files.iter_mut() {
            if file.synced_len >= file.live.len() {
                file.synced_len = file.live.len();
                continue;
            }
            let tail = file.live.len() - file.synced_len;
            let mix = splitmix(plan.seed ^ path_mix(path) ^ ops);
            let keep = (mix % (tail as u64 + 1)) as usize;
            file.live.truncate(file.synced_len + keep);
            if plan.flip_bit_on_crash && keep > 0 {
                let torn = splitmix(mix);
                let pos = file.synced_len + (torn % keep as u64) as usize;
                file.live[pos] ^= 1u8 << (torn >> 32 & 7);
            }
            file.synced_len = file.live.len();
        }
        state.crashed = false;
        // The cut has fired; clear it so the "rebooted" process can run.
        let mut plan = self.plan.lock().unwrap();
        plan.crash_at_op = None;
    }

    /// Flips one bit of a file in place (directed corruption tests).
    pub fn corrupt_byte(&self, path: &Path, offset: usize, mask: u8) {
        let mut state = self.state.lock().unwrap();
        if let Some(file) = state.files.get_mut(path) {
            if offset < file.live.len() {
                file.live[offset] ^= mask;
            }
        }
    }

    /// The live length of a file, if it exists (test inspection).
    pub fn file_len(&self, path: &Path) -> Option<usize> {
        self.state
            .lock()
            .unwrap()
            .files
            .get(path)
            .map(|f| f.live.len())
    }

    /// Charges one operation against the plan: returns an error if the
    /// power is already cut, cuts it at the planned index, or injects the
    /// planned clean failure for this kind.
    fn charge(&self, kind: OpKind, name: &'static str) -> io::Result<()> {
        let plan = *self.plan.lock().unwrap();
        let mut state = self.state.lock().unwrap();
        if state.crashed {
            return Err(io::Error::other(POWER_CUT_MSG));
        }
        let index = state.ops;
        state.ops += 1;
        if plan.crash_at_op == Some(index) {
            state.crashed = true;
            return Err(io::Error::other(POWER_CUT_MSG));
        }
        let kind_index = state.per_kind.entry(name).or_insert(0);
        let this_kind = *kind_index;
        *kind_index += 1;
        if let Some((fail_kind, at)) = plan.fail_op {
            if fail_kind == kind && this_kind == at {
                return Err(io::Error::other(format!(
                    "injected {name} failure (op {index})"
                )));
            }
        }
        Ok(())
    }

    /// Accepts up to `budget - used` of `bytes`, returning how many bytes
    /// may be applied and whether the budget was exhausted.
    fn admit(&self, len: usize) -> (usize, bool) {
        let plan = *self.plan.lock().unwrap();
        let mut state = self.state.lock().unwrap();
        match plan.disk_budget {
            None => {
                state.bytes_written += len as u64;
                (len, false)
            }
            Some(budget) => {
                let room = budget.saturating_sub(state.bytes_written) as usize;
                let take = room.min(len);
                state.bytes_written += take as u64;
                (take, take < len)
            }
        }
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("{}: no such file", path.display()),
    )
}

impl Storage for FaultStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.charge(OpKind::Read, "read")?;
        let state = self.state.lock().unwrap();
        state
            .files
            .get(path)
            .map(|f| f.live.clone())
            .ok_or_else(|| not_found(path))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.charge(OpKind::Write, "write")?;
        let (take, full) = self.admit(bytes.len());
        let mut state = self.state.lock().unwrap();
        let created = !state.files.contains_key(path);
        let file = state
            .files
            .entry(path.to_path_buf())
            .or_insert_with(FileState::new);
        // Truncation destroys the old durable contents immediately: the
        // crash image is now a torn prefix of the new bytes.
        file.live = bytes[..take].to_vec();
        file.synced_len = 0;
        if created {
            state.pending.push(NsOp::Create {
                path: path.to_path_buf(),
            });
        }
        if full {
            return Err(io::Error::other("no space left on device (simulated)"));
        }
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.charge(OpKind::Append, "append")?;
        let (take, full) = self.admit(bytes.len());
        let mut state = self.state.lock().unwrap();
        let created = !state.files.contains_key(path);
        let file = state
            .files
            .entry(path.to_path_buf())
            .or_insert_with(FileState::new);
        file.live.extend_from_slice(&bytes[..take]);
        if created {
            state.pending.push(NsOp::Create {
                path: path.to_path_buf(),
            });
        }
        if full {
            return Err(io::Error::other("no space left on device (simulated)"));
        }
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.charge(OpKind::Truncate, "truncate")?;
        let mut state = self.state.lock().unwrap();
        let file = state.files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.live.truncate(len as usize);
        file.synced_len = file.synced_len.min(file.live.len());
        Ok(())
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.charge(OpKind::SyncFile, "sync_file")?;
        let mut state = self.state.lock().unwrap();
        let file = state.files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.synced_len = file.live.len();
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.charge(OpKind::SyncDir, "sync_dir")?;
        let mut state = self.state.lock().unwrap();
        state.pending.retain(|op| op.parent() != path);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.charge(OpKind::Rename, "rename")?;
        let mut state = self.state.lock().unwrap();
        let moved = state.files.remove(from).ok_or_else(|| not_found(from))?;
        let prev_to = state.files.insert(to.to_path_buf(), moved);
        state.pending.push(NsOp::Rename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
            prev_to,
        });
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.charge(OpKind::RemoveFile, "remove_file")?;
        let mut state = self.state.lock().unwrap();
        let prev = state.files.remove(path).ok_or_else(|| not_found(path))?;
        state.pending.push(NsOp::Remove {
            path: path.to_path_buf(),
            prev,
        });
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.charge(OpKind::CreateDir, "create_dir_all")?;
        let mut state = self.state.lock().unwrap();
        let mut dir = path.to_path_buf();
        loop {
            state.dirs.insert(dir.clone());
            match dir.parent() {
                Some(parent) if !parent.as_os_str().is_empty() => dir = parent.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.charge(OpKind::ListDir, "list_dir")?;
        let state = self.state.lock().unwrap();
        Ok(state
            .files
            .keys()
            .filter(|p| p.parent() == Some(path))
            .cloned()
            .collect())
    }

    fn exists(&self, path: &Path) -> bool {
        self.state.lock().unwrap().files.contains_key(path)
    }
}

/// Writes `bytes` to `path` with the atomic, durable protocol: stale
/// temporaries swept, contents written to a fresh temp file in the same
/// directory, the temp file fsynced, renamed over the target, and the
/// parent directory fsynced — so a crash at any point leaves either the
/// complete old file or the complete new file, and an acknowledged write
/// survives power loss. Weakened [`Durability`] settings skip individual
/// steps (for mutation-testing the fault harness only).
pub fn atomic_write(
    storage: &dyn Storage,
    path: &Path,
    bytes: &[u8],
    durability: Durability,
) -> Result<()> {
    use crate::error::StoreError;
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    storage.create_dir_all(&parent)?;
    let file_name = path.file_name().ok_or_else(|| {
        StoreError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("store path {} has no file name", path.display()),
        ))
    })?;

    if !durability.atomic_rename {
        // Mutation-testing mode: write in place, no temp file, no rename.
        storage.write(path, bytes)?;
        if durability.sync_data {
            storage.sync_file(path)?;
        }
        return Ok(());
    }

    sweep_stale_temps(storage, path);
    let tmp = path.with_file_name(format!(
        "{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    storage.write(&tmp, bytes)?;
    if durability.sync_data {
        storage.sync_file(&tmp)?;
    }
    storage.rename(&tmp, path)?;
    if durability.sync_dirs {
        storage.sync_dir(&parent)?;
    }
    Ok(())
}

/// Removes stale `<name>.tmp.*` siblings left behind by saves that failed
/// between write and rename (a crashed process, a full disk). Errors are
/// ignored: the sweep is best-effort hygiene, and a temp file that cannot
/// be listed or removed never affects the target's correctness. A save of
/// the *same* target racing in another process may lose its temp file to
/// this sweep and fail cleanly — last-writer-wins already governed that
/// race; saves of distinct targets are never touched (the prefix includes
/// the full target file name).
pub fn sweep_stale_temps(storage: &dyn Storage, path: &Path) {
    let Some(parent) = path.parent() else { return };
    let parent = if parent.as_os_str().is_empty() {
        Path::new(".")
    } else {
        parent
    };
    let Some(file_name) = path.file_name() else {
        return;
    };
    let prefix = format!("{}.tmp.", file_name.to_string_lossy());
    let Ok(entries) = storage.list_dir(parent) else {
        return;
    };
    for entry in entries {
        let Some(name) = entry.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with(&prefix) {
            let _ = storage.remove_file(&entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn fault_storage_round_trips_files() {
        let fs = FaultStorage::default();
        fs.create_dir_all(&p("d")).unwrap();
        fs.write(&p("d/a"), b"hello").unwrap();
        assert_eq!(fs.read(&p("d/a")).unwrap(), b"hello");
        fs.append(&p("d/a"), b" world").unwrap();
        assert_eq!(fs.read(&p("d/a")).unwrap(), b"hello world");
        fs.rename(&p("d/a"), &p("d/b")).unwrap();
        assert!(!fs.exists(&p("d/a")));
        assert_eq!(fs.read(&p("d/b")).unwrap(), b"hello world");
        assert_eq!(fs.list_dir(&p("d")).unwrap(), vec![p("d/b")]);
        fs.truncate(&p("d/b"), 5).unwrap();
        assert_eq!(fs.read(&p("d/b")).unwrap(), b"hello");
        fs.remove_file(&p("d/b")).unwrap();
        assert!(matches!(
            fs.read(&p("d/b")),
            Err(e) if e.kind() == io::ErrorKind::NotFound
        ));
    }

    #[test]
    fn unsynced_data_is_torn_at_crash_synced_data_survives() {
        let fs = FaultStorage::new(FaultPlan {
            seed: 7,
            ..FaultPlan::default()
        });
        fs.write(&p("a"), b"durable").unwrap();
        fs.sync_file(&p("a")).unwrap();
        fs.sync_dir(&p("")).unwrap();
        fs.append(&p("a"), b"-volatile-tail").unwrap();
        fs.crash();
        let after = fs.read(&p("a")).unwrap();
        assert!(after.starts_with(b"durable"), "synced prefix must survive");
        assert!(
            after.len() < b"durable-volatile-tail".len(),
            "the unsynced tail must be torn (seed 7 tears it): {after:?}"
        );
    }

    #[test]
    fn unsynced_rename_rolls_back_at_crash() {
        let fs = FaultStorage::default();
        fs.write(&p("old"), b"old-bytes").unwrap();
        fs.sync_file(&p("old")).unwrap();
        fs.sync_dir(&p("")).unwrap();
        fs.write(&p("new"), b"new-bytes").unwrap();
        fs.sync_file(&p("new")).unwrap();
        fs.rename(&p("new"), &p("old")).unwrap();
        // No sync_dir: the rename is volatile — and so is the creation of
        // "new" itself, so after the crash only the committed "old" exists.
        fs.crash();
        assert_eq!(fs.read(&p("old")).unwrap(), b"old-bytes");
        assert!(!fs.exists(&p("new")), "uncommitted creation vanishes too");
        // Committed renames survive.
        fs.write(&p("new"), b"new-bytes").unwrap();
        fs.sync_file(&p("new")).unwrap();
        fs.sync_dir(&p("")).unwrap();
        fs.rename(&p("new"), &p("old")).unwrap();
        fs.sync_dir(&p("")).unwrap();
        fs.crash();
        assert_eq!(fs.read(&p("old")).unwrap(), b"new-bytes");
        assert!(!fs.exists(&p("new")));
    }

    #[test]
    fn uncommitted_creation_vanishes_at_crash() {
        let fs = FaultStorage::default();
        fs.write(&p("f"), b"x").unwrap();
        fs.sync_file(&p("f")).unwrap();
        // Creation never committed with sync_dir.
        fs.crash();
        assert!(!fs.exists(&p("f")));
    }

    #[test]
    fn power_cut_fires_at_the_planned_op_and_clears_on_crash() {
        let fs = FaultStorage::new(FaultPlan::power_cut_at(3));
        fs.write(&p("a"), b"1").unwrap(); // op 0
        fs.sync_file(&p("a")).unwrap(); // op 1
        fs.sync_dir(&p("")).unwrap(); // op 2: commit a's creation
        let err = fs.write(&p("b"), b"2").unwrap_err(); // op 3: cut
        assert!(is_power_cut(&err));
        let err = fs.read(&p("a")).unwrap_err();
        assert!(is_power_cut(&err), "everything fails until reboot");
        fs.crash();
        assert!(fs.read(&p("a")).is_ok(), "reboot restores service");
        assert!(!fs.exists(&p("b")), "the cut op was never applied");
    }

    #[test]
    fn clean_fail_op_injects_without_cutting_power() {
        let fs = FaultStorage::new(FaultPlan {
            fail_op: Some((OpKind::Rename, 0)),
            ..FaultPlan::default()
        });
        fs.write(&p("a"), b"x").unwrap();
        let err = fs.rename(&p("a"), &p("b")).unwrap_err();
        assert!(!is_power_cut(&err));
        assert!(fs.exists(&p("a")), "failed rename must not be applied");
        // Only the Nth rename fails; the next succeeds.
        fs.rename(&p("a"), &p("b")).unwrap();
        assert!(fs.exists(&p("b")));
    }

    #[test]
    fn disk_budget_applies_partial_writes_then_errors() {
        let fs = FaultStorage::new(FaultPlan {
            disk_budget: Some(4),
            ..FaultPlan::default()
        });
        let err = fs.write(&p("a"), b"123456").unwrap_err();
        assert!(err.to_string().contains("no space"));
        assert_eq!(fs.read(&p("a")).unwrap(), b"1234", "partial application");
        let err = fs.append(&p("a"), b"x").unwrap_err();
        assert!(err.to_string().contains("no space"));
    }

    #[test]
    fn crash_images_are_deterministic_per_seed() {
        let image = |seed: u64| {
            let fs = FaultStorage::new(FaultPlan {
                seed,
                flip_bit_on_crash: true,
                ..FaultPlan::default()
            });
            fs.write(&p("f"), b"0123456789abcdef").unwrap();
            fs.sync_dir(&p("")).unwrap();
            fs.crash();
            fs.read(&p("f")).unwrap()
        };
        assert_eq!(image(1), image(1));
        assert_eq!(image(2), image(2));
    }

    #[test]
    fn atomic_write_survives_a_crash_at_every_op() {
        // Dry run to count ops.
        let dry = FaultStorage::default();
        dry.write(&p("dir/t"), b"old").unwrap();
        dry.sync_file(&p("dir/t")).unwrap();
        dry.sync_dir(&p("dir")).unwrap();
        atomic_write(&dry, &p("dir/t"), b"new-contents", Durability::FULL).unwrap();
        let total = dry.ops();
        let setup_ops = 3;

        for cut in setup_ops..=total {
            let fs = FaultStorage::new(FaultPlan::default());
            fs.write(&p("dir/t"), b"old").unwrap();
            fs.sync_file(&p("dir/t")).unwrap();
            fs.sync_dir(&p("dir")).unwrap();
            fs.set_plan(FaultPlan {
                seed: cut,
                crash_at_op: Some(cut),
                flip_bit_on_crash: true,
                ..FaultPlan::default()
            });
            let result = atomic_write(&fs, &p("dir/t"), b"new-contents", Durability::FULL);
            fs.crash();
            let after = fs.read(&p("dir/t")).unwrap();
            if result.is_ok() {
                assert_eq!(after, b"new-contents", "acknowledged write must survive");
            } else {
                assert!(
                    after == b"old" || after == b"new-contents",
                    "cut at {cut}: target must be one complete version, got {after:?}"
                );
            }
        }
    }

    #[test]
    fn atomic_write_sweeps_stale_temps() {
        let fs = FaultStorage::default();
        fs.write(&p("d/s.tunedb.tmp.99.0"), b"stale").unwrap();
        fs.write(&p("d/other.tmp.1.0"), b"not ours").unwrap();
        atomic_write(&fs, &p("d/s.tunedb"), b"fresh", Durability::FULL).unwrap();
        assert!(!fs.exists(&p("d/s.tunedb.tmp.99.0")), "stale temp swept");
        assert!(fs.exists(&p("d/other.tmp.1.0")), "other targets untouched");
        assert_eq!(fs.read(&p("d/s.tunedb")).unwrap(), b"fresh");
    }

    #[test]
    fn os_storage_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("tunestore-os-{}", std::process::id()));
        let os = OsStorage;
        os.create_dir_all(&dir).unwrap();
        let f = dir.join("f.bin");
        os.write(&f, b"abc").unwrap();
        os.append(&f, b"def").unwrap();
        os.sync_file(&f).unwrap();
        assert_eq!(os.read(&f).unwrap(), b"abcdef");
        os.truncate(&f, 3).unwrap();
        assert_eq!(os.read(&f).unwrap(), b"abc");
        assert!(os.exists(&f));
        let g = dir.join("g.bin");
        os.rename(&f, &g).unwrap();
        os.sync_dir(&dir).unwrap();
        assert_eq!(os.list_dir(&dir).unwrap(), vec![g.clone()]);
        os.remove_file(&g).unwrap();
        assert!(!os.exists(&g));
        std::fs::remove_dir_all(&dir).ok();
    }
}
