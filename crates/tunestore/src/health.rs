//! Post-recovery health reporting: what each on-disk source contributed
//! and what had to be dropped, quarantined, or rejected.
//!
//! Recovery never turns a damaged store into an error — it degrades
//! (quarantining what it cannot trust) and *reports*. [`StoreHealth`] is
//! that report: callers like `DaisyScheduler::warm_start_resilient` log it
//! and proceed with whatever survived, and `tunedb recover` prints it.

use std::fmt;
use std::path::PathBuf;

/// The state one on-disk source (the snapshot file or the journal file)
/// was found in during recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceState {
    /// The file was present and fully valid.
    Intact {
        /// Entries contributed by this source.
        entries: usize,
    },
    /// The file did not exist (a fresh store, or one side of it).
    Missing,
    /// The file was valid up to a torn tail, which was dropped and the
    /// file truncated back to its longest valid prefix.
    TruncatedTail {
        /// Entries recovered from the valid prefix.
        entries: usize,
        /// Bytes dropped from the tail.
        dropped_bytes: usize,
    },
    /// The file failed validation (bad magic, checksum mismatch, corrupt
    /// fields) and was moved aside so it cannot poison later opens.
    Quarantined {
        /// Why validation failed.
        reason: String,
        /// Where the file was moved (`<name>.corrupt`), or `None` when
        /// even the quarantine rename failed (the file was left behind
        /// and will be re-quarantined next open).
        moved_to: Option<PathBuf>,
    },
    /// The file was valid but produced under a different environment
    /// fingerprint; its costs are not transferable, so it was moved aside
    /// (`<name>.foreign`) rather than merged or destroyed.
    Foreign {
        /// Fingerprint recorded in the file.
        found: String,
        /// Where the file was moved, or `None` if the rename failed.
        moved_to: Option<PathBuf>,
    },
}

impl SourceState {
    /// True when the source needed no intervention (intact or absent).
    pub fn is_clean(&self) -> bool {
        matches!(self, SourceState::Intact { .. } | SourceState::Missing)
    }

    /// Entries this source contributed to the recovered view.
    pub fn entries(&self) -> usize {
        match self {
            SourceState::Intact { entries } => *entries,
            SourceState::TruncatedTail { entries, .. } => *entries,
            _ => 0,
        }
    }
}

impl fmt::Display for SourceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceState::Intact { entries } => write!(f, "intact ({entries} entries)"),
            SourceState::Missing => write!(f, "missing"),
            SourceState::TruncatedTail {
                entries,
                dropped_bytes,
            } => write!(
                f,
                "torn tail ({entries} entries kept, {dropped_bytes} bytes dropped)"
            ),
            SourceState::Quarantined { reason, moved_to } => match moved_to {
                Some(path) => write!(f, "quarantined to {} ({reason})", path.display()),
                None => write!(f, "corrupt, quarantine failed ({reason})"),
            },
            SourceState::Foreign { found, moved_to } => match moved_to {
                Some(path) => write!(f, "foreign ({found:?}), moved to {}", path.display()),
                None => write!(f, "foreign ({found:?}), move failed"),
            },
        }
    }
}

/// The health report produced by opening a [`DurableStore`]
/// (`crate::store::DurableStore`): the state of both on-disk sources and
/// the size of the recovered view.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreHealth {
    /// State the snapshot file was found in.
    pub snapshot: SourceState,
    /// State the journal file was found in.
    pub journal: SourceState,
    /// Entries in the recovered view (snapshot merged with journal under
    /// best-cost semantics — not necessarily the sum of the sources).
    pub entries: usize,
}

impl StoreHealth {
    /// True when recovery needed no intervention at all.
    pub fn is_clean(&self) -> bool {
        self.snapshot.is_clean() && self.journal.is_clean()
    }

    /// A fresh, fully clean report for a store holding `entries` entries.
    pub fn clean(snapshot_entries: usize, journal_entries: usize) -> StoreHealth {
        StoreHealth {
            snapshot: SourceState::Intact {
                entries: snapshot_entries,
            },
            journal: SourceState::Intact {
                entries: journal_entries,
            },
            entries: snapshot_entries + journal_entries,
        }
    }
}

impl fmt::Display for StoreHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot {}; journal {}; {} entries recovered",
            self.snapshot, self.journal, self.entries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_states_are_clean() {
        assert!(SourceState::Intact { entries: 3 }.is_clean());
        assert!(SourceState::Missing.is_clean());
        assert!(!SourceState::TruncatedTail {
            entries: 1,
            dropped_bytes: 9
        }
        .is_clean());
        assert!(!SourceState::Quarantined {
            reason: "bad".into(),
            moved_to: None
        }
        .is_clean());
        assert!(!SourceState::Foreign {
            found: "other".into(),
            moved_to: None
        }
        .is_clean());
    }

    #[test]
    fn health_renders_one_line() {
        let health = StoreHealth {
            snapshot: SourceState::Intact { entries: 2 },
            journal: SourceState::TruncatedTail {
                entries: 1,
                dropped_bytes: 7,
            },
            entries: 3,
        };
        let line = health.to_string();
        assert!(line.contains("intact (2 entries)"));
        assert!(line.contains("torn tail"));
        assert!(line.contains("3 entries recovered"));
        assert!(!line.contains('\n'));
        assert!(!health.is_clean());
        assert!(StoreHealth::clean(2, 1).is_clean());
    }
}
