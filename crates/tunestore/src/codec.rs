//! Bounds-checked little-endian primitives the store format is built from.
//!
//! No serde is available offline, so the format is hand-rolled: fixed-width
//! little-endian integers, IEEE-754 bit patterns for floats, and
//! length-prefixed UTF-8 strings. Every read is bounds-checked and returns
//! [`StoreError::Truncated`] instead of panicking, so arbitrary bytes —
//! corrupted or truncated files — can never crash a decoder built on top.

use crate::error::{Result, StoreError};

/// Append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bit-exact round trip,
    /// including NaN payloads and signed zeros).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a byte slice for decoding; every read is bounds-checked.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over the given bytes.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::Truncated { context });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8> {
        Ok(self.bytes(1, context)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32> {
        let b = self.bytes(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64> {
        let b = self.bytes(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self, context: &'static str) -> Result<i64> {
        Ok(self.u64(context)? as i64)
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a length-prefixed UTF-8 string. The claimed length is checked
    /// against the remaining bytes *before* allocating, so a corrupted huge
    /// length cannot trigger an out-of-memory abort.
    pub fn string(&mut self, context: &'static str) -> Result<String> {
        let len = self.u32(context)? as usize;
        if len > self.remaining() {
            return Err(StoreError::Truncated { context });
        }
        let bytes = self.bytes(len, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt(format!("invalid UTF-8 in {context}")))
    }

    /// Reads a `u32` element count and checks it is plausible: each element
    /// occupies at least `min_element_bytes`, so a count claiming more
    /// elements than the remaining bytes could hold is corrupt. Prevents
    /// pre-allocating gigantic vectors from a few flipped bits.
    pub fn count(&mut self, min_element_bytes: usize, context: &'static str) -> Result<usize> {
        let n = self.u32(context)? as usize;
        if n.saturating_mul(min_element_bytes.max(1)) > self.remaining() {
            return Err(StoreError::Truncated { context });
        }
        Ok(n)
    }
}

/// Writes one length-prefixed, checksummed section: `u64` length, the raw
/// body, then the body's FNV-1a checksum. The framing shared by snapshot
/// sections and the journal header.
pub fn write_section(w: &mut ByteWriter, body: &[u8]) {
    w.u64(body.len() as u64);
    w.bytes(body);
    w.u64(checksum(body));
}

/// Reads one length-prefixed, checksummed section and verifies its checksum.
pub fn read_section<'a>(r: &mut ByteReader<'a>, section: &'static str) -> Result<&'a [u8]> {
    let len = r.u64("section length")? as usize;
    if len > r.remaining() {
        return Err(StoreError::Truncated {
            context: "section body",
        });
    }
    let body = r.bytes(len, "section body")?;
    let stored = r.u64("section checksum")?;
    if checksum(body) != stored {
        return Err(StoreError::ChecksumMismatch { section });
    }
    Ok(body)
}

/// FNV-1a checksum over a byte slice — the same deterministic hash family as
/// `loop_ir::StructuralHasher`, so section checksums are stable across
/// platforms and Rust versions.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut state: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.string("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX);
        assert_eq!(r.i64("d").unwrap(), -42);
        assert_eq!(r.f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64("f").unwrap().is_nan());
        assert_eq!(r.string("g").unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_error_out() {
        let mut w = ByteWriter::new();
        w.u32(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.u64("needs 8"),
            Err(StoreError::Truncated { .. })
        ));
        // The string length claims 5 bytes but only the prefix exists.
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.string("short"),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn huge_claimed_count_is_rejected_before_allocating() {
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.count(8, "elems"),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_corrupt_not_panic() {
        let mut w = ByteWriter::new();
        w.u32(2);
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.string("s"), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn checksum_is_stable() {
        // Pinned value: the checksum is part of the on-disk format.
        assert_eq!(checksum(b""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(checksum(b"a"), checksum(b"b"));
    }
}
