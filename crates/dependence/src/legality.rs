//! Legality queries for loop transformations, answered from a
//! [`DependenceGraph`].

use std::collections::{BTreeMap, BTreeSet};

use loop_ir::expr::Var;
use loop_ir::nest::{CompId, Loop, Node};

use crate::graph::DependenceGraph;
use crate::types::Direction;

/// Returns the strongly connected components of the statements contained in
/// the given body nodes, considering only dependences between statements of
/// that body. Components are returned in a topological order of the
/// condensation (sources first), which is exactly the order in which loop
/// distribution must emit the resulting loops.
///
/// Each component lists the indices of the body nodes (not computation ids)
/// whose statements belong to it; a body node with several nested statements
/// is treated as an atomic unit.
pub fn sccs_of_body(graph: &DependenceGraph, body: &[Node]) -> Vec<Vec<usize>> {
    // Map every computation id to the index of the body node containing it.
    let mut owner: BTreeMap<CompId, usize> = BTreeMap::new();
    for (idx, node) in body.iter().enumerate() {
        for c in node.computations() {
            owner.insert(c.id, idx);
        }
    }
    let n = body.len();
    // Adjacency between body nodes induced by dependences.
    let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for dep in graph.all() {
        let (Some(&a), Some(&b)) = (owner.get(&dep.src), owner.get(&dep.dst)) else {
            continue;
        };
        if a != b {
            succs[a].insert(b);
        }
    }
    tarjan_sccs(n, &succs)
}

// Iterative Tarjan SCC; components are emitted in reverse topological order
// and then reversed so that sources come first.
fn tarjan_sccs(n: usize, succs: &[BTreeSet<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let mut state = vec![
        NodeState {
            index: None,
            lowlink: 0,
            on_stack: false,
        };
        n
    ];
    let mut index = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    let mut components: Vec<Vec<usize>> = Vec::new();

    for root in 0..n {
        if state[root].index.is_some() {
            continue;
        }
        // Explicit DFS stack of (node, iterator position over successors).
        let mut dfs: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        dfs.push((root, succs[root].iter().copied().collect(), 0));
        state[root].index = Some(index);
        state[root].lowlink = index;
        state[root].on_stack = true;
        stack.push(root);
        index += 1;

        while let Some((v, children, pos)) = dfs.last_mut() {
            if *pos < children.len() {
                let w = children[*pos];
                *pos += 1;
                if state[w].index.is_none() {
                    state[w].index = Some(index);
                    state[w].lowlink = index;
                    state[w].on_stack = true;
                    stack.push(w);
                    index += 1;
                    dfs.push((w, succs[w].iter().copied().collect(), 0));
                } else if state[w].on_stack {
                    let v = *v;
                    state[v].lowlink = state[v].lowlink.min(state[w].index.unwrap());
                }
            } else {
                let v = *v;
                dfs.pop();
                if let Some((parent, _, _)) = dfs.last() {
                    let parent = *parent;
                    state[parent].lowlink = state[parent].lowlink.min(state[v].lowlink);
                }
                if state[v].lowlink == state[v].index.unwrap() {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        state[w].on_stack = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }
    // Tarjan emits components in reverse topological order of the
    // condensation.
    components.reverse();
    components
}

/// True if the statements of the two body nodes can be placed in different
/// loops (loop distribution / fission), i.e. they are not part of a
/// dependence cycle with each other.
pub fn can_distribute(graph: &DependenceGraph, body: &[Node], a: usize, b: usize) -> bool {
    if a == b {
        return false;
    }
    let sccs = sccs_of_body(graph, body);
    !sccs.iter().any(|scc| scc.contains(&a) && scc.contains(&b))
}

/// True if the loop with iterator `iter` can be executed in parallel: no
/// dependence may be carried by it.
///
/// Reduction self-updates do carry a dependence on their target and therefore
/// make the loop sequential under this test, matching the paper's observation
/// that unoptimized reductions are executed with expensive atomics when a
/// scheduler parallelizes them anyway.
pub fn is_parallel_loop(graph: &DependenceGraph, iter: &Var) -> bool {
    graph.carried_by(iter).is_empty()
}

/// True if permuting the perfectly nested loops of `nest` into `new_order`
/// (outermost first) preserves every dependence, i.e. no dependence direction
/// vector becomes lexicographically negative after permutation.
pub fn is_permutation_legal(graph: &DependenceGraph, nest: &Loop, new_order: &[Var]) -> bool {
    let original = nest.nested_iterators();
    debug_assert!(
        new_order.iter().all(|v| original.contains(v))
            && new_order
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                == new_order.len(),
        "new_order must be a duplicate-free selection of the nest's iterators"
    );
    let comp_ids: BTreeSet<CompId> = nest.computations().iter().map(|c| c.id).collect();
    for dep in graph.all() {
        if !comp_ids.contains(&dep.src) || !comp_ids.contains(&dep.dst) {
            continue;
        }
        // Build the permuted direction vector over the loops of this nest.
        let mut permuted = Vec::with_capacity(new_order.len());
        for iter in new_order {
            match dep.direction_of(iter) {
                Some(d) => permuted.push(d),
                // A loop that is not common to both endpoints does not
                // constrain the permutation at this level.
                None => permuted.push(Direction::Eq),
            }
        }
        if lexicographically_negative(&permuted) {
            return false;
        }
    }
    true
}

fn lexicographically_negative(directions: &[Direction]) -> bool {
    for d in directions {
        match d {
            Direction::Eq => continue,
            Direction::Lt => return false,
            Direction::Gt => return true,
            // `*` may be `>` at the leading position, so be conservative.
            Direction::Any => return true,
        }
    }
    false
}

/// True if two adjacent sibling loop nests (same iteration domain) can be
/// fused without reversing any dependence: fusing is illegal when a
/// dependence from a statement of the *first* nest to a statement of the
/// *second* nest would become backward-carried after fusion
/// (a "fusion-preventing" dependence).
pub fn can_fuse_siblings(graph: &DependenceGraph, first: &Loop, second: &Loop) -> bool {
    if first.lower != second.lower || first.upper != second.upper || first.step != second.step {
        return false;
    }
    let first_ids: BTreeSet<CompId> = first.computations().iter().map(|c| c.id).collect();
    let second_ids: BTreeSet<CompId> = second.computations().iter().map(|c| c.id).collect();
    for dep in graph.all() {
        // Dependences from the second nest back to the first rely on the
        // first nest finishing completely — unless they are carried by a
        // common *enclosing* loop, in which case any restructuring inside a
        // single iteration of that loop preserves them.
        if second_ids.contains(&dep.src) && first_ids.contains(&dep.dst) {
            if dep.carried_level().is_none() {
                return false;
            }
            continue;
        }
        if first_ids.contains(&dep.src) && second_ids.contains(&dep.dst) {
            // After fusion the two statements share the fused loop. The
            // dependence distance along the fused iterator must not be
            // negative; with no common loops before fusion we conservatively
            // compare the subscripts only through the recorded directions of
            // the outer common loops, which are unchanged. Cross-nest
            // dependences carry no common-loop information, so require that
            // the producing subscript is not *ahead* of the consuming one —
            // conservatively reject `Gt`-style relations, which we encode as
            // non-loop-independent cross-nest dependences.
            if !dep.is_loop_independent() && dep.carried_level().is_none() {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::analyze;
    use loop_ir::prelude::*;

    /// Figure 3a of the paper: two independent computations (contiguous and
    /// strided accesses) fused in a single loop nest.
    fn figure3a() -> loop_ir::Program {
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("B", vec![var("i"), var("j")]),
            load("A", vec![var("i"), var("j")]) * fconst(2.0),
        );
        let s2 = Computation::assign(
            "S2",
            ArrayRef::new("D", vec![var("j"), var("i")]),
            load("C", vec![var("j"), var("i")]) + fconst(1.0),
        );
        Program::builder("figure3a")
            .param("N", 8)
            .param("M", 8)
            .array("A", &["N", "M"])
            .array("B", &["N", "M"])
            .array("C", &["M", "N"])
            .array("D", &["M", "N"])
            .node(for_loop(
                "i",
                cst(0),
                var("N"),
                vec![for_loop(
                    "j",
                    cst(0),
                    var("M"),
                    vec![Node::Computation(s1), Node::Computation(s2)],
                )],
            ))
            .build()
            .unwrap()
    }

    fn producer_consumer() -> loop_ir::Program {
        // S1 produces B[i]; S2 consumes B[i] in the same iteration.
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("B", vec![var("i")]),
            load("A", vec![var("i")]),
        );
        let s2 = Computation::assign(
            "S2",
            ArrayRef::new("D", vec![var("i")]),
            load("B", vec![var("i")]) + fconst(1.0),
        );
        Program::builder("prodcons")
            .param("N", 8)
            .array("A", &["N"])
            .array("B", &["N"])
            .array("D", &["N"])
            .node(for_loop(
                "i",
                cst(0),
                var("N"),
                vec![Node::Computation(s1), Node::Computation(s2)],
            ))
            .build()
            .unwrap()
    }

    fn recurrence() -> loop_ir::Program {
        // A[i] = A[i-1] + 1: a cycle through the i loop.
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("A", vec![var("i")]),
            load("A", vec![var("i") - cst(1)]) + fconst(1.0),
        );
        let s2 = Computation::assign(
            "S2",
            ArrayRef::new("B", vec![var("i")]),
            load("A", vec![var("i")]),
        );
        Program::builder("recurrence")
            .param("N", 8)
            .array("A", &["N"])
            .array("B", &["N"])
            .node(for_loop(
                "i",
                cst(1),
                var("N"),
                vec![Node::Computation(s1), Node::Computation(s2)],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn independent_statements_can_distribute() {
        let p = figure3a();
        let g = analyze(&p);
        let outer = p.loop_nests()[0];
        let inner_body = &outer.body[0].as_loop().unwrap().body;
        assert!(can_distribute(&g, inner_body, 0, 1));
        let sccs = sccs_of_body(&g, inner_body);
        assert_eq!(sccs.len(), 2);
    }

    #[test]
    fn producer_consumer_can_distribute_in_order() {
        let p = producer_consumer();
        let g = analyze(&p);
        let body = &p.loop_nests()[0].body;
        // A forward loop-independent dependence does not prevent distribution,
        // it only fixes the order of the resulting loops.
        assert!(can_distribute(&g, body, 0, 1));
        let sccs = sccs_of_body(&g, body);
        assert_eq!(sccs, vec![vec![0], vec![1]]);
    }

    #[test]
    fn recurrence_keeps_statement_alone_but_orders_consumer() {
        let p = recurrence();
        let g = analyze(&p);
        let body = &p.loop_nests()[0].body;
        let sccs = sccs_of_body(&g, body);
        // No cycle between S1 and S2 (S1 only depends on itself), so two
        // components in producer-consumer order.
        assert_eq!(sccs, vec![vec![0], vec![1]]);
        // The i loop is not parallel because of the recurrence.
        assert!(!is_parallel_loop(&g, &Var::new("i")));
    }

    #[test]
    fn parallel_loop_detection() {
        let p = figure3a();
        let g = analyze(&p);
        assert!(is_parallel_loop(&g, &Var::new("i")));
        assert!(is_parallel_loop(&g, &Var::new("j")));
    }

    #[test]
    fn gemm_permutations_are_all_legal() {
        let update = Computation::reduction(
            "S1",
            ArrayRef::new("C", vec![var("i"), var("j")]),
            BinOp::Add,
            load("A", vec![var("i"), var("k")]) * load("B", vec![var("k"), var("j")]),
        );
        let p = Program::builder("gemm_update")
            .param("NI", 6)
            .param("NJ", 6)
            .param("NK", 6)
            .array("A", &["NI", "NK"])
            .array("B", &["NK", "NJ"])
            .array("C", &["NI", "NJ"])
            .node(for_loop(
                "i",
                cst(0),
                var("NI"),
                vec![for_loop(
                    "j",
                    cst(0),
                    var("NJ"),
                    vec![for_loop(
                        "k",
                        cst(0),
                        var("NK"),
                        vec![Node::Computation(update)],
                    )],
                )],
            ))
            .build()
            .unwrap();
        let g = analyze(&p);
        let nest = p.loop_nests()[0];
        let vars = |names: [&str; 3]| names.map(Var::new).to_vec();
        for order in [
            ["i", "j", "k"],
            ["i", "k", "j"],
            ["j", "i", "k"],
            ["j", "k", "i"],
            ["k", "i", "j"],
            ["k", "j", "i"],
        ] {
            assert!(
                is_permutation_legal(&g, nest, &vars(order)),
                "order {order:?} should be legal for a reduction nest"
            );
        }
    }

    #[test]
    fn stencil_interchange_is_illegal() {
        // A[i][j] = A[i-1][j+1] + 1: direction (<, >); interchanging i and j
        // would make it (>, <), which is lexicographically negative.
        let s = Computation::assign(
            "S1",
            ArrayRef::new("A", vec![var("i"), var("j")]),
            load("A", vec![var("i") - cst(1), var("j") + cst(1)]) + fconst(1.0),
        );
        let p = Program::builder("skewed")
            .param("N", 8)
            .array("A", &["N", "N"])
            .node(for_loop(
                "i",
                cst(1),
                var("N"),
                vec![for_loop(
                    "j",
                    cst(0),
                    var("N") - cst(1),
                    vec![Node::Computation(s)],
                )],
            ))
            .build()
            .unwrap();
        let g = analyze(&p);
        let nest = p.loop_nests()[0];
        assert!(is_permutation_legal(
            &g,
            nest,
            &[Var::new("i"), Var::new("j")]
        ));
        assert!(!is_permutation_legal(
            &g,
            nest,
            &[Var::new("j"), Var::new("i")]
        ));
    }

    #[test]
    fn fusion_of_producer_consumer_nests() {
        // for i { B[i] = A[i] }  for j { D[j] = B[j] } — fusable.
        let s0 = Computation::assign(
            "S0",
            ArrayRef::new("B", vec![var("i")]),
            load("A", vec![var("i")]),
        );
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("D", vec![var("j")]),
            load("B", vec![var("j")]),
        );
        let p = Program::builder("fusable")
            .param("N", 8)
            .array("A", &["N"])
            .array("B", &["N"])
            .array("D", &["N"])
            .node(for_loop("i", cst(0), var("N"), vec![Node::Computation(s0)]))
            .node(for_loop("j", cst(0), var("N"), vec![Node::Computation(s1)]))
            .build()
            .unwrap();
        let g = analyze(&p);
        let nests = p.loop_nests();
        assert!(can_fuse_siblings(&g, nests[0], nests[1]));
        // Nests with different domains cannot fuse.
        let mut shorter = nests[1].clone();
        shorter.upper = cst(4);
        assert!(!can_fuse_siblings(&g, nests[0], &shorter));
    }

    #[test]
    fn fusion_prevented_by_backward_dependence() {
        // for i { B[i] = A[i] }  for j { A[j] = C[j] } — the second nest
        // overwrites what the first nest read; fusing would let iteration j
        // overwrite A[j] before a later iteration i > j of the first loop
        // reads it. The anti dependence from nest 1 to nest 2 is fine, but
        // the reversed flow (nest 2 writes read later) appears as a
        // dependence from the first to the second nest that is not
        // loop-independent.
        let s0 = Computation::assign(
            "S0",
            ArrayRef::new("B", vec![var("i")]),
            load("A", vec![var("i") + cst(1)]),
        );
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("A", vec![var("j")]),
            load("C", vec![var("j")]),
        );
        let p = Program::builder("antifuse")
            .param("N", 8)
            .array("A", &["N"])
            .array("B", &["N"])
            .array("C", &["N"])
            .node(for_loop(
                "i",
                cst(0),
                var("N") - cst(1),
                vec![Node::Computation(s0)],
            ))
            .node(for_loop(
                "j",
                cst(0),
                var("N") - cst(1),
                vec![Node::Computation(s1)],
            ))
            .build()
            .unwrap();
        let g = analyze(&p);
        let nests = p.loop_nests();
        // S0 reads A[i+1], S1 writes A[j]: after fusion iteration t writes
        // A[t] while iteration t-1 already read A[t] — legal (anti, forward),
        // but our conservative cross-nest rule refuses nothing here because
        // the dependence is loop independent per-element shifted. The
        // dependence recorded is S0 -> S1 anti with no common loops; since it
        // is "loop independent" (empty vector), fusion is allowed.
        assert!(can_fuse_siblings(&g, nests[0], nests[1]));
    }

    #[test]
    fn fusion_rejected_when_second_nest_feeds_first() {
        // for i { B[i] = A[i] }  for j { A[j] = B[j] } creates a dependence
        // from the second nest back to the first (anti on A read/written),
        // which our rule rejects.
        let s0 = Computation::assign(
            "S0",
            ArrayRef::new("B", vec![var("i")]),
            load("A", vec![var("i")]),
        );
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("A", vec![var("j")]),
            load("B", vec![var("j")]) + fconst(1.0),
        );
        let p = Program::builder("cycle_nests")
            .param("N", 8)
            .array("A", &["N"])
            .array("B", &["N"])
            .node(for_loop("i", cst(0), var("N"), vec![Node::Computation(s0)]))
            .node(for_loop("j", cst(0), var("N"), vec![Node::Computation(s1)]))
            .build()
            .unwrap();
        let g = analyze(&p);
        let comps = p.computations();
        // Both directions are present: flow S0->S1 through B and anti S0->S1
        // through A; nothing flows backwards, so fusion stays legal.
        assert!(!g.between(comps[0].id, comps[1].id).is_empty());
        let nests = p.loop_nests();
        assert!(can_fuse_siblings(&g, nests[0], nests[1]));
    }

    #[test]
    fn sccs_handle_multi_node_cycles() {
        // S0 writes A reading B, S1 writes B reading A (previous iteration):
        // a genuine cycle keeps both statements in one component.
        let s0 = Computation::assign(
            "S0",
            ArrayRef::new("A", vec![var("i")]),
            load("B", vec![var("i") - cst(1)]),
        );
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("B", vec![var("i")]),
            load("A", vec![var("i")]),
        );
        let p = Program::builder("cycle")
            .param("N", 8)
            .array("A", &["N"])
            .array("B", &["N"])
            .node(for_loop(
                "i",
                cst(1),
                var("N"),
                vec![Node::Computation(s0), Node::Computation(s1)],
            ))
            .build()
            .unwrap();
        let g = analyze(&p);
        let body = &p.loop_nests()[0].body;
        let sccs = sccs_of_body(&g, body);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], vec![0, 1]);
        assert!(!can_distribute(&g, body, 0, 1));
    }
}
