//! # dependence — affine data-dependence analysis for the loop-nest IR
//!
//! The normalization criteria of the paper are both gated by dependences:
//! maximal loop fission may only separate computations "if there are no data
//! dependencies or loop-carried dependencies" between them (§2.1), and stride
//! minimization only considers *legal* permutations (§2.2). This crate
//! provides those facts:
//!
//! * [`analyze`] builds a [`DependenceGraph`] for a program: every pair of
//!   accesses to the same array (at least one being a write) is tested with a
//!   GCD + Banerjee-style test per direction vector over the common loops,
//! * [`legality`] answers the scheduling questions downstream passes ask:
//!   can these statements be distributed, is this loop permutation legal, can
//!   this loop run in parallel, can these two nests be fused.
//!
//! The tests are conservative: whenever a subscript is not affine or bounds
//! cannot be evaluated, the dependence is assumed to exist with unknown
//! direction.
//!
//! ```
//! use loop_ir::prelude::*;
//! use dependence::analyze;
//!
//! // for i { for k { S0: C[i] += A[i][k] } }  — the k loop carries the
//! // reduction dependence, the i loop does not.
//! let s0 = Computation::reduction("S0", ArrayRef::new("C", vec![var("i")]),
//!                                 BinOp::Add, load("A", vec![var("i"), var("k")]));
//! let p = Program::builder("rowsum")
//!     .param("N", 8).param("M", 8)
//!     .array("A", &["N", "M"]).array("C", &["N"])
//!     .node(for_loop("i", cst(0), var("N"),
//!         vec![for_loop("k", cst(0), var("M"), vec![Node::Computation(s0)])]))
//!     .build().unwrap();
//! let graph = analyze(&p);
//! assert!(dependence::is_parallel_loop(&graph, &p.loop_nests()[0].iter));
//! assert!(!dependence::is_parallel_loop(&graph, &Var::new("k")));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph;
pub mod legality;
pub mod tester;
pub mod types;

pub use graph::{analyze, DependenceGraph};
pub use legality::{
    can_distribute, can_fuse_siblings, is_parallel_loop, is_permutation_legal, sccs_of_body,
};
pub use types::{DepKind, Dependence, Direction};
