//! Dependence kinds, direction vectors and the [`Dependence`] record.

use std::fmt;

use loop_ir::expr::Var;
use loop_ir::nest::CompId;

/// The classical classification of a data dependence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepKind {
    /// Read-after-write (true) dependence.
    Flow,
    /// Write-after-read dependence.
    Anti,
    /// Write-after-write dependence.
    Output,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        };
        f.write_str(s)
    }
}

/// The direction of a dependence with respect to one common loop.
///
/// For a dependence from source iteration `I` to destination iteration `I'`,
/// the direction at loop `l` describes the relation `I[l] ? I'[l]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// The source iteration is earlier (`<`): the dependence is carried
    /// forward by this loop.
    Lt,
    /// Same iteration of this loop (`=`).
    Eq,
    /// The source iteration is later (`>`). A leading `>` would violate
    /// program order, so it can only appear below a carrying `<` level.
    Gt,
    /// Unknown / any relation (`*`), used when the test cannot refine.
    Any,
}

impl Direction {
    /// True if this direction admits `<`.
    pub fn may_be_lt(self) -> bool {
        matches!(self, Direction::Lt | Direction::Any)
    }

    /// True if this direction admits `>`.
    pub fn may_be_gt(self) -> bool {
        matches!(self, Direction::Gt | Direction::Any)
    }

    /// True if this direction admits `=`.
    pub fn may_be_eq(self) -> bool {
        matches!(self, Direction::Eq | Direction::Any)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::Lt => "<",
            Direction::Eq => "=",
            Direction::Gt => ">",
            Direction::Any => "*",
        };
        f.write_str(s)
    }
}

/// A data dependence between two computations (possibly the same one).
#[derive(Clone, PartialEq, Debug)]
pub struct Dependence {
    /// The computation whose access happens first in program order.
    pub src: CompId,
    /// The computation whose access happens second.
    pub dst: CompId,
    /// Dependence classification.
    pub kind: DepKind,
    /// The array through which the dependence flows.
    pub array: Var,
    /// The loops enclosing *both* computations, outermost first.
    pub common_loops: Vec<Var>,
    /// One direction per common loop, outermost first.
    pub directions: Vec<Direction>,
}

impl Dependence {
    /// True if the dependence holds within a single iteration of every common
    /// loop (all directions admit `=` and no level necessarily differs).
    pub fn is_loop_independent(&self) -> bool {
        self.directions.iter().all(|d| *d == Direction::Eq)
    }

    /// The outermost common-loop level (0-based) that may carry the
    /// dependence, i.e. the first level whose direction admits `<` while all
    /// outer levels admit `=`.
    pub fn carried_level(&self) -> Option<usize> {
        for (level, d) in self.directions.iter().enumerate() {
            if d.may_be_lt() {
                return Some(level);
            }
            if !d.may_be_eq() {
                return None;
            }
        }
        None
    }

    /// True if the dependence may be carried by the loop with the given
    /// iterator, i.e. the loop is a common loop and some instance of the
    /// dependence has its first `<` at that level.
    pub fn may_be_carried_by(&self, iter: &Var) -> bool {
        match self.common_loops.iter().position(|v| v == iter) {
            Some(level) => {
                // all outer levels must admit `=` and this level must admit `<`.
                self.directions[..level].iter().all(|d| d.may_be_eq())
                    && self.directions[level].may_be_lt()
            }
            None => false,
        }
    }

    /// The direction at the level of the given common loop, if it is one.
    pub fn direction_of(&self, iter: &Var) -> Option<Direction> {
        self.common_loops
            .iter()
            .position(|v| v == iter)
            .map(|i| self.directions[i])
    }
}

impl fmt::Display for Dependence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} -> {} on {} (",
            self.kind, self.src, self.dst, self.array
        )?;
        for (i, (l, d)) in self.common_loops.iter().zip(&self.directions).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}:{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(directions: Vec<Direction>) -> Dependence {
        Dependence {
            src: CompId(0),
            dst: CompId(1),
            kind: DepKind::Flow,
            array: Var::new("A"),
            common_loops: vec![Var::new("i"), Var::new("j"), Var::new("k")],
            directions,
        }
    }

    #[test]
    fn loop_independent_detection() {
        assert!(dep(vec![Direction::Eq, Direction::Eq, Direction::Eq]).is_loop_independent());
        assert!(!dep(vec![Direction::Eq, Direction::Lt, Direction::Eq]).is_loop_independent());
        assert!(!dep(vec![Direction::Any, Direction::Eq, Direction::Eq]).is_loop_independent());
    }

    #[test]
    fn carried_level_is_first_lt() {
        assert_eq!(
            dep(vec![Direction::Eq, Direction::Lt, Direction::Eq]).carried_level(),
            Some(1)
        );
        assert_eq!(
            dep(vec![Direction::Lt, Direction::Gt, Direction::Eq]).carried_level(),
            Some(0)
        );
        assert_eq!(
            dep(vec![Direction::Eq, Direction::Eq, Direction::Eq]).carried_level(),
            None
        );
        // A leading Gt cannot carry anything.
        assert_eq!(
            dep(vec![Direction::Gt, Direction::Lt, Direction::Eq]).carried_level(),
            None
        );
        // Any admits both = and <.
        assert_eq!(
            dep(vec![Direction::Any, Direction::Eq, Direction::Eq]).carried_level(),
            Some(0)
        );
    }

    #[test]
    fn carried_by_specific_loop() {
        let d = dep(vec![Direction::Eq, Direction::Lt, Direction::Any]);
        assert!(!d.may_be_carried_by(&Var::new("i")));
        assert!(d.may_be_carried_by(&Var::new("j")));
        // k can also carry it when j is =? j is Lt only (not Eq), so no.
        assert!(!d.may_be_carried_by(&Var::new("k")));
        assert!(!d.may_be_carried_by(&Var::new("z")));
    }

    #[test]
    fn direction_lookup_and_display() {
        let d = dep(vec![Direction::Eq, Direction::Lt, Direction::Any]);
        assert_eq!(d.direction_of(&Var::new("j")), Some(Direction::Lt));
        assert_eq!(d.direction_of(&Var::new("z")), None);
        let text = d.to_string();
        assert!(text.contains("flow"));
        assert!(text.contains("j:<"));
        assert!(text.contains("k:*"));
    }

    #[test]
    fn direction_predicates() {
        assert!(Direction::Any.may_be_lt());
        assert!(Direction::Any.may_be_gt());
        assert!(Direction::Any.may_be_eq());
        assert!(Direction::Lt.may_be_lt());
        assert!(!Direction::Lt.may_be_eq());
        assert!(!Direction::Eq.may_be_gt());
    }
}
