//! Pairwise dependence testing between two affine accesses.
//!
//! The test is a combination of the GCD test and Banerjee-style bound
//! checking, applied dimension by dimension under the constraints implied by
//! a candidate direction vector over the common loops. It is conservative:
//! it answers "no dependence" only when a dimension's equation provably has
//! no solution inside the iteration box.

use std::collections::BTreeMap;

use loop_ir::array::ArrayRef;
use loop_ir::expr::{AffineExpr, Var};

use crate::types::Direction;

/// The numeric iteration range of one loop, `[lower, upper)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LoopBound {
    /// Loop iterator.
    pub iter: Var,
    /// Inclusive lower bound.
    pub lower: i64,
    /// Exclusive upper bound.
    pub upper: i64,
}

impl LoopBound {
    /// Creates a loop bound record.
    pub fn new(iter: impl Into<Var>, lower: i64, upper: i64) -> Self {
        LoopBound {
            iter: iter.into(),
            lower,
            upper,
        }
    }

    fn extent(&self) -> i64 {
        (self.upper - self.lower).max(0)
    }
}

/// An access together with the loops enclosing its computation (outermost
/// first) with evaluated numeric bounds.
#[derive(Clone, Debug)]
pub struct AccessContext<'a> {
    /// The accessed element.
    pub array_ref: &'a ArrayRef,
    /// All enclosing loops of the access, outermost first.
    pub loops: &'a [LoopBound],
}

/// A symbolic variable of the dependence system with its inclusive range.
#[derive(Clone, Debug)]
struct BoxVar {
    name: Var,
    min: i64,
    max: i64,
}

/// Tests whether a dependence from `src` to `dst` may exist under the given
/// direction vector over `common` loops (outermost first).
///
/// `params` supplies values for symbolic parameters appearing in subscripts.
/// Returns `true` (conservatively) if any subscript is not affine.
pub fn may_depend(
    src: &AccessContext<'_>,
    dst: &AccessContext<'_>,
    common: &[Var],
    directions: &[Direction],
    params: &BTreeMap<Var, i64>,
) -> bool {
    debug_assert_eq!(common.len(), directions.len());
    if src.array_ref.array != dst.array_ref.array || src.array_ref.rank() != dst.array_ref.rank() {
        return false;
    }
    let (Some(src_idx), Some(dst_idx)) = (
        src.array_ref.affine_indices_with(params),
        dst.array_ref.affine_indices_with(params),
    ) else {
        // Non-affine subscripts: assume the dependence exists.
        return true;
    };

    // Build the variable space: source iterators `s$name`, destination
    // iterators `d$name`, and per-direction distance variables `delta$name`.
    let mut vars: Vec<BoxVar> = Vec::new();
    // substitutions applied to source-side / destination-side subscripts.
    let mut src_subst: BTreeMap<Var, AffineExpr> = BTreeMap::new();
    let mut dst_subst: BTreeMap<Var, AffineExpr> = BTreeMap::new();

    for bound in src.loops {
        if !common.contains(&bound.iter) {
            let name = Var::new(format!("s${}", bound.iter));
            vars.push(BoxVar {
                name: name.clone(),
                min: bound.lower,
                max: bound.upper - 1,
            });
            src_subst.insert(bound.iter.clone(), AffineExpr::var(name));
        }
    }
    for bound in dst.loops {
        if !common.contains(&bound.iter) {
            let name = Var::new(format!("d${}", bound.iter));
            vars.push(BoxVar {
                name: name.clone(),
                min: bound.lower,
                max: bound.upper - 1,
            });
            dst_subst.insert(bound.iter.clone(), AffineExpr::var(name));
        }
    }

    for (iter, dir) in common.iter().zip(directions) {
        let src_bound = src.loops.iter().find(|b| &b.iter == iter);
        let dst_bound = dst.loops.iter().find(|b| &b.iter == iter);
        let (Some(sb), Some(db)) = (src_bound, dst_bound) else {
            // A "common" loop not actually enclosing both sides: treat both
            // sides as independent box variables.
            continue;
        };
        let base = Var::new(format!("s${}", iter));
        vars.push(BoxVar {
            name: base.clone(),
            min: sb.lower,
            max: sb.upper - 1,
        });
        src_subst.insert(iter.clone(), AffineExpr::var(base.clone()));
        match dir {
            Direction::Eq => {
                dst_subst.insert(iter.clone(), AffineExpr::var(base));
            }
            Direction::Lt => {
                // dst iteration strictly later: d = s + delta, delta >= 1.
                let extent = sb.extent().max(db.extent());
                if extent <= 1 {
                    return false;
                }
                let delta = Var::new(format!("delta${}", iter));
                vars.push(BoxVar {
                    name: delta.clone(),
                    min: 1,
                    max: extent - 1,
                });
                dst_subst.insert(iter.clone(), AffineExpr::var(base) + AffineExpr::var(delta));
            }
            Direction::Gt => {
                // dst iteration strictly earlier: d = s - delta, delta >= 1.
                let extent = sb.extent().max(db.extent());
                if extent <= 1 {
                    return false;
                }
                let delta = Var::new(format!("delta${}", iter));
                vars.push(BoxVar {
                    name: delta.clone(),
                    min: 1,
                    max: extent - 1,
                });
                dst_subst.insert(iter.clone(), AffineExpr::var(base) - AffineExpr::var(delta));
            }
            Direction::Any => {
                let name = Var::new(format!("d${}", iter));
                vars.push(BoxVar {
                    name: name.clone(),
                    min: db.lower,
                    max: db.upper - 1,
                });
                dst_subst.insert(iter.clone(), AffineExpr::var(name));
            }
        }
    }

    // Per-dimension equation: rewrite(src subscript) - rewrite(dst subscript) = 0.
    for (sdim, ddim) in src_idx.iter().zip(&dst_idx) {
        let lhs = rewrite(sdim, &src_subst, params);
        let rhs = rewrite(ddim, &dst_subst, params);
        let diff = lhs - rhs;
        if !equation_may_have_solution(&diff, &vars) {
            return false;
        }
    }
    true
}

/// Rewrites an affine subscript: substitutes parameters with their numeric
/// values and iterators with their renamed/shifted forms.
fn rewrite(
    subscript: &AffineExpr,
    subst: &BTreeMap<Var, AffineExpr>,
    params: &BTreeMap<Var, i64>,
) -> AffineExpr {
    let mut out = AffineExpr::constant(subscript.constant_part());
    for (v, c) in subscript.terms() {
        if let Some(replacement) = subst.get(v) {
            out = out + replacement.scaled(c);
        } else if let Some(value) = params.get(v) {
            out = out + AffineExpr::constant(c * value);
        } else {
            // Unknown symbol: keep it as an unconstrained variable with a
            // huge range, handled conservatively below.
            out = out + AffineExpr::var(v.clone()).scaled(c);
        }
    }
    out
}

/// GCD test plus interval (Banerjee) test: does `expr = 0` possibly have an
/// integer solution with every variable inside its box?
fn equation_may_have_solution(expr: &AffineExpr, vars: &[BoxVar]) -> bool {
    let constant = expr.constant_part();
    let coefficients: Vec<(Var, i64)> = expr.terms().map(|(v, c)| (v.clone(), c)).collect();
    if coefficients.is_empty() {
        return constant == 0;
    }

    // GCD test.
    let gcd = coefficients
        .iter()
        .map(|(_, c)| c.unsigned_abs())
        .fold(0u64, gcd_u64);
    if gcd != 0 && !constant.unsigned_abs().is_multiple_of(gcd) {
        return false;
    }

    // Interval test: min/max of the expression over the box must straddle 0.
    let mut min = constant as i128;
    let mut max = constant as i128;
    for (v, c) in &coefficients {
        let (lo, hi) = vars
            .iter()
            .find(|b| &b.name == v)
            .map(|b| (b.min as i128, b.max as i128))
            // Unknown symbols (unbound parameters) are unbounded.
            .unwrap_or((i64::MIN as i128 / 4, i64::MAX as i128 / 4));
        if lo > hi {
            return false;
        }
        let c = *c as i128;
        if c >= 0 {
            min += c * lo;
            max += c * hi;
        } else {
            min += c * hi;
            max += c * lo;
        }
    }
    min <= 0 && 0 <= max
}

fn gcd_u64(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd_u64(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::expr::{cst, var};

    fn params() -> BTreeMap<Var, i64> {
        BTreeMap::new()
    }

    fn bounds(list: &[(&str, i64, i64)]) -> Vec<LoopBound> {
        list.iter()
            .map(|(n, lo, hi)| LoopBound::new(*n, *lo, *hi))
            .collect()
    }

    #[test]
    fn identical_access_same_iteration_depends() {
        let r = ArrayRef::new("A", vec![var("i")]);
        let loops = bounds(&[("i", 0, 10)]);
        let src = AccessContext {
            array_ref: &r,
            loops: &loops,
        };
        let dst = AccessContext {
            array_ref: &r,
            loops: &loops,
        };
        assert!(may_depend(
            &src,
            &dst,
            &[Var::new("i")],
            &[Direction::Eq],
            &params()
        ));
    }

    #[test]
    fn same_subscript_cannot_depend_across_iterations() {
        // A[i] written in iteration i is never touched by iteration i' != i.
        let r = ArrayRef::new("A", vec![var("i")]);
        let loops = bounds(&[("i", 0, 10)]);
        let src = AccessContext {
            array_ref: &r,
            loops: &loops,
        };
        let dst = AccessContext {
            array_ref: &r,
            loops: &loops,
        };
        assert!(!may_depend(
            &src,
            &dst,
            &[Var::new("i")],
            &[Direction::Lt],
            &params()
        ));
        assert!(!may_depend(
            &src,
            &dst,
            &[Var::new("i")],
            &[Direction::Gt],
            &params()
        ));
    }

    #[test]
    fn shifted_subscript_depends_across_one_iteration() {
        // S1 writes A[i]; S2 reads A[i-1]: flow carried with distance 1.
        let w = ArrayRef::new("A", vec![var("i")]);
        let r = ArrayRef::new("A", vec![var("i") - cst(1)]);
        let loops = bounds(&[("i", 0, 10)]);
        let src = AccessContext {
            array_ref: &w,
            loops: &loops,
        };
        let dst = AccessContext {
            array_ref: &r,
            loops: &loops,
        };
        assert!(may_depend(
            &src,
            &dst,
            &[Var::new("i")],
            &[Direction::Lt],
            &params()
        ));
        // but not in the same iteration and not backwards at distance >= 1.
        assert!(!may_depend(
            &src,
            &dst,
            &[Var::new("i")],
            &[Direction::Eq],
            &params()
        ));
        assert!(!may_depend(
            &src,
            &dst,
            &[Var::new("i")],
            &[Direction::Gt],
            &params()
        ));
    }

    #[test]
    fn gcd_test_rejects_parity_mismatch() {
        // A[2*i] vs A[2*i + 1] can never alias.
        let even = ArrayRef::new("A", vec![var("i") * cst(2)]);
        let odd = ArrayRef::new("A", vec![var("i") * cst(2) + cst(1)]);
        let loops = bounds(&[("i", 0, 100)]);
        let src = AccessContext {
            array_ref: &even,
            loops: &loops,
        };
        let dst = AccessContext {
            array_ref: &odd,
            loops: &loops,
        };
        for dir in [Direction::Lt, Direction::Eq, Direction::Gt, Direction::Any] {
            assert!(!may_depend(&src, &dst, &[Var::new("i")], &[dir], &params()));
        }
    }

    #[test]
    fn banerjee_rejects_disjoint_ranges() {
        // A[i] vs A[i + 100] with i in [0, 50): ranges never overlap.
        let a = ArrayRef::new("A", vec![var("i")]);
        let b = ArrayRef::new("A", vec![var("i") + cst(100)]);
        let loops = bounds(&[("i", 0, 50)]);
        let src = AccessContext {
            array_ref: &a,
            loops: &loops,
        };
        let dst = AccessContext {
            array_ref: &b,
            loops: &loops,
        };
        assert!(!may_depend(
            &src,
            &dst,
            &[Var::new("i")],
            &[Direction::Any],
            &params()
        ));
    }

    #[test]
    fn two_dimensional_independent_dims() {
        // A[i][j] and A[i][j+1]: dependence only with j carrying distance 1.
        let w = ArrayRef::new("A", vec![var("i"), var("j")]);
        let r = ArrayRef::new("A", vec![var("i"), var("j") + cst(1)]);
        let loops = bounds(&[("i", 0, 10), ("j", 0, 10)]);
        let src = AccessContext {
            array_ref: &w,
            loops: &loops,
        };
        let dst = AccessContext {
            array_ref: &r,
            loops: &loops,
        };
        let common = [Var::new("i"), Var::new("j")];
        assert!(may_depend(
            &src,
            &dst,
            &common,
            &[Direction::Eq, Direction::Gt],
            &params()
        ));
        assert!(!may_depend(
            &src,
            &dst,
            &common,
            &[Direction::Eq, Direction::Eq],
            &params()
        ));
        assert!(!may_depend(
            &src,
            &dst,
            &common,
            &[Direction::Lt, Direction::Eq],
            &params()
        ));
    }

    #[test]
    fn reduction_target_depends_across_non_subscript_loop() {
        // C[i] += ... inside loops i, k: the k loop relates identical C[i]
        // elements across iterations.
        let c = ArrayRef::new("C", vec![var("i")]);
        let loops = bounds(&[("i", 0, 10), ("k", 0, 10)]);
        let src = AccessContext {
            array_ref: &c,
            loops: &loops,
        };
        let dst = AccessContext {
            array_ref: &c,
            loops: &loops,
        };
        let common = [Var::new("i"), Var::new("k")];
        assert!(may_depend(
            &src,
            &dst,
            &common,
            &[Direction::Eq, Direction::Lt],
            &params()
        ));
        assert!(!may_depend(
            &src,
            &dst,
            &common,
            &[Direction::Lt, Direction::Eq],
            &params()
        ));
    }

    #[test]
    fn different_arrays_never_depend() {
        let a = ArrayRef::new("A", vec![var("i")]);
        let b = ArrayRef::new("B", vec![var("i")]);
        let loops = bounds(&[("i", 0, 10)]);
        let src = AccessContext {
            array_ref: &a,
            loops: &loops,
        };
        let dst = AccessContext {
            array_ref: &b,
            loops: &loops,
        };
        assert!(!may_depend(
            &src,
            &dst,
            &[Var::new("i")],
            &[Direction::Any],
            &params()
        ));
    }

    #[test]
    fn uncommon_loops_are_existential() {
        // src: A[k] inside loop k (0..10); dst: A[j] inside loop j (20..30).
        // The ranges of the subscripts are disjoint, so no dependence.
        let a = ArrayRef::new("A", vec![var("k")]);
        let b = ArrayRef::new("A", vec![var("j")]);
        let src_loops = bounds(&[("k", 0, 10)]);
        let dst_loops = bounds(&[("j", 20, 30)]);
        let src = AccessContext {
            array_ref: &a,
            loops: &src_loops,
        };
        let dst = AccessContext {
            array_ref: &b,
            loops: &dst_loops,
        };
        assert!(!may_depend(&src, &dst, &[], &[], &params()));
        // Overlapping ranges do depend.
        let dst_loops2 = bounds(&[("j", 5, 30)]);
        let dst2 = AccessContext {
            array_ref: &b,
            loops: &dst_loops2,
        };
        assert!(may_depend(&src, &dst2, &[], &[], &params()));
    }

    #[test]
    fn parameters_are_substituted() {
        // A[i + N] vs A[i] with N = 100 and i in [0, 50): disjoint.
        let shifted = ArrayRef::new("A", vec![var("i") + var("N")]);
        let plain = ArrayRef::new("A", vec![var("i")]);
        let loops = bounds(&[("i", 0, 50)]);
        let src = AccessContext {
            array_ref: &shifted,
            loops: &loops,
        };
        let dst = AccessContext {
            array_ref: &plain,
            loops: &loops,
        };
        let mut p = BTreeMap::new();
        p.insert(Var::new("N"), 100);
        assert!(!may_depend(
            &src,
            &dst,
            &[Var::new("i")],
            &[Direction::Any],
            &p
        ));
        // Without a binding the parameter is unbounded, so be conservative.
        assert!(may_depend(
            &src,
            &dst,
            &[Var::new("i")],
            &[Direction::Any],
            &params()
        ));
    }

    #[test]
    fn non_affine_subscript_is_conservative() {
        let nonaffine = ArrayRef::new("A", vec![var("i") * var("i")]);
        let plain = ArrayRef::new("A", vec![var("i")]);
        let loops = bounds(&[("i", 0, 10)]);
        let src = AccessContext {
            array_ref: &nonaffine,
            loops: &loops,
        };
        let dst = AccessContext {
            array_ref: &plain,
            loops: &loops,
        };
        assert!(may_depend(
            &src,
            &dst,
            &[Var::new("i")],
            &[Direction::Lt],
            &params()
        ));
    }

    #[test]
    fn single_trip_loop_cannot_carry() {
        let r = ArrayRef::new("A", vec![cst(0)]);
        let loops = bounds(&[("i", 0, 1)]);
        let src = AccessContext {
            array_ref: &r,
            loops: &loops,
        };
        let dst = AccessContext {
            array_ref: &r,
            loops: &loops,
        };
        assert!(!may_depend(
            &src,
            &dst,
            &[Var::new("i")],
            &[Direction::Lt],
            &params()
        ));
        assert!(may_depend(
            &src,
            &dst,
            &[Var::new("i")],
            &[Direction::Eq],
            &params()
        ));
    }
}
