//! Building the dependence graph of a program.

use std::collections::BTreeMap;

use loop_ir::array::{Access, AccessKind};
use loop_ir::expr::Var;
use loop_ir::nest::CompId;
use loop_ir::program::Program;
use loop_ir::visit::CompContext;

use crate::tester::{may_depend, AccessContext, LoopBound};
use crate::types::{DepKind, Dependence, Direction};

/// Fallback extent used for loops whose bounds cannot be evaluated under the
/// program's parameter bindings. Making it large keeps the analysis
/// conservative (more dependences, never fewer).
const UNKNOWN_EXTENT: i64 = 1 << 20;

/// The data-dependence graph of a program.
///
/// Nodes are the program's computations (identified by [`CompId`]); edges are
/// [`Dependence`] records annotated with direction vectors over the common
/// loops of the two endpoints.
#[derive(Clone, Debug, Default)]
pub struct DependenceGraph {
    deps: Vec<Dependence>,
    order: Vec<CompId>,
}

impl DependenceGraph {
    /// All dependences.
    pub fn all(&self) -> &[Dependence] {
        &self.deps
    }

    /// The computations of the analyzed program in execution order.
    pub fn computation_order(&self) -> &[CompId] {
        &self.order
    }

    /// Dependences from `src` to `dst`.
    pub fn between(&self, src: CompId, dst: CompId) -> Vec<&Dependence> {
        self.deps
            .iter()
            .filter(|d| d.src == src && d.dst == dst)
            .collect()
    }

    /// Dependences that involve the given computation (as source or sink).
    pub fn involving(&self, id: CompId) -> Vec<&Dependence> {
        self.deps
            .iter()
            .filter(|d| d.src == id || d.dst == id)
            .collect()
    }

    /// Dependences that may be carried by the loop with the given iterator.
    pub fn carried_by(&self, iter: &Var) -> Vec<&Dependence> {
        self.deps
            .iter()
            .filter(|d| d.may_be_carried_by(iter))
            .collect()
    }

    /// True if there is any dependence (in either direction) between the two
    /// computations.
    pub fn connected(&self, a: CompId, b: CompId) -> bool {
        self.deps
            .iter()
            .any(|d| (d.src == a && d.dst == b) || (d.src == b && d.dst == a))
    }

    /// Number of dependence edges.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// True if the program has no dependences at all.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }
}

/// Analyzes a program and returns its dependence graph.
///
/// Loop bounds are evaluated under the program's concrete parameter bindings;
/// bounds that cannot be evaluated are replaced by a very large extent, which
/// keeps the result conservative.
pub fn analyze(program: &Program) -> DependenceGraph {
    let contexts = program.computation_contexts();
    let mut graph = DependenceGraph {
        deps: Vec::new(),
        order: contexts.iter().map(|c| c.computation.id).collect(),
    };

    // Pre-compute numeric loop bounds per computation.
    let loop_bounds: Vec<Vec<LoopBound>> = contexts
        .iter()
        .map(|ctx| {
            ctx.loops
                .iter()
                .map(|l| {
                    let lower = l.lower.eval(&program.params).unwrap_or(0);
                    let upper = l
                        .upper
                        .eval(&program.params)
                        .unwrap_or(lower + UNKNOWN_EXTENT);
                    LoopBound::new(l.iter.clone(), lower, upper)
                })
                .collect()
        })
        .collect();

    for (i, src_ctx) in contexts.iter().enumerate() {
        for (j, dst_ctx) in contexts.iter().enumerate().skip(i) {
            analyze_pair(
                program,
                src_ctx,
                &loop_bounds[i],
                dst_ctx,
                &loop_bounds[j],
                i == j,
                &mut graph.deps,
            );
        }
    }
    graph
}

/// Common loops of two computations: the iterators shared by both loop
/// stacks, in the source's (outermost-first) order.
fn common_loops(a: &CompContext<'_>, b: &CompContext<'_>) -> Vec<Var> {
    let b_iters: Vec<Var> = b.iterators();
    a.iterators()
        .into_iter()
        .filter(|v| b_iters.contains(v))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn analyze_pair(
    program: &Program,
    src_ctx: &CompContext<'_>,
    src_bounds: &[LoopBound],
    dst_ctx: &CompContext<'_>,
    dst_bounds: &[LoopBound],
    is_self: bool,
    out: &mut Vec<Dependence>,
) {
    let common = common_loops(src_ctx, dst_ctx);
    let src_accesses = src_ctx.computation.accesses();
    let dst_accesses = dst_ctx.computation.accesses();

    for sa in &src_accesses {
        for da in &dst_accesses {
            if sa.array_ref.array != da.array_ref.array {
                continue;
            }
            if !sa.is_write() && !da.is_write() {
                continue;
            }
            for directions in direction_vectors(common.len()) {
                // Skip the degenerate self pair in the same iteration: it is
                // the statement's own read-modify-write, not an ordering
                // constraint.
                if is_self && directions.iter().all(|d| *d == Direction::Eq) {
                    continue;
                }
                let lexi = lexicographic_sign(&directions);
                if lexi == Sign::Negative && is_self {
                    // For a self pair the reversed vector is enumerated
                    // anyway; skip duplicates.
                    continue;
                }
                let src_acc = AccessContext {
                    array_ref: &sa.array_ref,
                    loops: src_bounds,
                };
                let dst_acc = AccessContext {
                    array_ref: &da.array_ref,
                    loops: dst_bounds,
                };
                if !may_depend(&src_acc, &dst_acc, &common, &directions, &program.params) {
                    continue;
                }
                match lexi {
                    Sign::NonNegative => out.push(make_dep(
                        src_ctx.computation.id,
                        dst_ctx.computation.id,
                        sa,
                        da,
                        &common,
                        directions,
                    )),
                    Sign::Negative => {
                        // The dependence actually flows from dst to src with
                        // the reversed direction vector.
                        let reversed: Vec<Direction> =
                            directions.iter().map(|d| reverse(*d)).collect();
                        out.push(make_dep(
                            dst_ctx.computation.id,
                            src_ctx.computation.id,
                            da,
                            sa,
                            &common,
                            reversed,
                        ));
                    }
                }
            }
        }
    }
}

fn make_dep(
    src: CompId,
    dst: CompId,
    src_access: &Access,
    dst_access: &Access,
    common: &[Var],
    directions: Vec<Direction>,
) -> Dependence {
    let kind = match (src_access.kind, dst_access.kind) {
        (AccessKind::Write, AccessKind::Read) => DepKind::Flow,
        (AccessKind::Read, AccessKind::Write) => DepKind::Anti,
        (AccessKind::Write, AccessKind::Write) => DepKind::Output,
        (AccessKind::Read, AccessKind::Read) => unreachable!("read-read pairs are filtered"),
    };
    Dependence {
        src,
        dst,
        kind,
        array: src_access.array_ref.array.clone(),
        common_loops: common.to_vec(),
        directions,
    }
}

fn reverse(d: Direction) -> Direction {
    match d {
        Direction::Lt => Direction::Gt,
        Direction::Gt => Direction::Lt,
        Direction::Eq => Direction::Eq,
        Direction::Any => Direction::Any,
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Sign {
    NonNegative,
    Negative,
}

/// The lexicographic sign of a direction vector: negative when the first
/// non-`=` component is `>`, i.e. the "dependence" would point backwards in
/// time and must be reported with source and destination swapped.
fn lexicographic_sign(directions: &[Direction]) -> Sign {
    for d in directions {
        match d {
            Direction::Eq => continue,
            Direction::Lt | Direction::Any => return Sign::NonNegative,
            Direction::Gt => return Sign::Negative,
        }
    }
    Sign::NonNegative
}

/// Enumerates all direction vectors over `n` common loops.
fn direction_vectors(n: usize) -> Vec<Vec<Direction>> {
    let mut out = vec![Vec::new()];
    for _ in 0..n {
        let mut next = Vec::with_capacity(out.len() * 3);
        for prefix in &out {
            for d in [Direction::Eq, Direction::Lt, Direction::Gt] {
                let mut v = prefix.clone();
                v.push(d);
                next.push(v);
            }
        }
        out = next;
    }
    out
}

/// Evaluated loop bounds for every computation of a program, exposed for
/// reuse by downstream crates (e.g. the cost model).
pub fn evaluated_bounds(program: &Program) -> BTreeMap<CompId, Vec<LoopBound>> {
    program
        .computation_contexts()
        .iter()
        .map(|ctx| {
            let bounds = ctx
                .loops
                .iter()
                .map(|l| {
                    let lower = l.lower.eval(&program.params).unwrap_or(0);
                    let upper = l
                        .upper
                        .eval(&program.params)
                        .unwrap_or(lower + UNKNOWN_EXTENT);
                    LoopBound::new(l.iter.clone(), lower, upper)
                })
                .collect();
            (ctx.computation.id, bounds)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::prelude::*;

    fn gemm() -> Program {
        let init = Computation::assign(
            "S0",
            ArrayRef::new("C", vec![var("i"), var("j")]),
            load("C", vec![var("i"), var("j")]) * param("beta"),
        );
        let update = Computation::reduction(
            "S1",
            ArrayRef::new("C", vec![var("i"), var("j")]),
            BinOp::Add,
            load("A", vec![var("i"), var("k")]) * load("B", vec![var("k"), var("j")]),
        );
        Program::builder("gemm")
            .param("NI", 8)
            .param("NJ", 8)
            .param("NK", 8)
            .scalar("beta", 1.2)
            .array("A", &["NI", "NK"])
            .array("B", &["NK", "NJ"])
            .array("C", &["NI", "NJ"])
            .node(for_loop(
                "i",
                cst(0),
                var("NI"),
                vec![for_loop(
                    "j",
                    cst(0),
                    var("NJ"),
                    vec![
                        Node::Computation(init),
                        for_loop("k", cst(0), var("NK"), vec![Node::Computation(update)]),
                    ],
                )],
            ))
            .build()
            .unwrap()
    }

    fn stencil() -> Program {
        // for t { for i in 1..N-1 { B[i] = A[i-1]+A[i+1]; } for i { A[i] = B[i]; } }
        let s0 = Computation::assign(
            "S0",
            ArrayRef::new("B", vec![var("i")]),
            load("A", vec![var("i") - cst(1)]) + load("A", vec![var("i") + cst(1)]),
        );
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("A", vec![var("i2")]),
            load("B", vec![var("i2")]),
        );
        Program::builder("jacobi1d")
            .param("T", 4)
            .param("N", 16)
            .array("A", &["N"])
            .array("B", &["N"])
            .node(for_loop(
                "t",
                cst(0),
                var("T"),
                vec![
                    for_loop("i", cst(1), var("N") - cst(1), vec![Node::Computation(s0)]),
                    for_loop("i2", cst(1), var("N") - cst(1), vec![Node::Computation(s1)]),
                ],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn gemm_reduction_carried_only_by_k() {
        let p = gemm();
        let g = analyze(&p);
        assert!(!g.is_empty());
        assert!(g.carried_by(&Var::new("i")).is_empty());
        assert!(g.carried_by(&Var::new("j")).is_empty());
        assert!(!g.carried_by(&Var::new("k")).is_empty());
    }

    #[test]
    fn gemm_init_to_update_flow_dependence() {
        let p = gemm();
        let g = analyze(&p);
        let comps = p.computations();
        let (init, update) = (comps[0].id, comps[1].id);
        let deps = g.between(init, update);
        assert!(!deps.is_empty());
        assert!(deps
            .iter()
            .any(|d| d.kind == DepKind::Flow && d.is_loop_independent()));
        // No dependence can flow backwards from the update to the init in a
        // later iteration of i or j (subscripts are identical).
        assert!(g.between(update, init).is_empty());
    }

    #[test]
    fn stencil_flow_and_anti_dependences() {
        let p = stencil();
        let g = analyze(&p);
        let comps = p.computations();
        let (s0, s1) = (comps[0].id, comps[1].id);
        // B produced by S0 and consumed by S1 in the same t iteration.
        assert!(g
            .between(s0, s1)
            .iter()
            .any(|d| d.kind == DepKind::Flow && d.array == Var::new("B")));
        // A written by S1 and read by S0 in a *later* t iteration: flow from
        // S1 to S0 carried by t.
        assert!(g.between(s1, s0).iter().any(|d| d.kind == DepKind::Flow
            && d.array == Var::new("A")
            && d.may_be_carried_by(&Var::new("t"))));
        // The t loop therefore carries dependences, i is clean for S0.
        assert!(!g.carried_by(&Var::new("t")).is_empty());
        assert!(g.carried_by(&Var::new("i")).is_empty());
    }

    #[test]
    fn independent_statements_have_no_edges() {
        let s0 = Computation::assign(
            "S0",
            ArrayRef::new("B", vec![var("i")]),
            load("A", vec![var("i")]),
        );
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("D", vec![var("i")]),
            load("E", vec![var("i")]),
        );
        let p = Program::builder("indep")
            .param("N", 8)
            .array("A", &["N"])
            .array("B", &["N"])
            .array("D", &["N"])
            .array("E", &["N"])
            .node(for_loop(
                "i",
                cst(0),
                var("N"),
                vec![Node::Computation(s0), Node::Computation(s1)],
            ))
            .build()
            .unwrap();
        let g = analyze(&p);
        let comps = p.computations();
        assert!(!g.connected(comps[0].id, comps[1].id));
        assert!(g.is_empty());
        assert_eq!(g.computation_order().len(), 2);
    }

    #[test]
    fn shared_read_does_not_create_dependence() {
        let s0 = Computation::assign(
            "S0",
            ArrayRef::new("B", vec![var("i")]),
            load("A", vec![var("i")]),
        );
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("D", vec![var("i")]),
            load("A", vec![var("i")]),
        );
        let p = Program::builder("shared_read")
            .param("N", 8)
            .array("A", &["N"])
            .array("B", &["N"])
            .array("D", &["N"])
            .node(for_loop(
                "i",
                cst(0),
                var("N"),
                vec![Node::Computation(s0), Node::Computation(s1)],
            ))
            .build()
            .unwrap();
        let g = analyze(&p);
        assert!(g.is_empty());
    }

    #[test]
    fn involving_lists_both_endpoints() {
        let p = gemm();
        let g = analyze(&p);
        let comps = p.computations();
        assert!(!g.involving(comps[0].id).is_empty());
        assert!(!g.involving(comps[1].id).is_empty());
        assert_eq!(g.len(), g.all().len());
    }

    #[test]
    fn evaluated_bounds_match_params() {
        let p = gemm();
        let bounds = evaluated_bounds(&p);
        let update_id = p.computations()[1].id;
        let b = &bounds[&update_id];
        assert_eq!(b.len(), 3);
        assert!(b.iter().all(|lb| lb.lower == 0 && lb.upper == 8));
    }

    #[test]
    fn cross_nest_dependences_have_no_common_loops() {
        // for i { A[i] = ... }  for j { B[j] = A[j] } — flow dependence with
        // an empty direction vector.
        let s0 = Computation::assign("S0", ArrayRef::new("A", vec![var("i")]), fconst(1.0));
        let s1 = Computation::assign(
            "S1",
            ArrayRef::new("B", vec![var("j")]),
            load("A", vec![var("j")]),
        );
        let p = Program::builder("two_nests")
            .param("N", 8)
            .array("A", &["N"])
            .array("B", &["N"])
            .node(for_loop("i", cst(0), var("N"), vec![Node::Computation(s0)]))
            .node(for_loop("j", cst(0), var("N"), vec![Node::Computation(s1)]))
            .build()
            .unwrap();
        let g = analyze(&p);
        let comps = p.computations();
        let deps = g.between(comps[0].id, comps[1].id);
        assert_eq!(deps.len(), 1);
        assert!(deps[0].common_loops.is_empty());
        assert!(deps[0].is_loop_independent());
    }
}
