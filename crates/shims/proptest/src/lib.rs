//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no crates.io access, so this shim provides the
//! [`Strategy`] trait (ranges, `prop::bool::ANY`, tuples, `prop_map`), the
//! [`ProptestConfig`] case count and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros. Values are generated from a deterministic
//! per-case RNG; there is no shrinking — a failing case panics with the
//! generated inputs left to the assertion message.
//!
//! Like real proptest, failing cases can be persisted: every case draws its
//! values from a single `u64` seed, a failure prints that seed as a
//! `cc 0x…` line, and committing the line to
//! `proptest-regressions/<file-stem>.txt` (next to the crate's manifest)
//! makes every later run replay it *before* the random cases.

#![warn(missing_docs)]

use std::ops::Range;
use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving value generation.
pub type TestRng = StdRng;

/// Creates the deterministic RNG used by the [`proptest!`] macro.
pub fn new_rng() -> TestRng {
    TestRng::seed_from_u64(0x9E37_79B9_7F4A_7C15)
}

/// Derives the seed of random case `index` of the named property. The
/// property name is folded in so distinct properties in one file explore
/// distinct value streams.
pub fn case_seed(property: &str, index: u32) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in property.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = h.wrapping_add(u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Loads the committed regression seeds for a test source file:
/// `<manifest_dir>/proptest-regressions/<file-stem>.txt`, one `cc <seed>`
/// line per case (hex with `0x` or decimal), `#` starting a comment. A
/// missing file means no regressions. Unparseable `cc` lines panic rather
/// than silently dropping a committed reproduction.
pub fn regression_seeds(manifest_dir: &str, source_file: &str) -> Vec<u64> {
    let stem = Path::new(source_file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown");
    let path = Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"));
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some(rest) = line.strip_prefix("cc ") else {
            panic!("{}: unrecognized line {line:?}", path.display());
        };
        let rest = rest.trim();
        let parsed = match rest.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => rest.parse(),
        };
        match parsed {
            Ok(seed) => seeds.push(seed),
            Err(e) => panic!("{}: bad seed {rest:?}: {e}", path.display()),
        }
    }
    seeds
}

/// Runs one property case from `seed`. On failure, prints the `cc` line
/// that persists the case to `proptest-regressions/<file-stem>.txt`, then
/// re-raises the panic so the test still fails loudly.
pub fn run_case(source_file: &str, label: &str, seed: u64, case: impl FnOnce(&mut TestRng)) {
    let mut rng = TestRng::seed_from_u64(seed);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
    if let Err(payload) = result {
        let stem = Path::new(source_file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unknown");
        eprintln!(
            "proptest: {label} case failed; to replay it first on every run, \
             add this line to proptest-regressions/{stem}.txt:"
        );
        eprintln!("cc {seed:#018x}");
        std::panic::resume_unwind(payload);
    }
}

/// Configuration of a property test run.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy for uniformly random booleans (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Namespace mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// A uniformly random boolean.
        pub const ANY: crate::AnyBool = crate::AnyBool;
    }
}

/// Asserts a condition inside a property, panicking with the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy) { .. }` becomes a
/// `#[test]` replaying the committed regression seeds of its source file
/// first, then running `config.cases` random cases, each from its own
/// derived seed (printed as a persistable `cc` line on failure).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let property = concat!(module_path!(), "::", stringify!($name));
                let regressions = $crate::regression_seeds(env!("CARGO_MANIFEST_DIR"), file!());
                let cases = regressions
                    .into_iter()
                    .map(|seed| ("regression", seed))
                    .chain((0..config.cases).map(|i| ("random", $crate::case_seed(property, i))));
                for (label, seed) in cases {
                    $crate::run_case(file!(), label, seed, |rng| {
                        $(let $arg = $crate::Strategy::new_value(&($strat), rng);)+
                        $body
                    });
                }
            }
        )*
    };
    ( $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($arg in $strat),+) $body )*
        }
    };
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, AnyBool, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn case_seeds_differ_per_property_and_index() {
        let a = crate::case_seed("suite::prop_a", 0);
        assert_eq!(a, crate::case_seed("suite::prop_a", 0));
        assert_ne!(a, crate::case_seed("suite::prop_a", 1));
        assert_ne!(a, crate::case_seed("suite::prop_b", 0));
    }

    #[test]
    fn regression_files_parse_cc_lines_and_comments() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-{}", std::process::id()));
        let reg = dir.join("proptest-regressions");
        std::fs::create_dir_all(&reg).unwrap();
        std::fs::write(
            reg.join("some_suite.txt"),
            "# comment only\n\ncc 0x00000000deadbeef\ncc 42 # trailing note\n",
        )
        .unwrap();
        let seeds = crate::regression_seeds(dir.to_str().unwrap(), "tests/some_suite.rs");
        assert_eq!(seeds, vec![0xdead_beef, 42]);
        // A missing file is simply "no regressions".
        assert!(crate::regression_seeds(dir.to_str().unwrap(), "tests/other.rs").is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failing_cases_report_their_seed_and_repanic() {
        let caught = std::panic::catch_unwind(|| {
            crate::run_case("tests/x.rs", "random", 7, |_rng| panic!("boom"));
        });
        assert!(caught.is_err(), "run_case must re-raise the panic");
    }

    #[test]
    fn replayed_seeds_reproduce_the_same_values() {
        let draw = |seed: u64| {
            let mut out = 0u64;
            crate::run_case("tests/x.rs", "regression", seed, |rng| {
                out = crate::Strategy::new_value(&(0..1_000_000u64), rng);
            });
            out
        };
        assert_eq!(draw(99), draw(99));
        assert_ne!(draw(99), draw(100));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0..5usize, y in 2..6i64) {
            prop_assert!(x < 5);
            prop_assert!((2..6).contains(&y));
        }

        #[test]
        fn mapped_tuples_generate(pair in (0..3usize, prop::bool::ANY).prop_map(|(a, b)| (a * 2, b))) {
            let (a, _b) = pair;
            prop_assert_eq!(a % 2, 0);
        }
    }
}
