//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no crates.io access, so this shim provides the
//! [`Strategy`] trait (ranges, `prop::bool::ANY`, tuples, `prop_map`), the
//! [`ProptestConfig`] case count and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros. Values are generated from a fixed-seed
//! deterministic RNG; there is no shrinking — a failing case panics with the
//! generated inputs left to the assertion message.

#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving value generation.
pub type TestRng = StdRng;

/// Creates the deterministic RNG used by the [`proptest!`] macro.
pub fn new_rng() -> TestRng {
    TestRng::seed_from_u64(0x9E37_79B9_7F4A_7C15)
}

/// Configuration of a property test run.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy for uniformly random booleans (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Namespace mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// A uniformly random boolean.
        pub const ANY: crate::AnyBool = crate::AnyBool;
    }
}

/// Asserts a condition inside a property, panicking with the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy) { .. }` becomes a
/// `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::new_rng();
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ( $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($arg in $strat),+) $body )*
        }
    };
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, proptest, AnyBool, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0..5usize, y in 2..6i64) {
            prop_assert!(x < 5);
            prop_assert!((2..6).contains(&y));
        }

        #[test]
        fn mapped_tuples_generate(pair in (0..3usize, prop::bool::ANY).prop_map(|(a, b)| (a * 2, b))) {
            let (a, _b) = pair;
            prop_assert_eq!(a % 2, 0);
        }
    }
}
