//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no crates.io access, so this shim implements the
//! `criterion_group!` / `criterion_main!` / `benchmark_group` /
//! `bench_function` / `Bencher::iter` surface on top of `std::time::Instant`.
//! Each benchmark is warmed up, calibrated to a target sample duration, then
//! measured for `sample_size` samples; the mean, minimum and throughput-ready
//! per-iteration times are printed in a criterion-like format.
//!
//! When the `CRITERION_JSON` environment variable names a file, one JSON
//! object per benchmark (`{"group", "name", "mean_ns", "min_ns", "samples"}`)
//! is appended to it — the `BENCH_PR1.json` snapshot harness consumes this.

#![warn(missing_docs)]

use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported with criterion's name.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The benchmark driver handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark; `f` receives a [`Bencher`] whose
    /// [`iter`](Bencher::iter) closure is the measured code.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        if let Some(m) = bencher.result {
            report(&self.name, &name, &m);
        }
        self
    }

    /// Ends the group (provided for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Measurement result of one benchmark.
#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
}

/// Runs and times the benchmarked closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measures the closure: one warm-up call, calibration to roughly 25 ms
    /// per sample, then `sample_size` timed samples.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warm-up + calibration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(25);
        let iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        let min_ns = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        self.result = Some(Measurement {
            mean_ns,
            min_ns,
            samples: samples.len(),
        });
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(group: &str, name: &str, m: &Measurement) {
    println!(
        "{group}/{name}  time: [min {}  mean {}]  ({} samples)",
        human(m.min_ns),
        human(m.mean_ns),
        m.samples
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"group\":\"{group}\",\"name\":\"{name}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{}}}\n",
                m.mean_ns, m.min_ns, m.samples
            );
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn human_formatting() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("µs"));
        assert!(human(12_000_000.0).ends_with("ms"));
        assert!(human(12_000_000_000.0).ends_with('s'));
    }
}
