//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no crates.io access, so this shim provides the
//! exact API surface consumed by the workspace — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`seq::SliceRandom`] — on top of a small, deterministic xoshiro256++
//! generator. Streams differ from upstream `rand`, which is fine: everything
//! in the workspace that consumes randomness is seeded and only requires
//! determinism, not a specific stream.

#![warn(missing_docs)]

use std::ops::Range;

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-value methods, mirroring `rand::Rng`.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(
            range.start < range.end,
            "gen_range called with an empty range"
        );
        T::sample(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform sample in `[range.start, range.end)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Draws a uniform `u64` below `bound` without modulo bias (rejection on the
/// widened-multiply high word, Lemire's method).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= (bound.wrapping_neg() % bound) {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                let span = (range.end as i128 - range.start as i128) as u64;
                let offset = uniform_below(rng, span);
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Random-order helpers on slices, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::Rng;

    /// Choosing and shuffling slice elements.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seeding, the reference initialization for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, original, "32 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle must be a permutation");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
