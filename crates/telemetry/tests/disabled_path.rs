//! The disabled-path contract, enforced with a counting global allocator:
//!
//! 1. With no recorder installed, **any** interleaving of span guards,
//!    counter bumps and histogram samples performs **zero heap
//!    allocations** and leaves every piece of global state untouched
//!    (property test over random op sequences).
//! 2. Nested/unbalanced span guards — early returns, out-of-order drops,
//!    leaked guards, panics unwinding through live spans — never corrupt
//!    the thread-local span stack (directed tests, recorder enabled).
//!
//! Everything runs inside ONE `#[test]`: the allocation counter is
//! process-global, so a second concurrently running test would make the
//! zero-allocation window nondeterministic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::Strategy;
use telemetry::{
    counter, enabled, histogram, span, span_stack_depth, with_recorder, CollectingRecorder, Event,
    Span,
};

/// Delegates to the system allocator, counting every allocation entry
/// point (the free path is irrelevant to the contract).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn disabled_path_allocates_nothing_and_guards_never_corrupt_the_stack() {
    disabled_interleavings_allocate_nothing();
    disabled_ops_leave_global_state_untouched();
    early_returns_keep_the_stack_balanced();
    out_of_order_and_leaked_guards_recover();
    panic_unwinding_through_spans_pops_them();
}

/// Property: any interleaving of telemetry ops with the recorder disabled
/// allocates nothing, and the thread-local stack stays empty throughout.
fn disabled_interleavings_allocate_nothing() {
    assert!(!enabled(), "no recorder may be installed in this process");
    const CASES: u32 = 128;
    for index in 0..CASES {
        let seed = proptest::case_seed("disabled_interleavings", index);
        proptest::run_case(file!(), "random", seed, |rng| {
            let ops: usize = (1..48usize).new_value(rng);
            // Guard storage is pre-sized OUTSIDE the measurement window:
            // the Vec belongs to the test harness, not to telemetry.
            let mut live: Vec<Span> = Vec::with_capacity(ops);
            let before = allocations();
            for _ in 0..ops {
                match (0..5u8).new_value(rng) {
                    0 => counter("disabled.counter", (0..1000u64).new_value(rng)),
                    1 => histogram("disabled.hist", (0..1_000_000u64).new_value(rng)),
                    2 => live.push(span("disabled_span")),
                    3 => {
                        // Newest-first drop (balanced nesting).
                        live.pop();
                    }
                    _ => {
                        // Oldest-first drop (deliberately unbalanced).
                        if !live.is_empty() {
                            drop(live.remove(0));
                        }
                    }
                }
                assert_eq!(
                    span_stack_depth(),
                    0,
                    "disabled spans must never touch the thread-local stack"
                );
            }
            live.clear();
            let after = allocations();
            assert_eq!(
                after - before,
                0,
                "disabled telemetry ops allocated (seed {seed:#018x})"
            );
            assert!(!enabled(), "ops must not flip the global flag");
        });
    }
}

/// After a storm of disabled ops, a freshly installed recorder sees ONLY
/// what happens inside its own scope: nothing was buffered anywhere.
fn disabled_ops_leave_global_state_untouched() {
    counter("disabled.counter", 99);
    histogram("disabled.hist", 7);
    drop(span("disabled_span"));

    let sink = Arc::new(CollectingRecorder::default());
    with_recorder(sink.clone(), || counter("probe", 1));
    assert_eq!(
        sink.events(),
        vec![Event::Counter {
            name: "probe",
            delta: 1
        }],
        "disabled-era ops must not leak into a later recorder"
    );
    assert!(!enabled());
}

/// An early return drops the guard mid-function; the next span on the
/// thread must see a clean stack.
fn early_returns_keep_the_stack_balanced() {
    fn bails_out(n: u64) -> u64 {
        let _guard = span("early");
        if n < 10 {
            return n; // early return: _guard drops here
        }
        n * 2
    }
    let sink = Arc::new(CollectingRecorder::default());
    with_recorder(sink.clone(), || {
        assert_eq!(bails_out(3), 3);
        assert_eq!(span_stack_depth(), 0, "early return must pop the span");
        let _after = span("after");
        assert_eq!(span_stack_depth(), 1);
    });
    assert_eq!(sink.span_count("early"), 1);
    assert_eq!(
        sink.span_count("after"),
        1,
        "the follow-up span must be a root, not nested under a stale frame"
    );
    assert_eq!(span_stack_depth(), 0);
}

/// Dropping guards in the wrong order, or never dropping one at all, must
/// converge back to an empty stack once the outermost guard goes away.
fn out_of_order_and_leaked_guards_recover() {
    let sink = Arc::new(CollectingRecorder::default());
    with_recorder(sink.clone(), || {
        // Out-of-order: drop the OUTER guard while the inner is live.
        let outer = span("outer");
        let inner = span("inner");
        drop(outer); // truncates to outer's parent — inner's frame goes too
        assert_eq!(span_stack_depth(), 0, "outer drop cleans nested frames");
        drop(inner); // deeper than the stack now: must be a no-op
        assert_eq!(span_stack_depth(), 0);

        // Leaked guard: its destructor never runs, the enclosing drop
        // still truncates the abandoned frame away.
        let enclosing = span("enclosing");
        std::mem::forget(span("leaked"));
        assert_eq!(span_stack_depth(), 2);
        drop(enclosing);
        assert_eq!(span_stack_depth(), 0, "leaked frames die with the parent");

        // Paths recorded after the chaos are still rooted correctly.
        let _clean = span("clean");
        assert_eq!(span_stack_depth(), 1);
    });
    assert_eq!(sink.span_count("outer"), 1);
    assert_eq!(sink.span_count("outer.inner"), 1);
    assert_eq!(
        sink.span_count("clean"),
        1,
        "post-recovery spans must not inherit stale prefixes: {:?}",
        sink.span_paths()
    );
}

/// A panic unwinding through live spans runs their destructors; the stack
/// must be empty afterwards and the spans still report their exit.
fn panic_unwinding_through_spans_pops_them() {
    let sink = Arc::new(CollectingRecorder::default());
    with_recorder(sink.clone(), || {
        let result = std::panic::catch_unwind(|| {
            let _outer = span("unwind_outer");
            let _inner = span("unwind_inner");
            panic!("deliberate");
        });
        assert!(result.is_err());
        assert_eq!(span_stack_depth(), 0, "unwinding must pop every frame");
        let _next = span("next");
        assert_eq!(span_stack_depth(), 1);
    });
    assert_eq!(sink.span_count("unwind_outer"), 1);
    assert_eq!(sink.span_count("unwind_outer.unwind_inner"), 1);
    assert_eq!(sink.span_count("next"), 1, "paths: {:?}", sink.span_paths());
    assert_eq!(span_stack_depth(), 0);
}
