//! `daisyprof` — profile viewer for daisy-telemetry JSON-lines profiles.
//!
//! ```text
//! daisyprof <profile.json>...       render each profile's span tree,
//!                                   histograms and counters
//! daisyprof diff <a.json> <b.json>  attribute a regression to a phase:
//!                                   per-span count/total ratios and
//!                                   counter deltas between two runs
//! daisyprof --chrome <profile.json> export the profile as chrome://tracing
//!                                   JSON on stdout (synthesized timeline:
//!                                   aggregate span totals packed
//!                                   depth-first; load in chrome://tracing
//!                                   or Perfetto)
//! ```
//!
//! Profiles come from `reproduce --profile <out.json>` and
//! `daisyfuzz run --profile <out.json>`. Exit status: 0 on success, 1 on
//! unreadable/invalid profiles (one-line `daisyprof: <path>: <reason>`
//! diagnostic), 2 on usage errors.

use std::process::ExitCode;

use telemetry::Profile;

const USAGE: &str = "usage: daisyprof <profile.json>... | daisyprof diff <a.json> <b.json> | daisyprof --chrome <profile.json>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("daisyprof: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    match args.first().map(String::as_str) {
        None => Err(USAGE.to_string()),
        Some("--chrome") => {
            let [path] = &args[1..] else {
                return Err(format!("--chrome takes exactly one profile; {USAGE}"));
            };
            match load(path) {
                Ok(profile) => {
                    print!("{}", profile.to_chrome_trace());
                    Ok(ExitCode::SUCCESS)
                }
                Err(e) => {
                    eprintln!("daisyprof: {e}");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        Some("diff") => {
            let [a, b] = &args[1..] else {
                return Err(format!("diff takes exactly two profiles; {USAGE}"));
            };
            let (first, second) = match (load(a), load(b)) {
                (Ok(first), Ok(second)) => (first, second),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("daisyprof: {e}");
                    return Ok(ExitCode::FAILURE);
                }
            };
            print!("{}", first.render_diff(&second));
            Ok(ExitCode::SUCCESS)
        }
        Some(_) => {
            for (index, path) in args.iter().enumerate() {
                if path.starts_with("--") {
                    return Err(format!("unknown option {path}; {USAGE}"));
                }
                match load(path) {
                    Ok(profile) => {
                        if index > 0 {
                            println!();
                        }
                        println!("== {path}");
                        print!("{}", profile.render_tree());
                    }
                    Err(e) => {
                        eprintln!("daisyprof: {e}");
                        return Ok(ExitCode::FAILURE);
                    }
                }
            }
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn load(path: &str) -> Result<Profile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Profile::from_json_lines(&text).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn chrome_takes_exactly_one_readable_profile() {
        // Wrong arity is a usage error (exit 2 via Err).
        let err = run(&strings(&["--chrome"])).unwrap_err();
        assert!(err.contains("--chrome takes exactly one profile"), "{err}");
        let err = run(&strings(&["--chrome", "a.json", "b.json"])).unwrap_err();
        assert!(err.contains("--chrome takes exactly one profile"), "{err}");

        // An unreadable profile is a load failure (exit 1), not a usage
        // error — the same contract as the render and diff modes.
        let code = run(&strings(&["--chrome", "/nonexistent/profile.json"])).unwrap();
        assert_eq!(code, ExitCode::FAILURE);

        // A valid profile exports cleanly.
        let dir = std::env::temp_dir().join(format!("daisyprof-chrome-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("profile.json");
        let profile = Profile {
            label: "unit".to_string(),
            ..Profile::default()
        };
        std::fs::write(&path, profile.to_json_lines()).expect("write profile");
        let code = run(&strings(&["--chrome", path.to_str().unwrap()])).unwrap();
        assert_eq!(code, ExitCode::SUCCESS);
        std::fs::remove_dir_all(&dir).ok();
    }
}
