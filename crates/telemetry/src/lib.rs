//! Structured observability for the whole scheduling stack.
//!
//! Every hot layer of the reproduction (the `daisy` scheduler, the
//! `machine` execution/simulation engines, the journaled `tunestore`, the
//! `fuzz` farm) reports into **one global [`Recorder`]** through three
//! primitives:
//!
//! - **Counters** ([`counter`]): monotonically increasing `u64` totals
//!   keyed by a `&'static str` name (`"machine.cost.memo_hits"`).
//! - **Histograms** ([`histogram`]): log2-bucketed value distributions
//!   ([`Histogram`]) for latency and size samples; `p99` and friends are
//!   answered from the buckets, no samples are retained.
//! - **Spans** ([`span`], [`timed`]): RAII guards that push a name onto a
//!   thread-local stack. A span's *path* is the dot-joined stack at entry
//!   (`"schedule.normalize"`), so nesting is captured structurally and a
//!   profile renders as a tree. Durations land in a per-path [`Histogram`].
//!
//! # Recorder model
//!
//! Recording is **off by default** and costs a single relaxed atomic load
//! per call site when disabled — no allocation, no locks, no thread-local
//! access. [`install`] flips the global flag and routes events to an
//! [`Arc<dyn Recorder>`]; [`uninstall`] flips it back. Two sinks ship with
//! the crate:
//!
//! - [`AggregatingRecorder`] folds events into a [`profile::Profile`]
//!   (per-path duration histograms + counters) for `reproduce --profile`,
//!   `daisyfuzz run --profile` and the `daisyprof` viewer;
//! - [`CollectingRecorder`] keeps the raw event log so tests can assert
//!   instrumentation *contracts* (e.g. "warm start emits zero
//!   `search.generation` spans").
//!
//! Tests that install a recorder must serialize on the global sink —
//! [`with_recorder`] does exactly that (one global mutex, install, run,
//! uninstall, even across panics).
//!
//! # Determinism
//!
//! Span *structure* and counter *values* are deterministic for a fixed
//! workload: they count decisions (memo hits, fallbacks, journal appends),
//! never wall-clock. Durations obviously vary run to run; everything else
//! in a profile is stable, which is what makes `daisyprof diff` meaningful.
//!
//! Guards are unwinding-safe: dropping a span guard in any order (early
//! return, `panic!` unwinding, leaked inner guards) truncates the
//! thread-local stack back to the guard's own depth, so a corrupted frame
//! can never leak into later span paths.

pub mod json;
pub mod profile;
mod recorder;

pub use profile::{Histogram, Profile};
pub use recorder::{AggregatingRecorder, CollectingRecorder, Event, Recorder};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Fast-path switch: one relaxed load decides whether any telemetry call
/// does work. `install` stores `true`, `uninstall` stores `false`.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed sink. Checked only after `ENABLED` passes, so the lock is
/// never touched on the disabled path.
static GLOBAL: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Serializes [`with_recorder`] scopes (the global recorder is process-wide
/// state; concurrent test scopes would cross-contaminate).
static SCOPE: Mutex<()> = Mutex::new(());

thread_local! {
    /// The span stack: names of every live span on this thread, outermost
    /// first. Only touched while recording is enabled.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Is a recorder installed? One relaxed atomic load — callers that need to
/// *compute* something before reporting it (e.g. summing cache stats)
/// should guard the computation with this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `recorder` as the global sink and enables recording.
pub fn install(recorder: Arc<dyn Recorder>) {
    let mut guard = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    *guard = Some(recorder);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables recording and returns the previously installed sink (so a
/// driver can consume its aggregate after a run).
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    ENABLED.store(false, Ordering::SeqCst);
    GLOBAL.write().unwrap_or_else(|e| e.into_inner()).take()
}

/// Runs `f` with `recorder` installed, serialized against every other
/// `with_recorder` scope in the process, and uninstalls on the way out —
/// including when `f` panics. The standard way for tests to assert
/// instrumentation contracts.
pub fn with_recorder<R>(recorder: Arc<dyn Recorder>, f: impl FnOnce() -> R) -> R {
    let _scope = SCOPE.lock().unwrap_or_else(|e| e.into_inner());
    struct Uninstall;
    impl Drop for Uninstall {
        fn drop(&mut self) {
            uninstall();
        }
    }
    install(recorder);
    let _uninstall = Uninstall;
    f()
}

fn with_global(f: impl FnOnce(&dyn Recorder)) {
    let guard = GLOBAL.read().unwrap_or_else(|e| e.into_inner());
    if let Some(recorder) = guard.as_deref() {
        f(recorder);
    }
}

/// Adds `delta` to the counter `name`. Near-free when disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    counter_slow(name, delta);
}

#[cold]
fn counter_slow(name: &'static str, delta: u64) {
    with_global(|r| r.counter_add(name, delta));
}

/// Records `value` into the histogram `name`. Near-free when disabled.
#[inline]
pub fn histogram(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    histogram_slow(name, value);
}

#[cold]
fn histogram_slow(name: &'static str, value: u64) {
    with_global(|r| r.histogram_record(name, value));
}

/// A live span. Created by [`span`]; records its duration under its path
/// when dropped. When recording is disabled at creation the guard is inert
/// (no allocation, nothing to undo on drop).
#[must_use = "a span measures the scope it is alive for; bind it to a variable"]
pub struct Span {
    state: Option<SpanState>,
}

struct SpanState {
    path: String,
    /// Stack length *including* this span's own frame at entry; drop
    /// truncates back to `depth - 1`, which also cleans up any inner
    /// guards that leaked without running their destructor.
    depth: usize,
    start: Instant,
}

/// Enters a span named `name`, nested under whatever spans are live on
/// this thread. The returned guard exits the span on drop.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { state: None };
    }
    let Ok((path, depth)) = STACK.try_with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        (stack.join("."), stack.len())
    }) else {
        return Span { state: None };
    };
    with_global(|r| r.span_enter(&path));
    Span {
        state: Some(SpanState {
            path,
            depth,
            start: Instant::now(),
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let nanos = state.start.elapsed().as_nanos() as u64;
        // Truncate rather than pop: if an inner guard was leaked (or
        // guards drop out of order), the stack still lands exactly at
        // this span's parent frame. Out-of-order drops of *this* guard
        // after a deeper truncation make this a no-op.
        let _ = STACK.try_with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.len() >= state.depth {
                stack.truncate(state.depth - 1);
            }
        });
        with_global(|r| r.span_exit(&state.path, nanos));
    }
}

/// Runs `f` under a span named `name` and returns `(result, elapsed_ns)`.
/// The elapsed time is measured whether or not recording is enabled, so
/// callers (e.g. `ScheduleOutcome::phase_timings`) always get real numbers.
pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, u64) {
    let start = Instant::now();
    let guard = span(name);
    let result = f();
    drop(guard);
    (result, start.elapsed().as_nanos() as u64)
}

/// Current thread-local span depth — test hook for the unbalanced-guard
/// suite (a healthy quiescent thread reports 0).
pub fn span_stack_depth() -> usize {
    STACK.try_with(|stack| stack.borrow().len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global recorder is process-wide; these tests flip it, so they
    /// must not overlap (the harness runs `#[test]`s on multiple threads).
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_calls_are_inert() {
        let _serial = serial();
        assert!(!enabled());
        counter("test.counter", 5);
        histogram("test.hist", 123);
        let guard = span("test");
        assert_eq!(span_stack_depth(), 0, "disabled span must not touch TLS");
        drop(guard);
        assert_eq!(span_stack_depth(), 0);
    }

    #[test]
    fn with_recorder_collects_counters_and_nested_span_paths() {
        let _serial = serial();
        let sink = Arc::new(CollectingRecorder::default());
        with_recorder(sink.clone(), || {
            counter("outer.total", 2);
            counter("outer.total", 3);
            let _a = span("alpha");
            {
                let _b = span("beta");
                histogram("sizes", 17);
            }
            let _c = span("gamma");
        });
        assert!(!enabled(), "with_recorder must uninstall on exit");
        assert_eq!(sink.counter_total("outer.total"), 5);
        assert_eq!(
            sink.span_paths(),
            vec!["alpha", "alpha.beta", "alpha.gamma"],
            "paths reflect nesting at entry, dot-joined"
        );
        assert_eq!(sink.span_count("alpha.beta"), 1);
        assert_eq!(span_stack_depth(), 0);
    }

    #[test]
    fn with_recorder_uninstalls_after_a_panic() {
        let _serial = serial();
        let sink = Arc::new(CollectingRecorder::default());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_recorder(sink.clone(), || {
                let _s = span("doomed");
                panic!("boom");
            })
        }));
        assert!(result.is_err());
        assert!(!enabled(), "panic inside the scope must still uninstall");
        assert_eq!(span_stack_depth(), 0, "unwinding must pop the span");
        assert_eq!(sink.span_count("doomed"), 1, "the span still completes");
    }

    #[test]
    fn timed_returns_elapsed_even_when_disabled() {
        let _serial = serial();
        assert!(!enabled());
        let (value, nanos) = timed("probe", || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(value, 42);
        assert!(nanos >= 1_000_000, "sleep of 2ms measured as {nanos}ns");
    }
}
