//! Profile documents: log2-bucketed [`Histogram`]s, the [`Profile`]
//! snapshot an [`AggregatingRecorder`](crate::AggregatingRecorder)
//! produces, its JSON-lines serialization (what `reproduce --profile` and
//! `daisyfuzz run --profile` write and `daisyprof` reads), the
//! human-readable span tree, and profile diffing.
//!
//! # File format
//!
//! One JSON object per line. The first line is the header, every
//! following line one event:
//!
//! ```text
//! {"profile":"daisy-telemetry","version":1,"label":"reproduce --smoke"}
//! {"type":"span","path":"schedule.normalize","count":34,"total_ns":81243,"max":4096,"buckets":[[11,30],[12,4]]}
//! {"type":"histogram","name":"daisy.parallel.worker_items","count":8,"total":34,"max":6,"buckets":[[2,3],[3,5]]}
//! {"type":"counter","name":"machine.cost.memo_hits","value":1187}
//! ```
//!
//! Buckets are sparse `[log2_index, count]` pairs: index 0 holds the
//! value 0, index `b >= 1` holds values in `[2^(b-1), 2^b - 1]`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, Json};

/// Number of log2 buckets: index 0 for zero, 1..=64 for each power-of-two
/// magnitude of a `u64`.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples. Fixed size, no retained
/// samples; quantiles are answered from the buckets (upper bound of the
/// bucket the quantile falls in, clamped to the observed max).
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[0]` counts zeros; `buckets[b]` counts values in
    /// `[2^(b-1), 2^b - 1]`.
    pub buckets: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (exact, not bucketed).
    pub total: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            total: 0,
            max: 0,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("total", &self.total)
            .field("max", &self.max)
            .finish()
    }
}

/// Bucket index of `value`: 0 for 0, else `64 - leading_zeros` (so 1 → 1,
/// 2..=3 → 2, 4..=7 → 3, …).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `index` (saturating at `u64::MAX`).
fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
    }

    /// Exact mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Bucketed quantile: the inclusive upper bound of the bucket the
    /// `q`-quantile sample falls in, clamped to the observed max. `q` in
    /// `[0, 1]`; returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// The 99th-percentile bucket bound — the headline latency number in
    /// `daisyprof` tables.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Sparse `[bucket_index, count]` pairs for serialization.
    fn sparse_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect()
    }
}

/// A profile snapshot: everything one recorded run produced. Span paths
/// are dot-joined (`"schedule.normalize"`), so the map keys encode the
/// span tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Free-form run label (typically the command line that produced it).
    pub label: String,
    /// Per-span-path duration histograms, in nanoseconds.
    pub spans: BTreeMap<String, Histogram>,
    /// Explicit value histograms (sizes, batch widths, …).
    pub histograms: BTreeMap<String, Histogram>,
    /// Counter totals.
    pub counters: BTreeMap<String, u64>,
}

fn write_histogram_fields(line: &mut String, h: &Histogram, total_key: &str) {
    let _ = write!(
        line,
        "\"count\":{},\"{}\":{},\"max\":{},\"buckets\":[",
        h.count, total_key, h.total, h.max
    );
    for (i, (index, n)) in h.sparse_buckets().iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "[{index},{n}]");
    }
    line.push(']');
}

impl Profile {
    /// Serializes as JSON lines (header line, then one event per line).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"profile\":\"daisy-telemetry\",\"version\":1,\"label\":{}}}",
            json::json_string(&self.label)
        );
        for (path, hist) in &self.spans {
            let mut line = format!("{{\"type\":\"span\",\"path\":{},", json::json_string(path));
            write_histogram_fields(&mut line, hist, "total_ns");
            line.push('}');
            let _ = writeln!(out, "{line}");
        }
        for (name, hist) in &self.histograms {
            let mut line = format!(
                "{{\"type\":\"histogram\",\"name\":{},",
                json::json_string(name)
            );
            write_histogram_fields(&mut line, hist, "total");
            line.push('}');
            let _ = writeln!(out, "{line}");
        }
        for (name, value) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}",
                json::json_string(name),
                value
            );
        }
        out
    }

    /// Parses a JSON-lines profile back. Strict: a bad header, unknown
    /// event type or malformed line is an error (this is the `daisyprof`
    /// format validator).
    pub fn from_json_lines(text: &str) -> Result<Profile, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or("empty profile")?;
        let header = json::parse(header).map_err(|e| format!("line 1: {e}"))?;
        match header.get("profile").and_then(Json::as_str) {
            Some("daisy-telemetry") => {}
            _ => return Err("line 1: not a daisy-telemetry profile header".to_string()),
        }
        match header.get("version").and_then(Json::as_u64) {
            Some(1) => {}
            other => return Err(format!("line 1: unsupported profile version {other:?}")),
        }
        let mut profile = Profile {
            label: header
                .get("label")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            ..Profile::default()
        };
        for (index, line) in lines {
            let context = |m: &str| format!("line {}: {m}", index + 1);
            let event = json::parse(line).map_err(|e| context(&e))?;
            match event.get("type").and_then(Json::as_str) {
                Some("span") => {
                    let path = event
                        .get("path")
                        .and_then(Json::as_str)
                        .ok_or_else(|| context("span without path"))?;
                    let hist = parse_histogram(&event, "total_ns").map_err(|e| context(&e))?;
                    profile.spans.insert(path.to_string(), hist);
                }
                Some("histogram") => {
                    let name = event
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| context("histogram without name"))?;
                    let hist = parse_histogram(&event, "total").map_err(|e| context(&e))?;
                    profile.histograms.insert(name.to_string(), hist);
                }
                Some("counter") => {
                    let name = event
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| context("counter without name"))?;
                    let value = event
                        .get("value")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| context("counter without value"))?;
                    profile.counters.insert(name.to_string(), value);
                }
                other => return Err(context(&format!("unknown event type {other:?}"))),
            }
        }
        Ok(profile)
    }

    /// Human-readable report: the span tree (count/total/mean/p99 per
    /// path), then histograms, then counters.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "profile: {}", self.label);
        if self.spans.is_empty() {
            let _ = writeln!(out, "  (no spans recorded)");
        }
        let width = self
            .spans
            .keys()
            .map(|p| 2 * (p.matches('.').count() + 1) + display_segment(&self.spans, p).len())
            .max()
            .unwrap_or(0)
            .max(16);
        for (path, hist) in &self.spans {
            let depth = path.matches('.').count() + 1;
            let label = format!(
                "{}{}",
                "  ".repeat(depth),
                display_segment(&self.spans, path)
            );
            let _ = writeln!(
                out,
                "{label:<width$}  count {:>8}  total {:>10}  mean {:>10}  p99 {:>10}",
                hist.count,
                fmt_ns(hist.total),
                fmt_ns(hist.mean() as u64),
                fmt_ns(hist.p99()),
            );
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (name, hist) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: count {} total {} mean {:.1} max {} p99 {}",
                    hist.count,
                    hist.total,
                    hist.mean(),
                    hist.max,
                    hist.p99(),
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name}: {value}");
            }
        }
        out
    }

    /// Exports the profile as a chrome://tracing (Trace Event Format) JSON
    /// document, loadable in `chrome://tracing` or Perfetto.
    ///
    /// The profile is aggregated — it has no per-event timestamps — so the
    /// export synthesizes a timeline: root span paths are laid end to end
    /// and each span's children are packed depth-first from their parent's
    /// start, every slice as one complete (`"X"`) event whose duration is
    /// the path's *total* time. Slice widths are therefore exact aggregate
    /// attributions, not individual invocations; `count`, `mean_ns` and
    /// `p99_ns` ride along in each slice's `args`. Counters become `"C"`
    /// events at time zero, explicit histograms counter events carrying
    /// their totals.
    pub fn to_chrome_trace(&self) -> String {
        // A path's parent is its longest proper dot-prefix that was itself
        // recorded (same rule the tree renderer uses); spans whose prefixes
        // were never recorded start their own root slices.
        let mut children: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut roots: Vec<&str> = Vec::new();
        for path in self.spans.keys() {
            let mut prefix = path.as_str();
            let mut parent = None;
            while let Some((shorter, _)) = prefix.rsplit_once('.') {
                if self.spans.contains_key(shorter) {
                    parent = Some(shorter);
                    break;
                }
                prefix = shorter;
            }
            match parent {
                Some(parent) => children.entry(parent).or_default().push(path),
                None => roots.push(path),
            }
        }

        let mut events = Vec::new();
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\
             \"args\":{{\"name\":{}}}}}",
            json::json_string(&self.label)
        ));
        let mut stack: Vec<(&str, u64)> = Vec::new();
        let mut cursor = 0u64;
        for root in roots {
            stack.push((root, cursor));
            cursor += self.spans[root].total;
        }
        // DFS in reverse so siblings pop in alphabetical order.
        stack.reverse();
        while let Some((path, start)) = stack.pop() {
            let hist = &self.spans[path];
            events.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"cat\":\"span\",\"name\":{},\
                 \"ts\":{:.3},\"dur\":{:.3},\
                 \"args\":{{\"count\":{},\"mean_ns\":{},\"p99_ns\":{}}}}}",
                json::json_string(path),
                start as f64 / 1_000.0,
                hist.total as f64 / 1_000.0,
                hist.count,
                hist.mean() as u64,
                hist.p99(),
            ));
            if let Some(kids) = children.get(path) {
                let mut child_start = start;
                let mut packed: Vec<(&str, u64)> = Vec::new();
                for &child in kids {
                    packed.push((child, child_start));
                    child_start += self.spans[child].total;
                }
                // Reverse again so the first child is processed first.
                stack.extend(packed.into_iter().rev());
            }
        }
        for (name, value) in &self.counters {
            events.push(format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"name\":{},\"ts\":0,\
                 \"args\":{{\"value\":{value}}}}}",
                json::json_string(name)
            ));
        }
        for (name, hist) in &self.histograms {
            events.push(format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"name\":{},\"ts\":0,\
                 \"args\":{{\"total\":{},\"count\":{}}}}}",
                json::json_string(name),
                hist.total,
                hist.count,
            ));
        }
        format!(
            "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
            events.join(",\n")
        )
    }

    /// Renders the difference `self -> other` (counts, totals, counter
    /// deltas) over the union of keys — how `daisyprof diff a b` makes a
    /// regression attributable to a phase.
    pub fn render_diff(&self, other: &Profile) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "diff: {} -> {}", self.label, other.label);
        let _ = writeln!(out, "spans:");
        let empty = Histogram::default();
        for path in union_keys(self.spans.keys(), other.spans.keys()) {
            let a = self.spans.get(&path).unwrap_or(&empty);
            let b = other.spans.get(&path).unwrap_or(&empty);
            let ratio = if a.total > 0 {
                format!("{:>7.2}x", b.total as f64 / a.total as f64)
            } else if b.total > 0 {
                "    new".to_string()
            } else {
                "      -".to_string()
            };
            let _ = writeln!(
                out,
                "  {path:<40}  count {:>8} -> {:<8}  total {:>10} -> {:<10}  {ratio}",
                a.count,
                b.count,
                fmt_ns(a.total),
                fmt_ns(b.total),
            );
        }
        let _ = writeln!(out, "counters:");
        for name in union_keys(self.counters.keys(), other.counters.keys()) {
            let a = self.counters.get(&name).copied().unwrap_or(0);
            let b = other.counters.get(&name).copied().unwrap_or(0);
            let delta = b as i128 - a as i128;
            let _ = writeln!(out, "  {name:<40}  {a:>12} -> {b:<12}  ({delta:+})");
        }
        out
    }
}

/// What to print for `path` in the tree: the last segment when the parent
/// path was itself recorded (normal nesting), the full path otherwise
/// (e.g. spans from worker threads that start their own roots).
fn display_segment<'p>(spans: &BTreeMap<String, Histogram>, path: &'p str) -> &'p str {
    match path.rsplit_once('.') {
        Some((parent, segment)) if spans.contains_key(parent) => segment,
        _ => path,
    }
}

fn union_keys<'k>(
    a: impl Iterator<Item = &'k String>,
    b: impl Iterator<Item = &'k String>,
) -> Vec<String> {
    let mut keys: Vec<String> = a.chain(b).cloned().collect();
    keys.sort();
    keys.dedup();
    keys
}

fn parse_histogram(event: &Json, total_key: &str) -> Result<Histogram, String> {
    let mut hist = Histogram {
        count: event
            .get("count")
            .and_then(Json::as_u64)
            .ok_or("missing count")?,
        total: event
            .get(total_key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing {total_key}"))?,
        max: event
            .get("max")
            .and_then(Json::as_u64)
            .ok_or("missing max")?,
        ..Histogram::default()
    };
    let buckets = event
        .get("buckets")
        .and_then(Json::as_array)
        .ok_or("missing buckets")?;
    for pair in buckets {
        let pair = pair
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or("bad bucket")?;
        let index = pair[0].as_u64().ok_or("bad bucket index")? as usize;
        let n = pair[1].as_u64().ok_or("bad bucket count")?;
        if index >= BUCKETS {
            return Err(format!("bucket index {index} out of range"));
        }
        hist.buckets[index] = n;
    }
    Ok(hist)
}

/// Formats nanoseconds for humans: `17ns`, `4.2µs`, `13ms`, `2.41s`.
pub fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns_f / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns_f / 1_000_000.0)
    } else {
        format!("{:.2}s", ns_f / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_zero_special_cased() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn quantiles_come_from_bucket_upper_bounds_clamped_to_max() {
        let mut h = Histogram::default();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 10);
        assert_eq!(h.quantile(0.5), 1);
        // The p99 sample is the 1000: bucket 10 upper bound is 1023,
        // clamped to the observed max of 1000.
        assert_eq!(h.p99(), 1000);
        assert_eq!(h.quantile(0.0), 1);
        let empty = Histogram::default();
        assert_eq!(empty.p99(), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn merge_adds_counts_totals_and_buckets() {
        let mut a = Histogram::default();
        a.record(4);
        a.record(100);
        let mut b = Histogram::default();
        b.record(7);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.total, 111);
        assert_eq!(a.max, 100);
        assert_eq!(a.buckets[0], 1);
        assert_eq!(a.buckets[3], 2);
    }

    fn sample_profile() -> Profile {
        let mut profile = Profile {
            label: "unit \"test\"".to_string(),
            ..Profile::default()
        };
        let mut h = Histogram::default();
        h.record(1200);
        h.record(900);
        profile.spans.insert("schedule".to_string(), h.clone());
        profile
            .spans
            .insert("schedule.normalize".to_string(), h.clone());
        profile.histograms.insert("sizes".to_string(), h);
        profile.counters.insert("hits".to_string(), 42);
        profile.counters.insert("misses".to_string(), 0);
        profile
    }

    #[test]
    fn json_lines_round_trip_is_lossless() {
        let profile = sample_profile();
        let text = profile.to_json_lines();
        let parsed = Profile::from_json_lines(&text).expect("round trip parses");
        assert_eq!(parsed, profile);
    }

    #[test]
    fn from_json_lines_rejects_garbage_and_wrong_headers() {
        assert!(Profile::from_json_lines("").is_err());
        assert!(Profile::from_json_lines("{\"profile\":\"other\"}").is_err());
        assert!(Profile::from_json_lines(
            "{\"profile\":\"daisy-telemetry\",\"version\":9,\"label\":\"x\"}"
        )
        .is_err());
        let bad_event = "{\"profile\":\"daisy-telemetry\",\"version\":1,\"label\":\"x\"}\n\
                         {\"type\":\"mystery\"}";
        let err = Profile::from_json_lines(bad_event).unwrap_err();
        assert!(err.contains("line 2"), "error names the line: {err}");
    }

    #[test]
    fn tree_report_nests_children_and_lists_counters() {
        let report = sample_profile().render_tree();
        assert!(report.contains("profile: unit \"test\""));
        assert!(report.contains("schedule"));
        // The child renders as its segment, indented deeper.
        assert!(report.contains("    normalize"));
        assert!(report.contains("hits: 42"));
        assert!(report.contains("sizes:"));
    }

    #[test]
    fn diff_reports_ratios_new_spans_and_counter_deltas() {
        let a = sample_profile();
        let mut b = sample_profile();
        b.label = "second".to_string();
        let mut h = Histogram::default();
        h.record(5000);
        b.spans.insert("fresh".to_string(), h);
        *b.counters.get_mut("hits").unwrap() = 40;
        let diff = a.render_diff(&b);
        assert!(diff.contains("diff: unit \"test\" -> second"));
        assert!(diff.contains("fresh"));
        assert!(diff.contains("new"));
        assert!(diff.contains("(-2)"), "hits 42 -> 40: {diff}");
    }

    #[test]
    fn chrome_trace_packs_children_inside_parents_and_parses_as_json() {
        let trace = sample_profile().to_chrome_trace();
        let doc = crate::json::parse(&trace).expect("chrome trace is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");

        let slice = |name: &str| {
            events
                .iter()
                .find(|e| {
                    e.get("ph").and_then(Json::as_str) == Some("X")
                        && e.get("name").and_then(Json::as_str) == Some(name)
                })
                .unwrap_or_else(|| panic!("no X event for {name}: {trace}"))
        };
        let parent = slice("schedule");
        let child = slice("schedule.normalize");
        let ts = |e: &Json| e.get("ts").and_then(Json::as_f64).expect("ts");
        let dur = |e: &Json| e.get("dur").and_then(Json::as_f64).expect("dur");
        // The child packs from its parent's start; both durations are the
        // span totals (1200 + 900 ns = 2.1 µs).
        assert_eq!(ts(parent), 0.0);
        assert_eq!(ts(child), 0.0);
        assert_eq!(dur(parent), 2.1);
        assert_eq!(dur(child), 2.1);
        assert_eq!(
            parent
                .get("args")
                .and_then(|a| a.get("count"))
                .and_then(Json::as_u64),
            Some(2)
        );

        // Counters and histograms become "C" events.
        let counter = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("hits"))
            .expect("counter event");
        assert_eq!(counter.get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(
            counter
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_u64),
            Some(42)
        );
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("sizes")),
            "histograms export as counter events: {trace}"
        );
        // The process is labeled after the profile.
        assert!(
            events.iter().any(|e| {
                e.get("ph").and_then(Json::as_str) == Some("M")
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        == Some("unit \"test\"")
            }),
            "metadata event labels the process: {trace}"
        );
    }

    #[test]
    fn chrome_trace_lays_unrelated_roots_end_to_end() {
        let mut profile = Profile {
            label: "roots".to_string(),
            ..Profile::default()
        };
        let mut a = Histogram::default();
        a.record(2_000);
        let mut b = Histogram::default();
        b.record(3_000);
        profile.spans.insert("alpha".to_string(), a);
        profile.spans.insert("beta".to_string(), b);
        let trace = profile.to_chrome_trace();
        let doc = crate::json::parse(&trace).expect("parses");
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let ts = |name: &str| {
            events
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|e| e.get("ts"))
                .and_then(Json::as_f64)
                .unwrap()
        };
        assert_eq!(ts("alpha"), 0.0);
        assert_eq!(ts("beta"), 2.0, "beta starts after alpha's 2µs total");
    }

    #[test]
    fn fmt_ns_picks_the_right_unit() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(4_200), "4.2µs");
        assert_eq!(fmt_ns(13_000_000), "13.0ms");
        assert_eq!(fmt_ns(2_410_000_000), "2.41s");
    }
}
