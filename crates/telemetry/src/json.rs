//! Minimal hand-rolled JSON: the one string escaper shared by every JSON
//! writer in the workspace (`daisyfuzz` reports, profile exports) and a
//! small recursive-descent parser for reading profiles back in
//! `daisyprof`. The workspace has no registry access, so no serde — this
//! covers exactly the subset our own writers emit, which is standard JSON.

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal, quotes included.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value. Numbers are kept as `f64` — every quantity our
/// profiles serialize (counts, bucket indices, nanosecond totals) fits.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs (our writers emit sorted keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing garbage at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs never appear in our own
                            // writers (they escape only control chars);
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|b| b as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the run up to the next quote or escape in one
                    // go; both delimiters are ASCII, so byte scanning
                    // cannot split a UTF-8 scalar.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaper_round_trips_through_the_parser() {
        for original in [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newline\n tab\t return\r",
            "control \u{0001} char",
            "unicode: daisy ∘ schedule",
            "",
        ] {
            let encoded = json_string(original);
            let parsed = parse(&encoded).expect("escaped string parses");
            assert_eq!(parsed, Json::Str(original.to_string()), "for {original:?}");
        }
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2],
            Json::Num(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "12 34", "\"open", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
