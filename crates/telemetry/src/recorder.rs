//! Recorder sinks: the [`Recorder`] trait every sink implements, the
//! profile-building [`AggregatingRecorder`], and the raw-event
//! [`CollectingRecorder`] used by tests to assert instrumentation
//! contracts.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::profile::{Histogram, Profile};

/// A telemetry sink. Implementations must be cheap and thread-safe: every
/// instrumented call site on every thread funnels through the one
/// installed recorder.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the counter `name`.
    fn counter_add(&self, name: &'static str, delta: u64);
    /// Records `value` into the histogram `name`.
    fn histogram_record(&self, name: &'static str, value: u64);
    /// A span at `path` (dot-joined stack) was entered.
    fn span_enter(&self, path: &str);
    /// The span at `path` exited after `nanos` nanoseconds.
    fn span_exit(&self, path: &str, nanos: u64);
}

/// One raw telemetry event, as kept by [`CollectingRecorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `counter(name, delta)`.
    Counter { name: &'static str, delta: u64 },
    /// `histogram(name, value)`.
    Histogram { name: &'static str, value: u64 },
    /// A span guard was created at `path`.
    SpanEnter { path: String },
    /// A span guard at `path` was dropped after `nanos`.
    SpanExit { path: String, nanos: u64 },
}

/// Test sink: keeps the raw event log in order so suites can assert
/// instrumentation contracts (which spans fired, with what nesting, how
/// many times a counter was bumped).
#[derive(Default)]
pub struct CollectingRecorder {
    events: Mutex<Vec<Event>>,
}

impl CollectingRecorder {
    /// Every event recorded so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.lock().clone()
    }

    /// Sum of all deltas recorded for counter `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.lock()
            .iter()
            .map(|e| match e {
                Event::Counter { name: n, delta } if *n == name => *delta,
                _ => 0,
            })
            .sum()
    }

    /// How many spans *completed* at exactly `path`.
    pub fn span_count(&self, path: &str) -> usize {
        self.lock()
            .iter()
            .filter(|e| matches!(e, Event::SpanExit { path: p, .. } if p == path))
            .count()
    }

    /// Distinct completed span paths, sorted.
    pub fn span_paths(&self) -> Vec<String> {
        let mut paths: Vec<String> = self
            .lock()
            .iter()
            .filter_map(|e| match e {
                Event::SpanExit { path, .. } => Some(path.clone()),
                _ => None,
            })
            .collect();
        paths.sort();
        paths.dedup();
        paths
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Recorder for CollectingRecorder {
    fn counter_add(&self, name: &'static str, delta: u64) {
        self.lock().push(Event::Counter { name, delta });
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        self.lock().push(Event::Histogram { name, value });
    }

    fn span_enter(&self, path: &str) {
        self.lock().push(Event::SpanEnter {
            path: path.to_string(),
        });
    }

    fn span_exit(&self, path: &str, nanos: u64) {
        self.lock().push(Event::SpanExit {
            path: path.to_string(),
            nanos,
        });
    }
}

#[derive(Default)]
struct Aggregate {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, Histogram>,
}

/// Production sink: folds the event stream into per-path duration
/// histograms and counter totals — O(distinct names) memory no matter how
/// long the run — and snapshots into a [`Profile`].
#[derive(Default)]
pub struct AggregatingRecorder {
    inner: Mutex<Aggregate>,
}

impl AggregatingRecorder {
    /// Snapshot the aggregate into a labeled [`Profile`].
    pub fn profile(&self, label: &str) -> Profile {
        let inner = self.lock();
        Profile {
            label: label.to_string(),
            spans: inner.spans.clone(),
            histograms: inner.histograms.clone(),
            counters: inner.counters.clone(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Aggregate> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Recorder for AggregatingRecorder {
    fn counter_add(&self, name: &'static str, delta: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn histogram_record(&self, name: &'static str, value: u64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    fn span_enter(&self, _path: &str) {
        // Entry order is only meaningful to the raw-event sink; the
        // aggregate keys on the full path, which already encodes nesting.
    }

    fn span_exit(&self, path: &str, nanos: u64) {
        self.lock()
            .spans
            .entry(path.to_string())
            .or_default()
            .record(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregating_recorder_folds_events_into_a_profile() {
        let recorder = AggregatingRecorder::default();
        recorder.counter_add("hits", 3);
        recorder.counter_add("hits", 4);
        recorder.span_exit("a.b", 100);
        recorder.span_exit("a.b", 300);
        recorder.histogram_record("sizes", 16);
        let profile = recorder.profile("unit");
        assert_eq!(profile.label, "unit");
        assert_eq!(profile.counters["hits"], 7);
        let span = &profile.spans["a.b"];
        assert_eq!(span.count, 2);
        assert_eq!(span.total, 400);
        assert_eq!(profile.histograms["sizes"].count, 1);
    }
}
