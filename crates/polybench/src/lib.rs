//! # polybench — the benchmark suite of the evaluation
//!
//! The paper evaluates normalization + auto-scheduling on 15 parallelizable
//! PolyBench kernels (§4), each in three structural families:
//!
//! * **A variants** — the original PolyBench C loop structure,
//! * **B variants** — semantically equivalent implementations with different
//!   loop permutations and compositions (the robustness test of Fig. 6),
//! * **Py variants** — the NPBench NumPy formulations translated through the
//!   NumPy-style frontend (operator-at-a-time loop nests, Fig. 9),
//!
//! plus the CLOUDSC cloud-microphysics proxy used in the §5 case study.
//!
//! All kernels are expressed directly in the loop-nest IR (through the
//! textual frontend or the NumPy frontend) with the PolyBench LARGE problem
//! sizes; [`Dataset::Mini`] provides small sizes so the reference interpreter
//! can check that the three families compute the same values.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cloudsc;
pub mod kernels;
pub mod sizes;
pub mod suite;
pub mod variant;

pub use sizes::Dataset;
pub use suite::{all_benchmarks, benchmark, Benchmark};
pub use variant::random_b_variant;
