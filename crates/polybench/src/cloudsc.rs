//! The CLOUDSC proxy: a cloud-microphysics scheme with the loop structure of
//! the paper's §5 case study.
//!
//! The real CLOUDSC is ECMWF's production cloud/precipitation
//! parametrization; its code is not reproducible here, so this module builds
//! a proxy with the same structural properties the case study relies on:
//!
//! * the simulated volume is split into `NBLOCKS` independent column blocks
//!   (the outer, fully data-parallel loop),
//! * each block sweeps a vertical loop over `KLEV` levels,
//! * every level update consists of several innermost loops over the
//!   `NPROMA` tiling dimension, each implementing one physical equation with
//!   inlined saturation (`FOEEWM`-style) functions,
//! * a precipitation-flux accumulation carries a dependence along the
//!   vertical loop, so only the block loop is parallel.
//!
//! The *erosion of clouds* kernel (Fig. 10) is provided both in its original
//! fused form (one `JL` loop whose two updates each re-evaluate the inlined
//! saturation expression, as the inlined-and-unrolled compiler output does)
//! and in the normalized+fused form of Fig. 10b (each intermediate computed
//! once into an `NPROMA`-sized local array). The two forms are semantically
//! equivalent; Table 1 compares their cache behaviour and runtime.

use loop_ir::program::Program;

use crate::kernels::build;

/// The physical constants used by the proxy (values from the IFS
/// documentation; only their magnitudes matter for the performance shape).
fn constants() -> &'static str {
    "scalar R2ES = 611.21; scalar R3LES = 17.502; scalar R4LES = 32.19;
     scalar RTT = 273.16; scalar RETV = 0.6077; scalar RALVDCP = 2.5008;
     scalar RAMIN = 0.00000001; scalar RLMIN = 0.00000001;"
}

/// The inlined saturation-deficit expression (`FOEEWM`/`FOELDCPM` substitute):
/// the amount of cloud water eroded at `[level][jl]` of the given arrays.
fn cond_expr(t: &str, q: &str, pap: &str, a: &str, level: &str, jl: &str) -> String {
    format!(
        "max({q}{lvl} - min(R2ES * exp(R3LES * ({t}{lvl} - RTT) / ({t}{lvl} - R4LES)) / {pap}{lvl}, 0.5), 0.0) * {a}{lvl}",
        lvl = format!("[{level}][{jl}]"),
        t = t,
        q = q,
        pap = pap,
        a = a,
    )
}

/// Problem sizes of the case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloudscSizes {
    /// Inner tiling dimension (columns per block).
    pub nproma: i64,
    /// Number of vertical levels.
    pub klev: i64,
    /// Number of column blocks.
    pub nblocks: i64,
}

impl CloudscSizes {
    /// The paper's configuration: `NPROMA = 128`, `KLEV = 137`,
    /// `NBLOCKS = 512` (total columns = `NPROMA * NBLOCKS`).
    pub fn paper() -> Self {
        CloudscSizes {
            nproma: 128,
            klev: 137,
            nblocks: 512,
        }
    }

    /// A tiny configuration for interpreter-based equivalence tests.
    pub fn mini() -> Self {
        CloudscSizes {
            nproma: 8,
            klev: 5,
            nblocks: 3,
        }
    }

    /// A configuration with a custom number of total columns, used by the
    /// weak-scaling experiment (Fig. 12b): `columns = NPROMA * NBLOCKS`.
    pub fn with_columns(columns: i64) -> Self {
        let nproma = 128;
        CloudscSizes {
            nproma,
            klev: 137,
            nblocks: (columns / nproma).max(1),
        }
    }
}

// --------------------------------------------------------------------------
// The erosion kernel of Figure 10 (single block, all vertical levels).
// --------------------------------------------------------------------------

/// The erosion-of-clouds loop nest in its original form (Fig. 10a): one loop
/// over `JL` per vertical level whose two state updates each re-evaluate the
/// inlined saturation expression.
pub fn erosion_original(sizes: CloudscSizes) -> Program {
    let cond = cond_expr("ZTP1", "ZQX", "PAP", "ZA", "JK", "JL");
    build(
        "cloudsc_erosion_original",
        &format!(
            "program cloudsc_erosion_original {{
               param KLEV = {klev}; param NPROMA = {nproma};
               {constants}
               array ZTP1[KLEV][NPROMA]; array ZQSMIX[KLEV][NPROMA];
               array ZQX[KLEV][NPROMA]; array PAP[KLEV][NPROMA]; array ZA[KLEV][NPROMA];
               for JK in 0..KLEV {{
                 for JL in 0..NPROMA {{
                   ZQSMIX[JK][JL] -= {cond};
                   ZTP1[JK][JL] += RALVDCP * ({cond});
                 }}
               }}
             }}",
            klev = sizes.klev,
            nproma = sizes.nproma,
            constants = constants(),
            cond = cond,
        ),
    )
}

/// The erosion kernel after maximal fission and producer-consumer fusion
/// (Fig. 10b): the saturation deficit is computed once per column into the
/// `NPROMA`-sized local array `ZCOND_0`, then consumed by the two updates.
pub fn erosion_optimized(sizes: CloudscSizes) -> Program {
    let cond = cond_expr("ZTP1", "ZQX", "PAP", "ZA", "JK", "JL");
    build(
        "cloudsc_erosion_optimized",
        &format!(
            "program cloudsc_erosion_optimized {{
               param KLEV = {klev}; param NPROMA = {nproma};
               {constants}
               array ZTP1[KLEV][NPROMA]; array ZQSMIX[KLEV][NPROMA];
               array ZQX[KLEV][NPROMA]; array PAP[KLEV][NPROMA]; array ZA[KLEV][NPROMA];
               array ZCOND_0[NPROMA];
               for JK in 0..KLEV {{
                 for JL in 0..NPROMA {{
                   ZCOND_0[JL] = {cond};
                 }}
                 for JL in 0..NPROMA {{
                   ZQSMIX[JK][JL] -= ZCOND_0[JL];
                 }}
                 for JL in 0..NPROMA {{
                   ZTP1[JK][JL] += RALVDCP * ZCOND_0[JL];
                 }}
               }}
             }}",
            klev = sizes.klev,
            nproma = sizes.nproma,
            constants = constants(),
            cond = cond,
        ),
    )
}

/// Single-level versions of the erosion kernel (the "single iteration" row of
/// Table 1): the same loop nests restricted to one vertical level.
pub fn erosion_single_level(sizes: CloudscSizes, optimized: bool) -> Program {
    let one_level = CloudscSizes { klev: 1, ..sizes };
    if optimized {
        erosion_optimized(one_level)
    } else {
        erosion_original(one_level)
    }
}

// --------------------------------------------------------------------------
// The full proxy model.
// --------------------------------------------------------------------------

/// Which implementation of the full model to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloudscVariant {
    /// The hand-tuned Fortran structure: physics equations fused per level
    /// (large loop bodies), contiguous `JL`-innermost accesses.
    Fortran,
    /// The C port: same computations, but the state copy at the top of every
    /// level materializes an extra temporary sweep.
    C,
    /// The DaCe-generated SDFG: fully operator-at-a-time (every intermediate
    /// in its own `JL` loop writing an `NPROMA` temporary).
    Dace,
}

/// Builds the full CLOUDSC proxy for one variant.
///
/// The model contains, per block and vertical level: the erosion update, a
/// condensation/detrainment update, and a precipitation-flux accumulation
/// that carries a dependence along the vertical loop. The block loop is data
/// parallel and annotated as such, matching the OpenMP parallelization of
/// every real CLOUDSC version.
pub fn full_model(variant: CloudscVariant, sizes: CloudscSizes) -> Program {
    let cond = cond_expr("ZTP1", "ZQX", "PAP", "ZA", "IBL * KLEV + JK", "JL");
    let common_decls = format!(
        "param NBLOCKS = {nblocks}; param KLEV = {klev}; param NPROMA = {nproma};
         {constants}
         array ZTP1[NBLOCKS * KLEV][NPROMA]; array ZQSMIX[NBLOCKS * KLEV][NPROMA];
         array ZQX[NBLOCKS * KLEV][NPROMA]; array PAP[NBLOCKS * KLEV][NPROMA];
         array ZA[NBLOCKS * KLEV][NPROMA]; array PLUDE[NBLOCKS * KLEV][NPROMA];
         array PFPLSL[NBLOCKS * KLEV][NPROMA];",
        nblocks = sizes.nblocks,
        klev = sizes.klev,
        nproma = sizes.nproma,
        constants = constants(),
    );
    let lvl = "[IBL * KLEV + JK][JL]";
    let prev = "[IBL * KLEV + JK - 1][JL]";
    // Per-level physics, in three styles.
    let level_body = match variant {
        CloudscVariant::Fortran => format!(
            "for JL in 0..NPROMA {{
               ZQSMIX{lvl} -= {cond};
               ZTP1{lvl} += RALVDCP * ({cond});
               PLUDE{lvl} = max(ZA{lvl} * ZQX{lvl} - RAMIN, 0.0) * 0.5
                            + min(ZQSMIX{lvl}, RLMIN) * ZA{lvl};
             }}"
        ),
        CloudscVariant::C => format!(
            "for JL in 0..NPROMA {{
               ZQSMIX{lvl} -= {cond};
               ZTP1{lvl} += RALVDCP * ({cond});
             }}
             for JL in 0..NPROMA {{
               PLUDE{lvl} = max(ZA{lvl} * ZQX{lvl} - RAMIN, 0.0) * 0.5
                            + min(ZQSMIX{lvl}, RLMIN) * ZA{lvl};
             }}"
        ),
        CloudscVariant::Dace => format!(
            "for JL in 0..NPROMA {{
               ZCOND_0[JL] = {cond};
             }}
             for JL in 0..NPROMA {{
               ZQSMIX{lvl} -= ZCOND_0[JL];
             }}
             for JL in 0..NPROMA {{
               ZTP1{lvl} += RALVDCP * ZCOND_0[JL];
             }}
             for JL in 0..NPROMA {{
               ZLUDE_0[JL] = max(ZA{lvl} * ZQX{lvl} - RAMIN, 0.0) * 0.5;
             }}
             for JL in 0..NPROMA {{
               PLUDE{lvl} = ZLUDE_0[JL] + min(ZQSMIX{lvl}, RLMIN) * ZA{lvl};
             }}"
        ),
    };
    let temp_decls = match variant {
        CloudscVariant::Dace => "array ZCOND_0[NPROMA]; array ZLUDE_0[NPROMA];",
        _ => "",
    };
    let name = match variant {
        CloudscVariant::Fortran => "cloudsc_fortran",
        CloudscVariant::C => "cloudsc_c",
        CloudscVariant::Dace => "cloudsc_dace",
    };
    build(
        name,
        &format!(
            "program {name} {{
               {common_decls}
               {temp_decls}
               #pragma parallel
               for IBL in 0..NBLOCKS {{
                 for JK in 1..KLEV {{
                   {level_body}
                   for JL in 0..NPROMA {{
                     PFPLSL{lvl} = PFPLSL{prev} + PLUDE{lvl} * 0.1;
                   }}
                 }}
               }}
             }}"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::interp::run_seeded;

    fn equivalent(a: &Program, b: &Program, arrays: &[&str]) {
        let da = run_seeded(a).expect("first variant runs");
        let db = run_seeded(b).expect("second variant runs");
        for array in arrays {
            let diff = da.max_abs_diff(&db, array).expect("same shape");
            assert!(diff < 1e-9, "array {array} differs by {diff}");
        }
    }

    #[test]
    fn erosion_original_and_optimized_are_equivalent() {
        let sizes = CloudscSizes::mini();
        equivalent(
            &erosion_original(sizes),
            &erosion_optimized(sizes),
            &["ZTP1", "ZQSMIX"],
        );
    }

    #[test]
    fn single_level_variants_are_equivalent() {
        let sizes = CloudscSizes::mini();
        equivalent(
            &erosion_single_level(sizes, false),
            &erosion_single_level(sizes, true),
            &["ZTP1", "ZQSMIX"],
        );
    }

    #[test]
    fn all_full_model_variants_compute_the_same_fields() {
        let sizes = CloudscSizes::mini();
        let fortran = full_model(CloudscVariant::Fortran, sizes);
        let c = full_model(CloudscVariant::C, sizes);
        let dace = full_model(CloudscVariant::Dace, sizes);
        for variant in [&c, &dace] {
            equivalent(&fortran, variant, &["ZTP1", "ZQSMIX", "PLUDE", "PFPLSL"]);
        }
    }

    #[test]
    fn block_loop_is_parallel_and_vertical_loop_is_not() {
        let p = full_model(CloudscVariant::Fortran, CloudscSizes::mini());
        let nest = p.loop_nests()[0];
        assert!(nest.schedule.parallel);
        let graph = dependence::analyze(&p);
        assert!(dependence::is_parallel_loop(
            &graph,
            &loop_ir::expr::Var::new("IBL")
        ));
        assert!(!dependence::is_parallel_loop(
            &graph,
            &loop_ir::expr::Var::new("JK")
        ));
    }

    #[test]
    fn normalization_plus_fusion_preserves_the_dace_variant() {
        let sizes = CloudscSizes::mini();
        let dace = full_model(CloudscVariant::Dace, sizes);
        let normalized = normalize::Normalizer::new().run(&dace).unwrap().program;
        let fused = transforms::fuse_producer_consumers(&normalized);
        assert!(fused.validate().is_ok());
        equivalent(&dace, &fused, &["ZTP1", "ZQSMIX", "PLUDE", "PFPLSL"]);
    }

    #[test]
    fn paper_sizes_describe_the_experiment() {
        let s = CloudscSizes::paper();
        assert_eq!(s.nproma, 128);
        assert_eq!(s.nblocks, 512);
        assert_eq!(s.nproma * s.nblocks, 65536);
        assert_eq!(CloudscSizes::with_columns(131072).nblocks, 1024);
        assert!(erosion_original(CloudscSizes::paper()).validate().is_ok());
        assert!(full_model(CloudscVariant::Fortran, CloudscSizes::paper())
            .validate()
            .is_ok());
    }
}
