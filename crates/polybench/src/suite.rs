//! The benchmark registry: the 15 PolyBench kernels of the evaluation.

use loop_ir::numpy::FrameworkOp;
use loop_ir::program::Program;

use crate::kernels::{blas, datamining, linalg, stencils};
use crate::sizes::Dataset;

/// One benchmark with its three structural families.
#[derive(Clone)]
pub struct Benchmark {
    /// PolyBench benchmark name.
    pub name: &'static str,
    /// The original PolyBench structure.
    pub a: fn(Dataset) -> Program,
    /// The restructured, semantically equivalent variant.
    pub b: fn(Dataset) -> Program,
    /// The NPBench/Python-frontend style variant plus its framework-op trace.
    pub py: fn(Dataset) -> (Program, Vec<FrameworkOp>),
    /// The arrays holding the benchmark result (used by equivalence tests).
    pub outputs: &'static [&'static str],
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("outputs", &self.outputs)
            .finish()
    }
}

/// The 15 parallelizable PolyBench benchmarks selected by the paper (§4).
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "2mm",
            a: blas::mm2_a,
            b: blas::mm2_b,
            py: blas::mm2_py,
            outputs: &["D"],
        },
        Benchmark {
            name: "3mm",
            a: blas::mm3_a,
            b: blas::mm3_b,
            py: blas::mm3_py,
            outputs: &["G"],
        },
        Benchmark {
            name: "atax",
            a: linalg::atax_a,
            b: linalg::atax_b,
            py: linalg::atax_py,
            outputs: &["y"],
        },
        Benchmark {
            name: "bicg",
            a: linalg::bicg_a,
            b: linalg::bicg_b,
            py: linalg::bicg_py,
            outputs: &["s", "q"],
        },
        Benchmark {
            name: "correlation",
            a: datamining::correlation_a,
            b: datamining::correlation_b,
            py: datamining::correlation_py,
            outputs: &["corr"],
        },
        Benchmark {
            name: "covariance",
            a: datamining::covariance_a,
            b: datamining::covariance_b,
            py: datamining::covariance_py,
            outputs: &["cov"],
        },
        Benchmark {
            name: "fdtd-2d",
            a: stencils::fdtd2d_a,
            b: stencils::fdtd2d_b,
            py: stencils::fdtd2d_py,
            outputs: &["ex", "ey", "hz"],
        },
        Benchmark {
            name: "gemm",
            a: blas::gemm_a,
            b: blas::gemm_b,
            py: blas::gemm_py,
            outputs: &["C"],
        },
        Benchmark {
            name: "gemver",
            a: linalg::gemver_a,
            b: linalg::gemver_b,
            py: linalg::gemver_py,
            outputs: &["w"],
        },
        Benchmark {
            name: "gesummv",
            a: linalg::gesummv_a,
            b: linalg::gesummv_b,
            py: linalg::gesummv_py,
            outputs: &["y"],
        },
        Benchmark {
            name: "heat-3d",
            a: stencils::heat3d_a,
            b: stencils::heat3d_b,
            py: stencils::heat3d_py,
            outputs: &["A", "B"],
        },
        Benchmark {
            name: "jacobi-2d",
            a: stencils::jacobi2d_a,
            b: stencils::jacobi2d_b,
            py: stencils::jacobi2d_py,
            outputs: &["A", "B"],
        },
        Benchmark {
            name: "mvt",
            a: linalg::mvt_a,
            b: linalg::mvt_b,
            py: linalg::mvt_py,
            outputs: &["x1", "x2"],
        },
        Benchmark {
            name: "syr2k",
            a: blas::syr2k_a,
            b: blas::syr2k_b,
            py: blas::syr2k_py,
            outputs: &["C"],
        },
        Benchmark {
            name: "syrk",
            a: blas::syrk_a,
            b: blas::syrk_b,
            py: blas::syrk_py,
            outputs: &["C"],
        },
    ]
}

/// Looks up a benchmark by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_fifteen_paper_benchmarks() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(names.len(), 15);
        for expected in [
            "2mm",
            "3mm",
            "atax",
            "bicg",
            "correlation",
            "covariance",
            "fdtd-2d",
            "gemm",
            "gemver",
            "gesummv",
            "heat-3d",
            "jacobi-2d",
            "mvt",
            "syr2k",
            "syrk",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("gemm").is_some());
        assert!(benchmark("does-not-exist").is_none());
        assert_eq!(benchmark("mvt").unwrap().outputs, &["x1", "x2"]);
    }

    #[test]
    fn every_benchmark_builds_at_mini_size() {
        for b in all_benchmarks() {
            let a = (b.a)(Dataset::Mini);
            let bb = (b.b)(Dataset::Mini);
            let (py, ops) = (b.py)(Dataset::Mini);
            assert!(a.validate().is_ok(), "{} A", b.name);
            assert!(bb.validate().is_ok(), "{} B", b.name);
            assert!(py.validate().is_ok(), "{} Py", b.name);
            assert!(!ops.is_empty(), "{} has no framework ops", b.name);
            assert!(format!("{b:?}").contains(b.name));
        }
    }

    #[test]
    fn every_benchmark_builds_at_large_size() {
        for b in all_benchmarks() {
            assert!(
                (b.a)(Dataset::Large).validate().is_ok(),
                "{} A large",
                b.name
            );
            assert!(
                (b.b)(Dataset::Large).validate().is_ok(),
                "{} B large",
                b.name
            );
        }
    }
}
