//! Random generation of alternative benchmark variants.
//!
//! The paper generates the B variants "randomly … based on different
//! permutations and compositions" (§4). The hand-written B variants in
//! [`crate::kernels`] are fixed instances of that process; this module
//! provides the generator itself, used by property tests to produce many
//! additional semantically equivalent variants.

use dependence::{analyze, is_permutation_legal};
use loop_ir::expr::Var;
use loop_ir::nest::Node;
use loop_ir::program::Program;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use transforms::{distribute_all, interchange, perfect_chain};

/// Produces a random, semantically equivalent variant of a program by
/// applying, per top-level nest, a random *legal* permutation of its
/// perfectly nested loops and, with some probability, maximal distribution of
/// its body.
///
/// The same seed always produces the same variant.
pub fn random_b_variant(program: &Program, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = analyze(program);
    let mut out = program.clone();
    out.body = program
        .body
        .iter()
        .flat_map(|node| match node {
            Node::Loop(nest) => {
                // Optionally distribute the body first (a different
                // composition of the same computations).
                let candidates: Vec<loop_ir::nest::Loop> = if nest.body.len() > 1
                    && rng.gen_bool(0.5)
                    && dependence::sccs_of_body(&graph, &nest.body).len() == nest.body.len()
                {
                    distribute_all(nest)
                } else {
                    vec![nest.clone()]
                };
                candidates
                    .into_iter()
                    .map(|candidate| {
                        let chain: Vec<Var> = perfect_chain(&candidate)
                            .iter()
                            .map(|l| l.iter.clone())
                            .collect();
                        if chain.len() < 2 {
                            return Node::Loop(candidate);
                        }
                        // Try a few random permutations and keep the first
                        // legal one.
                        for _ in 0..8 {
                            let mut order = chain.clone();
                            order.shuffle(&mut rng);
                            if is_permutation_legal(&graph, &candidate, &order) {
                                if let Ok(permuted) = interchange(&candidate, &order) {
                                    return Node::Loop(permuted);
                                }
                            }
                        }
                        Node::Loop(candidate)
                    })
                    .collect::<Vec<_>>()
            }
            other => vec![other.clone()],
        })
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::Dataset;
    use crate::suite::all_benchmarks;
    use machine::interp::run_seeded;

    #[test]
    fn random_variants_are_semantically_equivalent() {
        for b in all_benchmarks().into_iter().take(6) {
            let a = (b.a)(Dataset::Mini);
            let variant = random_b_variant(&a, 42);
            assert!(variant.validate().is_ok(), "{} variant validates", b.name);
            let da = run_seeded(&a).unwrap();
            let dv = run_seeded(&variant).unwrap();
            for array in b.outputs {
                let diff = da.max_abs_diff(&dv, array).unwrap();
                assert!(diff < 1e-9, "{}::{array} differs by {diff}", b.name);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = (all_benchmarks()[0].a)(Dataset::Mini);
        assert_eq!(random_b_variant(&a, 7), random_b_variant(&a, 7));
    }

    #[test]
    fn different_seeds_can_give_different_structures() {
        let gemm = crate::kernels::blas::gemm_a(Dataset::Mini);
        let variants: Vec<Program> = (0..10).map(|s| random_b_variant(&gemm, s)).collect();
        let reference = &variants[0];
        assert!(
            variants.iter().any(|v| v != reference),
            "ten seeds should produce at least two distinct structures"
        );
    }
}
