//! Stencil kernels: fdtd-2d, heat-3d, jacobi-2d.

use loop_ir::expr::{cst, var, Var};
use loop_ir::numpy::{
    ArrayView, FrameworkOp, FrameworkOpKind, NpExpr, NpStmt, NumpyProgram, Range,
};
use loop_ir::program::Program;

use crate::kernels::build;
use crate::sizes::{stencil2d_sizes, stencil3d_sizes, Dataset};

// --------------------------------------------------------------------------
// fdtd-2d
// --------------------------------------------------------------------------

/// PolyBench `fdtd-2d`, A variant.
pub fn fdtd2d_a(dataset: Dataset) -> Program {
    let s = stencil2d_sizes(dataset);
    build(
        "fdtd2d_a",
        &format!(
            "program fdtd2d_a {{
               param TMAX = {tmax}; param NX = {nx}; param NY = {ny};
               array ex[NX][NY]; array ey[NX][NY]; array hz[NX][NY]; array fict[TMAX];
               for t in 0..TMAX {{
                 for j in 0..NY {{ ey[0][j] = fict[t]; }}
                 for i in 1..NX {{ for j in 0..NY {{
                   ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);
                 }} }}
                 for i in 0..NX {{ for j in 1..NY {{
                   ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
                 }} }}
                 for i in 0..NX - 1 {{ for j in 0..NY - 1 {{
                   hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j] + ey[i + 1][j] - ey[i][j]);
                 }} }}
               }}
             }}",
            tmax = s.get("TMAX"),
            nx = s.get("NX"),
            ny = s.get("NY"),
        ),
    )
}

/// `fdtd-2d`, B variant: the three field updates run with the `j` loop
/// outermost (column-major traversal), which neither Polly nor icc optimize
/// well (the example the paper calls out for Fig. 6).
pub fn fdtd2d_b(dataset: Dataset) -> Program {
    let s = stencil2d_sizes(dataset);
    build(
        "fdtd2d_b",
        &format!(
            "program fdtd2d_b {{
               param TMAX = {tmax}; param NX = {nx}; param NY = {ny};
               array ex[NX][NY]; array ey[NX][NY]; array hz[NX][NY]; array fict[TMAX];
               for t in 0..TMAX {{
                 for j in 0..NY {{ ey[0][j] = fict[t]; }}
                 for j in 0..NY {{ for i in 1..NX {{
                   ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);
                 }} }}
                 for j in 1..NY {{ for i in 0..NX {{
                   ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
                 }} }}
                 for j in 0..NY - 1 {{ for i in 0..NX - 1 {{
                   hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j] + ey[i + 1][j] - ey[i][j]);
                 }} }}
               }}
             }}",
            tmax = s.get("TMAX"),
            nx = s.get("NX"),
            ny = s.get("NY"),
        ),
    )
}

/// `fdtd-2d`, Python-frontend style: each field update is a whole-array
/// slice operation (operator-at-a-time nests inside the time loop).
pub fn fdtd2d_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let s = stencil2d_sizes(dataset);
    let (tmax, nx, ny) = (s.get("TMAX"), s.get("NX"), s.get("NY"));
    let program = build(
        "fdtd2d_py",
        &format!(
            "program fdtd2d_py {{
               param TMAX = {tmax}; param NX = {nx}; param NY = {ny};
               array ex[NX][NY]; array ey[NX][NY]; array hz[NX][NY]; array fict[TMAX];
               for t in 0..TMAX {{
                 for _j0 in 0..NY {{ ey[0][_j0] = fict[t]; }}
                 for _i1 in 1..NX {{ for _j1 in 0..NY {{
                   ey[_i1][_j1] -= 0.5 * (hz[_i1][_j1] - hz[_i1 - 1][_j1]);
                 }} }}
                 for _i2 in 0..NX {{ for _j2 in 1..NY {{
                   ex[_i2][_j2] -= 0.5 * (hz[_i2][_j2] - hz[_i2][_j2 - 1]);
                 }} }}
                 for _i3 in 0..NX - 1 {{ for _j3 in 0..NY - 1 {{
                   hz[_i3][_j3] -= 0.7 * (ex[_i3][_j3 + 1] - ex[_i3][_j3] + ey[_i3 + 1][_j3] - ey[_i3][_j3]);
                 }} }}
               }}
             }}",
        ),
    );
    let ops = vec![
        FrameworkOp {
            kind: FrameworkOpKind::Elementwise,
            invocations: tmax,
            output_elements: ny,
        },
        FrameworkOp {
            kind: FrameworkOpKind::Elementwise,
            invocations: tmax,
            output_elements: (nx - 1) * ny,
        },
        FrameworkOp {
            kind: FrameworkOpKind::Elementwise,
            invocations: tmax,
            output_elements: nx * (ny - 1),
        },
        FrameworkOp {
            kind: FrameworkOpKind::Elementwise,
            invocations: tmax,
            output_elements: (nx - 1) * (ny - 1),
        },
    ];
    (program, ops)
}

// --------------------------------------------------------------------------
// jacobi-2d
// --------------------------------------------------------------------------

/// PolyBench `jacobi-2d`, A variant.
pub fn jacobi2d_a(dataset: Dataset) -> Program {
    let s = stencil2d_sizes(dataset);
    build(
        "jacobi2d_a",
        &format!(
            "program jacobi2d_a {{
               param TSTEPS = {t}; param N = {n};
               array A[N][N]; array B[N][N];
               for t in 0..TSTEPS {{
                 for i in 1..N - 1 {{ for j in 1..N - 1 {{
                   B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + A[i + 1][j] + A[i - 1][j]);
                 }} }}
                 for i in 1..N - 1 {{ for j in 1..N - 1 {{
                   A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][j + 1] + B[i + 1][j] + B[i - 1][j]);
                 }} }}
               }}
             }}",
            t = s.get("TSTEPS"),
            n = s.get("N"),
        ),
    )
}

/// `jacobi-2d`, B variant: both sweeps traverse the grid column-major.
pub fn jacobi2d_b(dataset: Dataset) -> Program {
    let s = stencil2d_sizes(dataset);
    build(
        "jacobi2d_b",
        &format!(
            "program jacobi2d_b {{
               param TSTEPS = {t}; param N = {n};
               array A[N][N]; array B[N][N];
               for t in 0..TSTEPS {{
                 for j in 1..N - 1 {{ for i in 1..N - 1 {{
                   B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] + A[i + 1][j] + A[i - 1][j]);
                 }} }}
                 for j in 1..N - 1 {{ for i in 1..N - 1 {{
                   A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][j + 1] + B[i + 1][j] + B[i - 1][j]);
                 }} }}
               }}
             }}",
            t = s.get("TSTEPS"),
            n = s.get("N"),
        ),
    )
}

/// `jacobi-2d`, NPBench-style: whole-array slice expressions inside the time
/// loop, lowered through the NumPy frontend.
pub fn jacobi2d_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let s = stencil2d_sizes(dataset);
    let n = s.get("N");
    let p = NumpyProgram::new("jacobi2d_py")
        .param("TSTEPS", s.get("TSTEPS"))
        .param("N", n)
        .array("A", &["N", "N"])
        .array("B", &["N", "N"]);
    // interior view [1..N-1, 1..N-1] shifted by (di, dj).
    let shifted = |name: &str, di: i64, dj: i64| {
        ArrayView::sliced(
            name,
            vec![
                Range::new(cst(1 + di), var("N") - cst(1 - di)),
                Range::new(cst(1 + dj), var("N") - cst(1 - dj)),
            ],
        )
    };
    let five_point = |name: &str| {
        NpExpr::Const(0.2).mul(
            NpExpr::View(shifted(name, 0, 0))
                .add(NpExpr::View(shifted(name, 0, -1)))
                .add(NpExpr::View(shifted(name, 0, 1)))
                .add(NpExpr::View(shifted(name, 1, 0)))
                .add(NpExpr::View(shifted(name, -1, 0))),
        )
    };
    let body = vec![
        NpStmt::Assign {
            target: shifted("B", 0, 0),
            value: five_point("A"),
        },
        NpStmt::Assign {
            target: shifted("A", 0, 0),
            value: five_point("B"),
        },
    ];
    p.stmt(NpStmt::For {
        iter: Var::new("t"),
        lower: cst(0),
        upper: var("TSTEPS"),
        body,
    })
    .lower()
    .expect("jacobi2d_py lowers")
}

// --------------------------------------------------------------------------
// heat-3d
// --------------------------------------------------------------------------

fn heat3d_update(dst: &str, src: &str, iters: (&str, &str, &str)) -> String {
    let (i, j, k) = iters;
    format!(
        "{dst}[{i}][{j}][{k}] = 0.125 * ({src}[{i} + 1][{j}][{k}] - 2.0 * {src}[{i}][{j}][{k}] + {src}[{i} - 1][{j}][{k}])
                 + 0.125 * ({src}[{i}][{j} + 1][{k}] - 2.0 * {src}[{i}][{j}][{k}] + {src}[{i}][{j} - 1][{k}])
                 + 0.125 * ({src}[{i}][{j}][{k} + 1] - 2.0 * {src}[{i}][{j}][{k}] + {src}[{i}][{j}][{k} - 1])
                 + {src}[{i}][{j}][{k}];"
    )
}

/// PolyBench `heat-3d`, A variant.
pub fn heat3d_a(dataset: Dataset) -> Program {
    let s = stencil3d_sizes(dataset);
    build(
        "heat3d_a",
        &format!(
            "program heat3d_a {{
               param TSTEPS = {t}; param N = {n};
               array A[N][N][N]; array B[N][N][N];
               for t in 0..TSTEPS {{
                 for i in 1..N - 1 {{ for j in 1..N - 1 {{ for k in 1..N - 1 {{
                   {update_b}
                 }} }} }}
                 for i in 1..N - 1 {{ for j in 1..N - 1 {{ for k in 1..N - 1 {{
                   {update_a}
                 }} }} }}
               }}
             }}",
            t = s.get("TSTEPS"),
            n = s.get("N"),
            update_b = heat3d_update("B", "A", ("i", "j", "k")),
            update_a = heat3d_update("A", "B", ("i", "j", "k")),
        ),
    )
}

/// `heat-3d`, B variant: the spatial loops run in (k, j, i) order, making the
/// innermost accesses large-strided.
pub fn heat3d_b(dataset: Dataset) -> Program {
    let s = stencil3d_sizes(dataset);
    build(
        "heat3d_b",
        &format!(
            "program heat3d_b {{
               param TSTEPS = {t}; param N = {n};
               array A[N][N][N]; array B[N][N][N];
               for t in 0..TSTEPS {{
                 for k in 1..N - 1 {{ for j in 1..N - 1 {{ for i in 1..N - 1 {{
                   {update_b}
                 }} }} }}
                 for k in 1..N - 1 {{ for j in 1..N - 1 {{ for i in 1..N - 1 {{
                   {update_a}
                 }} }} }}
               }}
             }}",
            t = s.get("TSTEPS"),
            n = s.get("N"),
            update_b = heat3d_update("B", "A", ("i", "j", "k")),
            update_a = heat3d_update("A", "B", ("i", "j", "k")),
        ),
    )
}

/// `heat-3d`, Python-frontend style: the same sweeps expressed as separate
/// whole-array operations with frontend-generated iterator names.
pub fn heat3d_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let s = stencil3d_sizes(dataset);
    let (tsteps, n) = (s.get("TSTEPS"), s.get("N"));
    let program = build(
        "heat3d_py",
        &format!(
            "program heat3d_py {{
               param TSTEPS = {tsteps}; param N = {n};
               array A[N][N][N]; array B[N][N][N];
               for t in 0..TSTEPS {{
                 for _i0 in 1..N - 1 {{ for _j0 in 1..N - 1 {{ for _k0 in 1..N - 1 {{
                   {update_b}
                 }} }} }}
                 for _i1 in 1..N - 1 {{ for _j1 in 1..N - 1 {{ for _k1 in 1..N - 1 {{
                   {update_a}
                 }} }} }}
               }}
             }}",
            update_b = heat3d_update("B", "A", ("_i0", "_j0", "_k0")),
            update_a = heat3d_update("A", "B", ("_i1", "_j1", "_k1")),
        ),
    );
    let interior = (n - 2) * (n - 2) * (n - 2);
    let ops = vec![
        FrameworkOp {
            kind: FrameworkOpKind::Elementwise,
            invocations: tsteps,
            output_elements: interior,
        },
        FrameworkOp {
            kind: FrameworkOpKind::Elementwise,
            invocations: tsteps,
            output_elements: interior,
        },
    ];
    (program, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::interp::run_seeded;

    fn equivalent(a: &Program, b: &Program, arrays: &[&str]) {
        let da = run_seeded(a).expect("first variant runs");
        let db = run_seeded(b).expect("second variant runs");
        for array in arrays {
            let diff = da.max_abs_diff(&db, array).expect("same shape");
            assert!(diff < 1e-9, "array {array} differs by {diff}");
        }
    }

    #[test]
    fn fdtd2d_variants_are_equivalent() {
        equivalent(
            &fdtd2d_a(Dataset::Mini),
            &fdtd2d_b(Dataset::Mini),
            &["ex", "ey", "hz"],
        );
        let (py, ops) = fdtd2d_py(Dataset::Mini);
        equivalent(&fdtd2d_a(Dataset::Mini), &py, &["ex", "ey", "hz"]);
        assert_eq!(ops.len(), 4);
    }

    #[test]
    fn jacobi2d_variants_are_equivalent() {
        equivalent(
            &jacobi2d_a(Dataset::Mini),
            &jacobi2d_b(Dataset::Mini),
            &["A", "B"],
        );
        let (py, _) = jacobi2d_py(Dataset::Mini);
        equivalent(&jacobi2d_a(Dataset::Mini), &py, &["A", "B"]);
    }

    #[test]
    fn heat3d_variants_are_equivalent() {
        equivalent(
            &heat3d_a(Dataset::Mini),
            &heat3d_b(Dataset::Mini),
            &["A", "B"],
        );
        let (py, _) = heat3d_py(Dataset::Mini);
        equivalent(&heat3d_a(Dataset::Mini), &py, &["A", "B"]);
    }

    #[test]
    fn stencil_b_variants_traverse_column_major() {
        let b = jacobi2d_b(Dataset::Mini);
        let order: Vec<String> = b.loop_nests()[0]
            .nested_iterators()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(order[0], "t");
        assert_eq!(order[1], "j");
        assert_eq!(order[2], "i");
    }

    #[test]
    fn large_variants_validate() {
        assert!(fdtd2d_a(Dataset::Large).validate().is_ok());
        assert!(jacobi2d_b(Dataset::Large).validate().is_ok());
        assert!(heat3d_a(Dataset::Large).validate().is_ok());
    }
}
