//! Kernel definitions, grouped by PolyBench category.
//!
//! Every kernel module exposes three constructors:
//!
//! * `a_variant(dataset)` — the original PolyBench loop structure,
//! * `b_variant(dataset)` — a semantically equivalent restructuring
//!   (different loop permutation and composition),
//! * `py_variant(dataset)` — the NPBench-style NumPy formulation lowered
//!   through [`loop_ir::numpy`], returning the program and the framework-op
//!   trace used by the Python-framework baselines.

pub mod blas;
pub mod datamining;
pub mod linalg;
pub mod stencils;

use loop_ir::parser::parse_program;
use loop_ir::program::Program;

/// Parses a kernel source, panicking with the kernel name on error: kernel
/// sources are compiled into the crate, so a parse failure is a bug in the
/// suite, not a user error.
pub(crate) fn build(name: &str, source: &str) -> Program {
    match parse_program(source) {
        Ok(p) => p,
        Err(e) => panic!("benchmark `{name}` failed to build: {e}\n{source}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parses_valid_sources() {
        let p = build(
            "t",
            "program t { param N = 4; array A[N]; for i in 0..N { A[i] = 1.0; } }",
        );
        assert_eq!(p.name, "t");
    }

    #[test]
    #[should_panic(expected = "failed to build")]
    fn build_panics_on_invalid_source() {
        build("broken", "program broken {");
    }
}
