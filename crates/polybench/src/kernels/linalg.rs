//! Matrix-vector kernels: atax, bicg, mvt, gemver, gesummv.

use loop_ir::expr::Var;
use loop_ir::numpy::{ArrayView, FrameworkOp, NpExpr, NpStmt, NumpyProgram};
use loop_ir::program::Program;
use loop_ir::scalar::BinOp;

use crate::kernels::build;
use crate::sizes::{matvec_sizes, Dataset};

// --------------------------------------------------------------------------
// atax: y = A^T (A x)
// --------------------------------------------------------------------------

/// PolyBench `atax`, A variant.
pub fn atax_a(dataset: Dataset) -> Program {
    let s = matvec_sizes(dataset);
    build(
        "atax_a",
        &format!(
            "program atax_a {{
               param M = {m}; param N = {n};
               array A[M][N]; array x[N]; array y[N]; array tmp[M];
               for j in 0..N {{ y[j] = 0.0; }}
               for i in 0..M {{
                 tmp[i] = 0.0;
                 for j in 0..N {{ tmp[i] += A[i][j] * x[j]; }}
                 for j in 0..N {{ y[j] += A[i][j] * tmp[i]; }}
               }}
             }}",
            m = s.get("M"),
            n = s.get("N"),
        ),
    )
}

/// `atax`, B variant: the two products are separate nests, the second one
/// runs with `j` outermost (column-major traversal of `A`).
pub fn atax_b(dataset: Dataset) -> Program {
    let s = matvec_sizes(dataset);
    build(
        "atax_b",
        &format!(
            "program atax_b {{
               param M = {m}; param N = {n};
               array A[M][N]; array x[N]; array y[N]; array tmp[M];
               for i in 0..M {{ tmp[i] = 0.0; }}
               for i in 0..M {{ for j in 0..N {{ tmp[i] += A[i][j] * x[j]; }} }}
               for j in 0..N {{ y[j] = 0.0; }}
               for j in 0..N {{ for i in 0..M {{ y[j] += A[i][j] * tmp[i]; }} }}
             }}",
            m = s.get("M"),
            n = s.get("N"),
        ),
    )
}

/// `atax`, NPBench-style: `tmp = A @ x; y = A.T @ tmp`.
pub fn atax_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let s = matvec_sizes(dataset);
    let p = NumpyProgram::new("atax_py")
        .param("M", s.get("M"))
        .param("N", s.get("N"))
        .array("A", &["M", "N"])
        .array("x", &["N"])
        .array("y", &["N"])
        .array("tmp", &["M"]);
    let a = ArrayView::whole("A", &p.extents("A").unwrap());
    let x = ArrayView::whole("x", &p.extents("x").unwrap());
    let y = ArrayView::whole("y", &p.extents("y").unwrap());
    let tmp = ArrayView::whole("tmp", &p.extents("tmp").unwrap());
    p.stmt(NpStmt::Assign {
        target: tmp.clone(),
        value: NpExpr::View(a.clone()).matmul(NpExpr::View(x)),
    })
    .stmt(NpStmt::Assign {
        target: y,
        value: NpExpr::View(a.t()).matmul(NpExpr::View(tmp)),
    })
    .lower()
    .expect("atax_py lowers")
}

// --------------------------------------------------------------------------
// bicg: s = r A, q = A p
// --------------------------------------------------------------------------

/// PolyBench `bicg`, A variant (both products fused into one nest).
pub fn bicg_a(dataset: Dataset) -> Program {
    let s = matvec_sizes(dataset);
    build(
        "bicg_a",
        &format!(
            "program bicg_a {{
               param N = {n}; param M = {m};
               array A[N][M]; array s[M]; array q[N]; array p[M]; array r[N];
               for i in 0..M {{ s[i] = 0.0; }}
               for i in 0..N {{
                 q[i] = 0.0;
                 for j in 0..M {{
                   s[j] += r[i] * A[i][j];
                   q[i] += A[i][j] * p[j];
                 }}
               }}
             }}",
            n = s.get("N"),
            m = s.get("M"),
        ),
    )
}

/// `bicg`, B variant: the two products are computed in separate nests, the
/// `s` product with `j` outermost.
pub fn bicg_b(dataset: Dataset) -> Program {
    let s = matvec_sizes(dataset);
    build(
        "bicg_b",
        &format!(
            "program bicg_b {{
               param N = {n}; param M = {m};
               array A[N][M]; array s[M]; array q[N]; array p[M]; array r[N];
               for j in 0..M {{ s[j] = 0.0; }}
               for j in 0..M {{ for i in 0..N {{ s[j] += r[i] * A[i][j]; }} }}
               for i in 0..N {{ q[i] = 0.0; }}
               for i in 0..N {{ for j in 0..M {{ q[i] += A[i][j] * p[j]; }} }}
             }}",
            n = s.get("N"),
            m = s.get("M"),
        ),
    )
}

/// `bicg`, NPBench-style: `s = r @ A; q = A @ p`.
pub fn bicg_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let sz = matvec_sizes(dataset);
    let p = NumpyProgram::new("bicg_py")
        .param("N", sz.get("N"))
        .param("M", sz.get("M"))
        .array("A", &["N", "M"])
        .array("s", &["M"])
        .array("q", &["N"])
        .array("p", &["M"])
        .array("r", &["N"]);
    let a = ArrayView::whole("A", &p.extents("A").unwrap());
    let s = ArrayView::whole("s", &p.extents("s").unwrap());
    let q = ArrayView::whole("q", &p.extents("q").unwrap());
    let pv = ArrayView::whole("p", &p.extents("p").unwrap());
    let r = ArrayView::whole("r", &p.extents("r").unwrap());
    p.stmt(NpStmt::Assign {
        target: s,
        value: NpExpr::View(r).matmul(NpExpr::View(a.clone())),
    })
    .stmt(NpStmt::Assign {
        target: q,
        value: NpExpr::View(a).matmul(NpExpr::View(pv)),
    })
    .lower()
    .expect("bicg_py lowers")
}

// --------------------------------------------------------------------------
// mvt: x1 += A y1, x2 += A^T y2
// --------------------------------------------------------------------------

/// PolyBench `mvt`, A variant.
pub fn mvt_a(dataset: Dataset) -> Program {
    let s = matvec_sizes(dataset);
    build(
        "mvt_a",
        &format!(
            "program mvt_a {{
               param N = {n};
               array A[N][N]; array x1[N]; array x2[N]; array y1[N]; array y2[N];
               for i in 0..N {{ for j in 0..N {{ x1[i] += A[i][j] * y1[j]; }} }}
               for i in 0..N {{ for j in 0..N {{ x2[i] += A[j][i] * y2[j]; }} }}
             }}",
            n = s.get("N"),
        ),
    )
}

/// `mvt`, B variant: both nests interchanged (the first becomes column-major,
/// the second row-major).
pub fn mvt_b(dataset: Dataset) -> Program {
    let s = matvec_sizes(dataset);
    build(
        "mvt_b",
        &format!(
            "program mvt_b {{
               param N = {n};
               array A[N][N]; array x1[N]; array x2[N]; array y1[N]; array y2[N];
               for j in 0..N {{ for i in 0..N {{ x1[i] += A[i][j] * y1[j]; }} }}
               for j in 0..N {{ for i in 0..N {{ x2[i] += A[j][i] * y2[j]; }} }}
             }}",
            n = s.get("N"),
        ),
    )
}

/// `mvt`, NPBench-style: `x1 += A @ y1; x2 += A.T @ y2`.
pub fn mvt_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let s = matvec_sizes(dataset);
    let p = NumpyProgram::new("mvt_py")
        .param("N", s.get("N"))
        .array("A", &["N", "N"])
        .array("x1", &["N"])
        .array("x2", &["N"])
        .array("y1", &["N"])
        .array("y2", &["N"]);
    let a = ArrayView::whole("A", &p.extents("A").unwrap());
    let x1 = ArrayView::whole("x1", &p.extents("x1").unwrap());
    let x2 = ArrayView::whole("x2", &p.extents("x2").unwrap());
    let y1 = ArrayView::whole("y1", &p.extents("y1").unwrap());
    let y2 = ArrayView::whole("y2", &p.extents("y2").unwrap());
    p.stmt(NpStmt::AugAssign {
        target: x1,
        op: BinOp::Add,
        value: NpExpr::View(a.clone()).matmul(NpExpr::View(y1)),
    })
    .stmt(NpStmt::AugAssign {
        target: x2,
        op: BinOp::Add,
        value: NpExpr::View(a.t()).matmul(NpExpr::View(y2)),
    })
    .lower()
    .expect("mvt_py lowers")
}

// --------------------------------------------------------------------------
// gemver: rank-1 updates + two matrix-vector products
// --------------------------------------------------------------------------

/// PolyBench `gemver`, A variant.
pub fn gemver_a(dataset: Dataset) -> Program {
    let s = matvec_sizes(dataset);
    build(
        "gemver_a",
        &format!(
            "program gemver_a {{
               param N = {n};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[N][N]; array u1[N]; array v1[N]; array u2[N]; array v2[N];
               array w[N]; array x[N]; array y[N]; array z[N];
               for i in 0..N {{ for j in 0..N {{
                 A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
               }} }}
               for i in 0..N {{ for j in 0..N {{
                 x[i] = x[i] + beta * A[j][i] * y[j];
               }} }}
               for i in 0..N {{ x[i] = x[i] + z[i]; }}
               for i in 0..N {{ for j in 0..N {{
                 w[i] = w[i] + alpha * A[i][j] * x[j];
               }} }}
             }}",
            n = s.get("N"),
        ),
    )
}

/// `gemver`, B variant: the rank-1 update and the first product run with the
/// loops interchanged.
pub fn gemver_b(dataset: Dataset) -> Program {
    let s = matvec_sizes(dataset);
    build(
        "gemver_b",
        &format!(
            "program gemver_b {{
               param N = {n};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[N][N]; array u1[N]; array v1[N]; array u2[N]; array v2[N];
               array w[N]; array x[N]; array y[N]; array z[N];
               for j in 0..N {{ for i in 0..N {{
                 A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
               }} }}
               for j in 0..N {{ for i in 0..N {{
                 x[i] = x[i] + beta * A[j][i] * y[j];
               }} }}
               for i in 0..N {{ x[i] = x[i] + z[i]; }}
               for j in 0..N {{ for i in 0..N {{
                 w[i] = w[i] + alpha * A[i][j] * x[j];
               }} }}
             }}",
            n = s.get("N"),
        ),
    )
}

/// `gemver`, NPBench-style: rank-1 update through an explicit row loop,
/// products through `@` with temporaries.
pub fn gemver_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    use loop_ir::expr::{cst, var};
    use loop_ir::numpy::Range;
    let s = matvec_sizes(dataset);
    let p = NumpyProgram::new("gemver_py")
        .param("N", s.get("N"))
        .scalar("alpha", 1.5)
        .scalar("beta", 1.2)
        .array("A", &["N", "N"])
        .array("u1", &["N"])
        .array("v1", &["N"])
        .array("u2", &["N"])
        .array("v2", &["N"])
        .array("w", &["N"])
        .array("x", &["N"])
        .array("y", &["N"])
        .array("z", &["N"])
        .array("t1", &["N"])
        .array("t2", &["N"]);
    let n_extent = p.extents("A").unwrap();
    let vec_extent = p.extents("x").unwrap();
    let whole = |name: &str| {
        if name == "A" {
            ArrayView::whole(name, &n_extent)
        } else {
            ArrayView::whole(name, &vec_extent)
        }
    };
    let row = |name: &str| {
        ArrayView::sliced(
            name,
            vec![Range::index(var("i")), Range::new(cst(0), var("N"))],
        )
    };
    let elem = |name: &str| ArrayView::sliced(name, vec![Range::index(var("i"))]);
    // A[i, :] += u1[i]*v1[:] + u2[i]*v2[:]
    let rank1 = NpStmt::For {
        iter: Var::new("i"),
        lower: cst(0),
        upper: var("N"),
        body: vec![NpStmt::AugAssign {
            target: row("A"),
            op: BinOp::Add,
            value: NpExpr::View(elem("u1"))
                .mul(NpExpr::View(whole("v1")))
                .add(NpExpr::View(elem("u2")).mul(NpExpr::View(whole("v2")))),
        }],
    };
    let (program, ops) = p
        .stmt(rank1)
        // t1 = A.T @ y ; x += beta * t1 ; x += z
        .stmt(NpStmt::Assign {
            target: whole("t1"),
            value: NpExpr::View(whole("A").t()).matmul(NpExpr::View(whole("y"))),
        })
        .stmt(NpStmt::AugAssign {
            target: whole("x"),
            op: BinOp::Add,
            value: NpExpr::View(whole("t1")).mul(NpExpr::Param(Var::new("beta"))),
        })
        .stmt(NpStmt::AugAssign {
            target: whole("x"),
            op: BinOp::Add,
            value: NpExpr::View(whole("z")),
        })
        // t2 = A @ x ; w += alpha * t2
        .stmt(NpStmt::Assign {
            target: whole("t2"),
            value: NpExpr::View(whole("A")).matmul(NpExpr::View(whole("x"))),
        })
        .stmt(NpStmt::AugAssign {
            target: whole("w"),
            op: BinOp::Add,
            value: NpExpr::View(whole("t2")).mul(NpExpr::Param(Var::new("alpha"))),
        })
        .lower()
        .expect("gemver_py lowers");
    (program, ops)
}

// --------------------------------------------------------------------------
// gesummv: y = alpha*A*x + beta*B*x
// --------------------------------------------------------------------------

/// PolyBench `gesummv`, A variant (everything fused into one nest).
pub fn gesummv_a(dataset: Dataset) -> Program {
    let s = matvec_sizes(dataset);
    build(
        "gesummv_a",
        &format!(
            "program gesummv_a {{
               param N = {n};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[N][N]; array B[N][N]; array x[N]; array y[N]; array tmp[N];
               for i in 0..N {{
                 tmp[i] = 0.0;
                 y[i] = 0.0;
                 for j in 0..N {{
                   tmp[i] += A[i][j] * x[j];
                   y[i] += B[i][j] * x[j];
                 }}
                 y[i] = alpha * tmp[i] + beta * y[i];
               }}
             }}",
            n = s.get("N"),
        ),
    )
}

/// `gesummv`, B variant: the two products and the final combination are
/// separate nests, the products with `j` outermost.
pub fn gesummv_b(dataset: Dataset) -> Program {
    let s = matvec_sizes(dataset);
    build(
        "gesummv_b",
        &format!(
            "program gesummv_b {{
               param N = {n};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[N][N]; array B[N][N]; array x[N]; array y[N]; array tmp[N];
               for i in 0..N {{ tmp[i] = 0.0; }}
               for i in 0..N {{ y[i] = 0.0; }}
               for j in 0..N {{ for i in 0..N {{ tmp[i] += A[i][j] * x[j]; }} }}
               for j in 0..N {{ for i in 0..N {{ y[i] += B[i][j] * x[j]; }} }}
               for i in 0..N {{ y[i] = alpha * tmp[i] + beta * y[i]; }}
             }}",
            n = s.get("N"),
        ),
    )
}

/// `gesummv`, NPBench-style: `tmp = A @ x; y = B @ x; y = alpha*tmp + beta*y`.
pub fn gesummv_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let s = matvec_sizes(dataset);
    let p = NumpyProgram::new("gesummv_py")
        .param("N", s.get("N"))
        .scalar("alpha", 1.5)
        .scalar("beta", 1.2)
        .array("A", &["N", "N"])
        .array("B", &["N", "N"])
        .array("x", &["N"])
        .array("y", &["N"])
        .array("tmp", &["N"]);
    let mat_extent = p.extents("A").unwrap();
    let vec_extent = p.extents("x").unwrap();
    let whole = |name: &str| {
        if name == "A" || name == "B" {
            ArrayView::whole(name, &mat_extent)
        } else {
            ArrayView::whole(name, &vec_extent)
        }
    };
    p.stmt(NpStmt::Assign {
        target: whole("tmp"),
        value: NpExpr::View(whole("A")).matmul(NpExpr::View(whole("x"))),
    })
    .stmt(NpStmt::Assign {
        target: whole("y"),
        value: NpExpr::View(whole("B")).matmul(NpExpr::View(whole("x"))),
    })
    .stmt(NpStmt::Assign {
        target: whole("y"),
        value: NpExpr::View(whole("tmp"))
            .mul(NpExpr::Param(Var::new("alpha")))
            .add(NpExpr::View(whole("y")).mul(NpExpr::Param(Var::new("beta")))),
    })
    .lower()
    .expect("gesummv_py lowers")
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::interp::run_seeded;

    fn equivalent(a: &Program, b: &Program, arrays: &[&str]) {
        let da = run_seeded(a).expect("first variant runs");
        let db = run_seeded(b).expect("second variant runs");
        for array in arrays {
            let diff = da.max_abs_diff(&db, array).expect("same shape");
            assert!(diff < 1e-9, "array {array} differs by {diff}");
        }
    }

    #[test]
    fn atax_variants_are_equivalent() {
        equivalent(&atax_a(Dataset::Mini), &atax_b(Dataset::Mini), &["y"]);
        let (py, ops) = atax_py(Dataset::Mini);
        equivalent(&atax_a(Dataset::Mini), &py, &["y"]);
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn bicg_variants_are_equivalent() {
        equivalent(&bicg_a(Dataset::Mini), &bicg_b(Dataset::Mini), &["s", "q"]);
        let (py, _) = bicg_py(Dataset::Mini);
        equivalent(&bicg_a(Dataset::Mini), &py, &["s", "q"]);
    }

    #[test]
    fn mvt_variants_are_equivalent() {
        equivalent(&mvt_a(Dataset::Mini), &mvt_b(Dataset::Mini), &["x1", "x2"]);
        let (py, _) = mvt_py(Dataset::Mini);
        equivalent(&mvt_a(Dataset::Mini), &py, &["x1", "x2"]);
    }

    #[test]
    fn gemver_variants_are_equivalent() {
        equivalent(
            &gemver_a(Dataset::Mini),
            &gemver_b(Dataset::Mini),
            &["A", "x", "w"],
        );
        let (py, _) = gemver_py(Dataset::Mini);
        equivalent(&gemver_a(Dataset::Mini), &py, &["A", "x", "w"]);
    }

    #[test]
    fn gesummv_variants_are_equivalent() {
        equivalent(
            &gesummv_a(Dataset::Mini),
            &gesummv_b(Dataset::Mini),
            &["y", "tmp"],
        );
        let (py, _) = gesummv_py(Dataset::Mini);
        equivalent(&gesummv_a(Dataset::Mini), &py, &["y", "tmp"]);
    }

    #[test]
    fn large_variants_validate() {
        assert!(atax_a(Dataset::Large).validate().is_ok());
        assert!(bicg_b(Dataset::Large).validate().is_ok());
        assert!(mvt_a(Dataset::Large).validate().is_ok());
        assert!(gemver_b(Dataset::Large).validate().is_ok());
        assert!(gesummv_a(Dataset::Large).validate().is_ok());
    }
}
