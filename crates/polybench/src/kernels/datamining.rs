//! Data-mining kernels: correlation and covariance.
//!
//! These are the two benchmarks on which the paper's own pipeline
//! under-performs against Polly in the C evaluation (the lifted reduction is
//! executed in parallel with atomics, §4.1), while the Python-frontend
//! variants do not show the problem because the frontend produces a different
//! structure (§4.3) — which is why the Py variants below are expressed as
//! separate operator-at-a-time nests.
//!
//! Differences from PolyBench C: the `stddev[j] <= eps ? 1.0 : stddev[j]`
//! guard is replaced by `max(stddev[j], 0.1)`, identically in every variant,
//! so cross-variant equivalence is preserved.

use loop_ir::numpy::{FrameworkOp, FrameworkOpKind};
use loop_ir::program::Program;

use crate::kernels::build;
use crate::sizes::{datamining_sizes, Dataset};

/// Synthesized framework-op trace for the operator-at-a-time Py variants
/// (mean/stddev reductions, centering elementwise, one matrix-product-like
/// contraction for the correlation/covariance matrix).
fn datamining_ops(dataset: Dataset, with_stddev: bool) -> Vec<FrameworkOp> {
    let s = datamining_sizes(dataset);
    let (m, n) = (s.get("M"), s.get("N"));
    let mut ops = vec![
        FrameworkOp {
            kind: FrameworkOpKind::Reduction,
            invocations: 1,
            output_elements: m,
        },
        FrameworkOp {
            kind: FrameworkOpKind::Elementwise,
            invocations: 1,
            output_elements: n * m,
        },
    ];
    if with_stddev {
        ops.push(FrameworkOp {
            kind: FrameworkOpKind::Reduction,
            invocations: 1,
            output_elements: m,
        });
        ops.push(FrameworkOp {
            kind: FrameworkOpKind::Elementwise,
            invocations: 1,
            output_elements: n * m,
        });
    }
    ops.push(FrameworkOp {
        kind: FrameworkOpKind::MatMul,
        invocations: 1,
        output_elements: m * m,
    });
    ops
}

// --------------------------------------------------------------------------
// correlation
// --------------------------------------------------------------------------

/// PolyBench `correlation`, A variant.
pub fn correlation_a(dataset: Dataset) -> Program {
    let s = datamining_sizes(dataset);
    build(
        "correlation_a",
        &format!(
            "program correlation_a {{
               param M = {m}; param N = {n};
               scalar float_n = {nf}.0;
               array data[N][M]; array corr[M][M]; array mean[M]; array stddev[M];
               for j in 0..M {{
                 mean[j] = 0.0;
                 for i in 0..N {{ mean[j] += data[i][j]; }}
                 mean[j] /= float_n;
               }}
               for j in 0..M {{
                 stddev[j] = 0.0;
                 for i in 0..N {{
                   stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
                 }}
                 stddev[j] /= float_n;
                 stddev[j] = max(sqrt(stddev[j]), 0.1);
               }}
               for i in 0..N {{
                 for j in 0..M {{
                   data[i][j] -= mean[j];
                   data[i][j] /= sqrt(float_n) * stddev[j];
                 }}
               }}
               for i in 0..M {{
                 corr[i][i] = 1.0;
                 for j in i + 1..M {{
                   corr[i][j] = 0.0;
                   for k in 0..N {{ corr[i][j] += data[k][i] * data[k][j]; }}
                   corr[j][i] = corr[i][j];
                 }}
               }}
             }}",
            m = s.get("M"),
            n = s.get("N"),
            nf = s.get("N"),
        ),
    )
}

/// `correlation`, B variant: the mean and stddev accumulations run with the
/// row loop outermost, the normalization is split into two nests, and the
/// correlation triangle is computed column-by-column.
pub fn correlation_b(dataset: Dataset) -> Program {
    let s = datamining_sizes(dataset);
    build(
        "correlation_b",
        &format!(
            "program correlation_b {{
               param M = {m}; param N = {n};
               scalar float_n = {nf}.0;
               array data[N][M]; array corr[M][M]; array mean[M]; array stddev[M];
               for j in 0..M {{ mean[j] = 0.0; }}
               for i in 0..N {{ for j in 0..M {{ mean[j] += data[i][j]; }} }}
               for j in 0..M {{ mean[j] /= float_n; }}
               for j in 0..M {{ stddev[j] = 0.0; }}
               for i in 0..N {{ for j in 0..M {{
                 stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
               }} }}
               for j in 0..M {{
                 stddev[j] /= float_n;
                 stddev[j] = max(sqrt(stddev[j]), 0.1);
               }}
               for j in 0..M {{ for i in 0..N {{
                 data[i][j] -= mean[j];
               }} }}
               for j in 0..M {{ for i in 0..N {{
                 data[i][j] /= sqrt(float_n) * stddev[j];
               }} }}
               for i in 0..M {{ corr[i][i] = 1.0; }}
               for j in 0..M {{
                 for i in 0..j {{
                   corr[i][j] = 0.0;
                   for k in 0..N {{ corr[i][j] += data[k][i] * data[k][j]; }}
                   corr[j][i] = corr[i][j];
                 }}
               }}
             }}",
            m = s.get("M"),
            n = s.get("N"),
            nf = s.get("N"),
        ),
    )
}

/// `correlation`, Python-frontend style: every NumPy operation becomes its
/// own loop nest (reductions, centering, scaling, then the `data.T @ data`
/// style contraction over the full matrix followed by fixing the diagonal).
pub fn correlation_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let s = datamining_sizes(dataset);
    let program = build(
        "correlation_py",
        &format!(
            "program correlation_py {{
               param M = {m}; param N = {n};
               scalar float_n = {nf}.0;
               array data[N][M]; array corr[M][M]; array mean[M]; array stddev[M];
               for _c0 in 0..M {{ mean[_c0] = 0.0; }}
               for _r0 in 0..N {{ for _c0 in 0..M {{ mean[_c0] += data[_r0][_c0]; }} }}
               for _c0 in 0..M {{ mean[_c0] /= float_n; }}
               for _r1 in 0..N {{ for _c1 in 0..M {{ data[_r1][_c1] -= mean[_c1]; }} }}
               for _c2 in 0..M {{ stddev[_c2] = 0.0; }}
               for _r2 in 0..N {{ for _c2 in 0..M {{
                 stddev[_c2] += data[_r2][_c2] * data[_r2][_c2];
               }} }}
               for _c2 in 0..M {{
                 stddev[_c2] /= float_n;
                 stddev[_c2] = max(sqrt(stddev[_c2]), 0.1);
               }}
               for _r3 in 0..N {{ for _c3 in 0..M {{
                 data[_r3][_c3] /= sqrt(float_n) * stddev[_c3];
               }} }}
               for _i in 0..M {{ for _j in 0..M {{
                 corr[_i][_j] = 0.0;
                 for _k in 0..N {{ corr[_i][_j] += data[_k][_i] * data[_k][_j]; }}
               }} }}
               for _i in 0..M {{ corr[_i][_i] = 1.0; }}
             }}",
            m = s.get("M"),
            n = s.get("N"),
            nf = s.get("N"),
        ),
    );
    (program, datamining_ops(dataset, true))
}

// --------------------------------------------------------------------------
// covariance
// --------------------------------------------------------------------------

/// PolyBench `covariance`, A variant.
pub fn covariance_a(dataset: Dataset) -> Program {
    let s = datamining_sizes(dataset);
    build(
        "covariance_a",
        &format!(
            "program covariance_a {{
               param M = {m}; param N = {n};
               scalar float_n = {nf}.0;
               array data[N][M]; array cov[M][M]; array mean[M];
               for j in 0..M {{
                 mean[j] = 0.0;
                 for i in 0..N {{ mean[j] += data[i][j]; }}
                 mean[j] /= float_n;
               }}
               for i in 0..N {{ for j in 0..M {{ data[i][j] -= mean[j]; }} }}
               for i in 0..M {{
                 for j in i..M {{
                   cov[i][j] = 0.0;
                   for k in 0..N {{ cov[i][j] += data[k][i] * data[k][j]; }}
                   cov[i][j] /= float_n - 1.0;
                   cov[j][i] = cov[i][j];
                 }}
               }}
             }}",
            m = s.get("M"),
            n = s.get("N"),
            nf = s.get("N"),
        ),
    )
}

/// `covariance`, B variant: row-outer mean accumulation, column-major
/// centering, and the covariance triangle computed per column.
pub fn covariance_b(dataset: Dataset) -> Program {
    let s = datamining_sizes(dataset);
    build(
        "covariance_b",
        &format!(
            "program covariance_b {{
               param M = {m}; param N = {n};
               scalar float_n = {nf}.0;
               array data[N][M]; array cov[M][M]; array mean[M];
               for j in 0..M {{ mean[j] = 0.0; }}
               for i in 0..N {{ for j in 0..M {{ mean[j] += data[i][j]; }} }}
               for j in 0..M {{ mean[j] /= float_n; }}
               for j in 0..M {{ for i in 0..N {{ data[i][j] -= mean[j]; }} }}
               for j in 0..M {{
                 for i in 0..j + 1 {{
                   cov[i][j] = 0.0;
                   for k in 0..N {{ cov[i][j] += data[k][i] * data[k][j]; }}
                   cov[i][j] /= float_n - 1.0;
                   cov[j][i] = cov[i][j];
                 }}
               }}
             }}",
            m = s.get("M"),
            n = s.get("N"),
            nf = s.get("N"),
        ),
    )
}

/// `covariance`, Python-frontend style (operator-at-a-time nests).
pub fn covariance_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let s = datamining_sizes(dataset);
    let program = build(
        "covariance_py",
        &format!(
            "program covariance_py {{
               param M = {m}; param N = {n};
               scalar float_n = {nf}.0;
               array data[N][M]; array cov[M][M]; array mean[M];
               for _c0 in 0..M {{ mean[_c0] = 0.0; }}
               for _r0 in 0..N {{ for _c0 in 0..M {{ mean[_c0] += data[_r0][_c0]; }} }}
               for _c0 in 0..M {{ mean[_c0] /= float_n; }}
               for _r1 in 0..N {{ for _c1 in 0..M {{ data[_r1][_c1] -= mean[_c1]; }} }}
               for _i in 0..M {{ for _j in 0..M {{
                 cov[_i][_j] = 0.0;
                 for _k in 0..N {{ cov[_i][_j] += data[_k][_i] * data[_k][_j]; }}
                 cov[_i][_j] /= float_n - 1.0;
               }} }}
             }}",
            m = s.get("M"),
            n = s.get("N"),
            nf = s.get("N"),
        ),
    );
    (program, datamining_ops(dataset, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::interp::run_seeded;

    fn equivalent(a: &Program, b: &Program, arrays: &[&str]) {
        let da = run_seeded(a).expect("first variant runs");
        let db = run_seeded(b).expect("second variant runs");
        for array in arrays {
            let diff = da.max_abs_diff(&db, array).expect("same shape");
            assert!(diff < 1e-9, "array {array} differs by {diff}");
        }
    }

    #[test]
    fn correlation_a_and_b_are_equivalent() {
        equivalent(
            &correlation_a(Dataset::Mini),
            &correlation_b(Dataset::Mini),
            &["corr", "mean", "stddev"],
        );
    }

    #[test]
    fn correlation_py_matches_on_the_off_diagonal_shape() {
        // The Python-style variant computes the full corr matrix (including
        // diagonal fix-up) and matches the A variant everywhere.
        let (py, ops) = correlation_py(Dataset::Mini);
        equivalent(&correlation_a(Dataset::Mini), &py, &["corr"]);
        assert!(ops.iter().any(|o| o.kind == FrameworkOpKind::MatMul));
    }

    #[test]
    fn covariance_variants_are_equivalent() {
        equivalent(
            &covariance_a(Dataset::Mini),
            &covariance_b(Dataset::Mini),
            &["cov", "mean"],
        );
        let (py, _) = covariance_py(Dataset::Mini);
        equivalent(&covariance_a(Dataset::Mini), &py, &["cov"]);
    }

    #[test]
    fn large_variants_validate() {
        assert!(correlation_a(Dataset::Large).validate().is_ok());
        assert!(correlation_b(Dataset::Large).validate().is_ok());
        assert!(covariance_a(Dataset::Large).validate().is_ok());
        assert!(covariance_b(Dataset::Large).validate().is_ok());
    }
}
