//! BLAS-style kernels: gemm, 2mm, 3mm, syrk, syr2k.

use loop_ir::expr::{cst, var, Var};
use loop_ir::numpy::{ArrayView, FrameworkOp, NpExpr, NpStmt, NumpyProgram, Range};
use loop_ir::program::Program;
use loop_ir::scalar::BinOp;

use crate::kernels::build;
use crate::sizes::{matmul_sizes, rank_update_sizes, Dataset};

// --------------------------------------------------------------------------
// gemm: C = alpha*A*B + beta*C
// --------------------------------------------------------------------------

/// PolyBench `gemm`, A variant (original loop structure: scaling fused into
/// the (i, j) nest, reduction innermost).
pub fn gemm_a(dataset: Dataset) -> Program {
    let s = matmul_sizes(dataset);
    build(
        "gemm_a",
        &format!(
            "program gemm_a {{
               param NI = {ni}; param NJ = {nj}; param NK = {nk};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
               for i in 0..NI {{
                 for j in 0..NJ {{
                   C[i][j] *= beta;
                   for k in 0..NK {{
                     C[i][j] += alpha * A[i][k] * B[k][j];
                   }}
                 }}
               }}
             }}",
            ni = s.get("NI"),
            nj = s.get("NJ"),
            nk = s.get("NK"),
        ),
    )
}

/// `gemm`, B variant: the scaling is a separate (j, i) nest and the update
/// runs with the contraction loop outermost.
pub fn gemm_b(dataset: Dataset) -> Program {
    let s = matmul_sizes(dataset);
    build(
        "gemm_b",
        &format!(
            "program gemm_b {{
               param NI = {ni}; param NJ = {nj}; param NK = {nk};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[NI][NK]; array B[NK][NJ]; array C[NI][NJ];
               for j in 0..NJ {{
                 for i in 0..NI {{
                   C[i][j] *= beta;
                 }}
               }}
               for k in 0..NK {{
                 for j in 0..NJ {{
                   for i in 0..NI {{
                     C[i][j] += alpha * A[i][k] * B[k][j];
                   }}
                 }}
               }}
             }}",
            ni = s.get("NI"),
            nj = s.get("NJ"),
            nk = s.get("NK"),
        ),
    )
}

/// `gemm`, NPBench-style NumPy formulation: `C *= beta; t = A @ B;
/// C += alpha * t` (operator-at-a-time with a temporary).
pub fn gemm_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let s = matmul_sizes(dataset);
    let p = NumpyProgram::new("gemm_py")
        .param("NI", s.get("NI"))
        .param("NJ", s.get("NJ"))
        .param("NK", s.get("NK"))
        .scalar("alpha", 1.5)
        .scalar("beta", 1.2)
        .array("A", &["NI", "NK"])
        .array("B", &["NK", "NJ"])
        .array("C", &["NI", "NJ"])
        .array("t_ab", &["NI", "NJ"]);
    let a = ArrayView::whole("A", &p.extents("A").unwrap());
    let b = ArrayView::whole("B", &p.extents("B").unwrap());
    let c = ArrayView::whole("C", &p.extents("C").unwrap());
    let t = ArrayView::whole("t_ab", &p.extents("t_ab").unwrap());
    p.stmt(NpStmt::AugAssign {
        target: c.clone(),
        op: BinOp::Mul,
        value: NpExpr::Param(Var::new("beta")),
    })
    .stmt(NpStmt::Assign {
        target: t.clone(),
        value: NpExpr::View(a).matmul(NpExpr::View(b)),
    })
    .stmt(NpStmt::AugAssign {
        target: c,
        op: BinOp::Add,
        value: NpExpr::View(t).mul(NpExpr::Param(Var::new("alpha"))),
    })
    .lower()
    .expect("gemm_py lowers")
}

// --------------------------------------------------------------------------
// 2mm: D = alpha*A*B*C + beta*D
// --------------------------------------------------------------------------

/// PolyBench `2mm`, A variant.
pub fn mm2_a(dataset: Dataset) -> Program {
    let s = matmul_sizes(dataset);
    build(
        "2mm_a",
        &format!(
            "program mm2_a {{
               param NI = {ni}; param NJ = {nj}; param NK = {nk}; param NL = {nl};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[NI][NK]; array B[NK][NJ]; array C[NJ][NL]; array D[NI][NL];
               array tmp[NI][NJ];
               for i in 0..NI {{
                 for j in 0..NJ {{
                   tmp[i][j] = 0.0;
                   for k in 0..NK {{
                     tmp[i][j] += alpha * A[i][k] * B[k][j];
                   }}
                 }}
               }}
               for i in 0..NI {{
                 for l in 0..NL {{
                   D[i][l] *= beta;
                   for j in 0..NJ {{
                     D[i][l] += tmp[i][j] * C[j][l];
                   }}
                 }}
               }}
             }}",
            ni = s.get("NI"),
            nj = s.get("NJ"),
            nk = s.get("NK"),
            nl = s.get("NL"),
        ),
    )
}

/// `2mm`, B variant: initialization nests separated, both products written
/// with the contraction loop in the middle and the fast dimension outermost.
pub fn mm2_b(dataset: Dataset) -> Program {
    let s = matmul_sizes(dataset);
    build(
        "2mm_b",
        &format!(
            "program mm2_b {{
               param NI = {ni}; param NJ = {nj}; param NK = {nk}; param NL = {nl};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[NI][NK]; array B[NK][NJ]; array C[NJ][NL]; array D[NI][NL];
               array tmp[NI][NJ];
               for j in 0..NJ {{
                 for i in 0..NI {{
                   tmp[i][j] = 0.0;
                 }}
               }}
               for j in 0..NJ {{
                 for k in 0..NK {{
                   for i in 0..NI {{
                     tmp[i][j] += alpha * A[i][k] * B[k][j];
                   }}
                 }}
               }}
               for l in 0..NL {{
                 for i in 0..NI {{
                   D[i][l] *= beta;
                 }}
               }}
               for l in 0..NL {{
                 for j in 0..NJ {{
                   for i in 0..NI {{
                     D[i][l] += tmp[i][j] * C[j][l];
                   }}
                 }}
               }}
             }}",
            ni = s.get("NI"),
            nj = s.get("NJ"),
            nk = s.get("NK"),
            nl = s.get("NL"),
        ),
    )
}

/// `2mm`, NPBench-style: `t = A @ B; t *= alpha; D *= beta; D += t @ C`.
pub fn mm2_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let s = matmul_sizes(dataset);
    let p = NumpyProgram::new("mm2_py")
        .param("NI", s.get("NI"))
        .param("NJ", s.get("NJ"))
        .param("NK", s.get("NK"))
        .param("NL", s.get("NL"))
        .scalar("alpha", 1.5)
        .scalar("beta", 1.2)
        .array("A", &["NI", "NK"])
        .array("B", &["NK", "NJ"])
        .array("C", &["NJ", "NL"])
        .array("D", &["NI", "NL"])
        .array("tmp", &["NI", "NJ"]);
    let a = ArrayView::whole("A", &p.extents("A").unwrap());
    let b = ArrayView::whole("B", &p.extents("B").unwrap());
    let c = ArrayView::whole("C", &p.extents("C").unwrap());
    let d = ArrayView::whole("D", &p.extents("D").unwrap());
    let tmp = ArrayView::whole("tmp", &p.extents("tmp").unwrap());
    p.stmt(NpStmt::Assign {
        target: tmp.clone(),
        value: NpExpr::View(a).matmul(NpExpr::View(b)),
    })
    .stmt(NpStmt::AugAssign {
        target: tmp.clone(),
        op: BinOp::Mul,
        value: NpExpr::Param(Var::new("alpha")),
    })
    .stmt(NpStmt::AugAssign {
        target: d.clone(),
        op: BinOp::Mul,
        value: NpExpr::Param(Var::new("beta")),
    })
    .stmt(NpStmt::AugAssign {
        target: d,
        op: BinOp::Add,
        value: NpExpr::View(tmp).matmul(NpExpr::View(c)),
    })
    .lower()
    .expect("2mm_py lowers")
}

// --------------------------------------------------------------------------
// 3mm: G = (A*B) * (C*D)
// --------------------------------------------------------------------------

/// PolyBench `3mm`, A variant.
pub fn mm3_a(dataset: Dataset) -> Program {
    let s = matmul_sizes(dataset);
    build(
        "3mm_a",
        &format!(
            "program mm3_a {{
               param NI = {ni}; param NJ = {nj}; param NK = {nk}; param NL = {nl}; param NM = {nm};
               array A[NI][NK]; array B[NK][NJ]; array C[NJ][NM]; array D[NM][NL];
               array E[NI][NJ]; array F[NJ][NL]; array G[NI][NL];
               for i in 0..NI {{
                 for j in 0..NJ {{
                   E[i][j] = 0.0;
                   for k in 0..NK {{
                     E[i][j] += A[i][k] * B[k][j];
                   }}
                 }}
               }}
               for j in 0..NJ {{
                 for l in 0..NL {{
                   F[j][l] = 0.0;
                   for m in 0..NM {{
                     F[j][l] += C[j][m] * D[m][l];
                   }}
                 }}
               }}
               for i in 0..NI {{
                 for l in 0..NL {{
                   G[i][l] = 0.0;
                   for j in 0..NJ {{
                     G[i][l] += E[i][j] * F[j][l];
                   }}
                 }}
               }}
             }}",
            ni = s.get("NI"),
            nj = s.get("NJ"),
            nk = s.get("NK"),
            nl = s.get("NL"),
            nm = s.get("NM"),
        ),
    )
}

/// `3mm`, B variant: every product written with a different (legal) loop
/// order and the initializations hoisted into separate nests.
pub fn mm3_b(dataset: Dataset) -> Program {
    let s = matmul_sizes(dataset);
    build(
        "3mm_b",
        &format!(
            "program mm3_b {{
               param NI = {ni}; param NJ = {nj}; param NK = {nk}; param NL = {nl}; param NM = {nm};
               array A[NI][NK]; array B[NK][NJ]; array C[NJ][NM]; array D[NM][NL];
               array E[NI][NJ]; array F[NJ][NL]; array G[NI][NL];
               for j in 0..NJ {{ for i in 0..NI {{ E[i][j] = 0.0; }} }}
               for k in 0..NK {{ for j in 0..NJ {{ for i in 0..NI {{
                 E[i][j] += A[i][k] * B[k][j];
               }} }} }}
               for l in 0..NL {{ for j in 0..NJ {{ F[j][l] = 0.0; }} }}
               for l in 0..NL {{ for m in 0..NM {{ for j in 0..NJ {{
                 F[j][l] += C[j][m] * D[m][l];
               }} }} }}
               for i in 0..NI {{ for l in 0..NL {{ G[i][l] = 0.0; }} }}
               for j in 0..NJ {{ for i in 0..NI {{ for l in 0..NL {{
                 G[i][l] += E[i][j] * F[j][l];
               }} }} }}
             }}",
            ni = s.get("NI"),
            nj = s.get("NJ"),
            nk = s.get("NK"),
            nl = s.get("NL"),
            nm = s.get("NM"),
        ),
    )
}

/// `3mm`, NPBench-style: three chained `@` products.
pub fn mm3_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let s = matmul_sizes(dataset);
    let p = NumpyProgram::new("mm3_py")
        .param("NI", s.get("NI"))
        .param("NJ", s.get("NJ"))
        .param("NK", s.get("NK"))
        .param("NL", s.get("NL"))
        .param("NM", s.get("NM"))
        .array("A", &["NI", "NK"])
        .array("B", &["NK", "NJ"])
        .array("C", &["NJ", "NM"])
        .array("D", &["NM", "NL"])
        .array("E", &["NI", "NJ"])
        .array("F", &["NJ", "NL"])
        .array("G", &["NI", "NL"]);
    let a = ArrayView::whole("A", &p.extents("A").unwrap());
    let b = ArrayView::whole("B", &p.extents("B").unwrap());
    let c = ArrayView::whole("C", &p.extents("C").unwrap());
    let d = ArrayView::whole("D", &p.extents("D").unwrap());
    let e = ArrayView::whole("E", &p.extents("E").unwrap());
    let f = ArrayView::whole("F", &p.extents("F").unwrap());
    let g = ArrayView::whole("G", &p.extents("G").unwrap());
    p.stmt(NpStmt::Assign {
        target: e.clone(),
        value: NpExpr::View(a).matmul(NpExpr::View(b)),
    })
    .stmt(NpStmt::Assign {
        target: f.clone(),
        value: NpExpr::View(c).matmul(NpExpr::View(d)),
    })
    .stmt(NpStmt::Assign {
        target: g,
        value: NpExpr::View(e).matmul(NpExpr::View(f)),
    })
    .lower()
    .expect("3mm_py lowers")
}

// --------------------------------------------------------------------------
// syrk: C = alpha*A*A^T + beta*C  (lower triangle)
// --------------------------------------------------------------------------

/// PolyBench `syrk`, A variant (triangular update, scaling fused).
pub fn syrk_a(dataset: Dataset) -> Program {
    let s = rank_update_sizes(dataset);
    build(
        "syrk_a",
        &format!(
            "program syrk_a {{
               param N = {n}; param M = {m};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[N][M]; array C[N][N];
               for i in 0..N {{
                 for j in 0..i + 1 {{
                   C[i][j] *= beta;
                 }}
                 for k in 0..M {{
                   for j in 0..i + 1 {{
                     C[i][j] += alpha * A[i][k] * A[j][k];
                   }}
                 }}
               }}
             }}",
            n = s.get("N"),
            m = s.get("M"),
        ),
    )
}

/// `syrk`, B variant: scaling over the columns first, update with the
/// contraction loop outermost and the row loop innermost.
pub fn syrk_b(dataset: Dataset) -> Program {
    let s = rank_update_sizes(dataset);
    build(
        "syrk_b",
        &format!(
            "program syrk_b {{
               param N = {n}; param M = {m};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[N][M]; array C[N][N];
               for j in 0..N {{
                 for i in j..N {{
                   C[i][j] *= beta;
                 }}
               }}
               for k in 0..M {{
                 for j in 0..N {{
                   for i in j..N {{
                     C[i][j] += alpha * A[i][k] * A[j][k];
                   }}
                 }}
               }}
             }}",
            n = s.get("N"),
            m = s.get("M"),
        ),
    )
}

/// `syrk`, NPBench-style: triangular slice updates inside an explicit Python
/// loop (`C[i, :i+1] *= beta; C[i, :i+1] += alpha * A[i, k] * A[:i+1, k]`).
pub fn syrk_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let s = rank_update_sizes(dataset);
    let p = NumpyProgram::new("syrk_py")
        .param("N", s.get("N"))
        .param("M", s.get("M"))
        .scalar("alpha", 1.5)
        .scalar("beta", 1.2)
        .array("A", &["N", "M"])
        .array("C", &["N", "N"]);
    let row_slice = || {
        ArrayView::sliced(
            "C",
            vec![
                Range::index(var("i")),
                Range::new(cst(0), var("i") + cst(1)),
            ],
        )
    };
    let scale = NpStmt::AugAssign {
        target: row_slice(),
        op: BinOp::Mul,
        value: NpExpr::Param(Var::new("beta")),
    };
    let update = NpStmt::For {
        iter: Var::new("k"),
        lower: cst(0),
        upper: var("M"),
        body: vec![NpStmt::AugAssign {
            target: row_slice(),
            op: BinOp::Add,
            value: NpExpr::Param(Var::new("alpha"))
                .mul(NpExpr::View(ArrayView::sliced(
                    "A",
                    vec![Range::index(var("i")), Range::index(var("k"))],
                )))
                .mul(NpExpr::View(ArrayView::sliced(
                    "A",
                    vec![
                        Range::new(cst(0), var("i") + cst(1)),
                        Range::index(var("k")),
                    ],
                ))),
        }],
    };
    p.stmt(NpStmt::For {
        iter: Var::new("i"),
        lower: cst(0),
        upper: var("N"),
        body: vec![scale, update],
    })
    .lower()
    .expect("syrk_py lowers")
}

// --------------------------------------------------------------------------
// syr2k: C = alpha*(A*B^T + B*A^T) + beta*C  (lower triangle)
// --------------------------------------------------------------------------

/// PolyBench `syr2k`, A variant.
pub fn syr2k_a(dataset: Dataset) -> Program {
    let s = rank_update_sizes(dataset);
    build(
        "syr2k_a",
        &format!(
            "program syr2k_a {{
               param N = {n}; param M = {m};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[N][M]; array B[N][M]; array C[N][N];
               for i in 0..N {{
                 for j in 0..i + 1 {{
                   C[i][j] *= beta;
                 }}
                 for k in 0..M {{
                   for j in 0..i + 1 {{
                     C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
                   }}
                 }}
               }}
             }}",
            n = s.get("N"),
            m = s.get("M"),
        ),
    )
}

/// `syr2k`, B variant: column-first scaling, contraction loop outermost.
pub fn syr2k_b(dataset: Dataset) -> Program {
    let s = rank_update_sizes(dataset);
    build(
        "syr2k_b",
        &format!(
            "program syr2k_b {{
               param N = {n}; param M = {m};
               scalar alpha = 1.5; scalar beta = 1.2;
               array A[N][M]; array B[N][M]; array C[N][N];
               for j in 0..N {{
                 for i in j..N {{
                   C[i][j] *= beta;
                 }}
               }}
               for k in 0..M {{
                 for i in 0..N {{
                   for j in 0..i + 1 {{
                     C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
                   }}
                 }}
               }}
             }}",
            n = s.get("N"),
            m = s.get("M"),
        ),
    )
}

/// `syr2k`, NPBench-style: triangular slice updates inside explicit loops.
pub fn syr2k_py(dataset: Dataset) -> (Program, Vec<FrameworkOp>) {
    let s = rank_update_sizes(dataset);
    let p = NumpyProgram::new("syr2k_py")
        .param("N", s.get("N"))
        .param("M", s.get("M"))
        .scalar("alpha", 1.5)
        .scalar("beta", 1.2)
        .array("A", &["N", "M"])
        .array("B", &["N", "M"])
        .array("C", &["N", "N"]);
    let row_slice = || {
        ArrayView::sliced(
            "C",
            vec![
                Range::index(var("i")),
                Range::new(cst(0), var("i") + cst(1)),
            ],
        )
    };
    let scale = NpStmt::AugAssign {
        target: row_slice(),
        op: BinOp::Mul,
        value: NpExpr::Param(Var::new("beta")),
    };
    let col = |name: &str| {
        NpExpr::View(ArrayView::sliced(
            name,
            vec![
                Range::new(cst(0), var("i") + cst(1)),
                Range::index(var("k")),
            ],
        ))
    };
    let elem = |name: &str| {
        NpExpr::View(ArrayView::sliced(
            name,
            vec![Range::index(var("i")), Range::index(var("k"))],
        ))
    };
    let update = NpStmt::For {
        iter: Var::new("k"),
        lower: cst(0),
        upper: var("M"),
        body: vec![NpStmt::AugAssign {
            target: row_slice(),
            op: BinOp::Add,
            value: col("A")
                .mul(NpExpr::Param(Var::new("alpha")))
                .mul(elem("B"))
                .add(
                    col("B")
                        .mul(NpExpr::Param(Var::new("alpha")))
                        .mul(elem("A")),
                ),
        }],
    };
    p.stmt(NpStmt::For {
        iter: Var::new("i"),
        lower: cst(0),
        upper: var("N"),
        body: vec![scale, update],
    })
    .lower()
    .expect("syr2k_py lowers")
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::interp::run_seeded;

    fn equivalent(a: &Program, b: &Program, arrays: &[&str]) {
        let da = run_seeded(a).expect("A variant runs");
        let db = run_seeded(b).expect("B variant runs");
        for array in arrays {
            let diff = da.max_abs_diff(&db, array).expect("same shape");
            assert!(diff < 1e-9, "array {array} differs by {diff}");
        }
    }

    #[test]
    fn gemm_variants_are_equivalent() {
        equivalent(&gemm_a(Dataset::Mini), &gemm_b(Dataset::Mini), &["C"]);
        let (py, ops) = gemm_py(Dataset::Mini);
        equivalent(&gemm_a(Dataset::Mini), &py, &["C"]);
        assert!(!ops.is_empty());
    }

    #[test]
    fn mm2_variants_are_equivalent() {
        equivalent(&mm2_a(Dataset::Mini), &mm2_b(Dataset::Mini), &["D"]);
        let (py, _) = mm2_py(Dataset::Mini);
        equivalent(&mm2_a(Dataset::Mini), &py, &["D"]);
    }

    #[test]
    fn mm3_variants_are_equivalent() {
        equivalent(&mm3_a(Dataset::Mini), &mm3_b(Dataset::Mini), &["G"]);
        let (py, _) = mm3_py(Dataset::Mini);
        equivalent(&mm3_a(Dataset::Mini), &py, &["G"]);
    }

    #[test]
    fn syrk_variants_are_equivalent() {
        equivalent(&syrk_a(Dataset::Mini), &syrk_b(Dataset::Mini), &["C"]);
        let (py, _) = syrk_py(Dataset::Mini);
        equivalent(&syrk_a(Dataset::Mini), &py, &["C"]);
    }

    #[test]
    fn syr2k_variants_are_equivalent() {
        equivalent(&syr2k_a(Dataset::Mini), &syr2k_b(Dataset::Mini), &["C"]);
        let (py, _) = syr2k_py(Dataset::Mini);
        equivalent(&syr2k_a(Dataset::Mini), &py, &["C"]);
    }

    #[test]
    fn large_sizes_validate_without_executing() {
        for p in [
            gemm_a(Dataset::Large),
            gemm_b(Dataset::Large),
            mm2_a(Dataset::Large),
            mm3_a(Dataset::Large),
            syrk_a(Dataset::Large),
            syr2k_b(Dataset::Large),
        ] {
            assert!(p.validate().is_ok(), "{} should validate", p.name);
        }
    }
}
