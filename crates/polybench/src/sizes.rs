//! Problem sizes for the benchmark suite.

/// Which dataset size to instantiate a benchmark with.
///
/// `Large` matches the PolyBench 4.2 LARGE datasets used by the paper
/// ("we only consider the large input size", §4); `Medium` is the PolyBench
/// MEDIUM dataset (useful for faster experimentation); `Mini` is small enough
/// for the reference interpreter to execute in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Tiny sizes for semantics tests (interpreter-friendly).
    Mini,
    /// PolyBench MEDIUM sizes.
    Medium,
    /// PolyBench LARGE sizes (the paper's configuration).
    Large,
}

impl Dataset {
    /// Scales a `(mini, medium, large)` triple.
    pub fn pick(self, mini: i64, medium: i64, large: i64) -> i64 {
        match self {
            Dataset::Mini => mini,
            Dataset::Medium => medium,
            Dataset::Large => large,
        }
    }
}

/// Named sizes of one benchmark instance, a thin helper so every kernel
/// module declares its parameters the same way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeSet {
    entries: Vec<(&'static str, i64)>,
}

impl SizeSet {
    /// Builds a size set from `(name, value)` pairs.
    pub fn new(entries: Vec<(&'static str, i64)>) -> Self {
        SizeSet { entries }
    }

    /// The value of a named size parameter.
    ///
    /// # Panics
    /// Panics if the parameter is unknown — kernel definitions control both
    /// sides, so this indicates a typo in the kernel module.
    pub fn get(&self, name: &str) -> i64 {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("unknown size parameter `{name}`"))
    }

    /// All `(name, value)` pairs.
    pub fn entries(&self) -> &[(&'static str, i64)] {
        &self.entries
    }
}

/// Sizes of the GEMM-family kernels (gemm, 2mm, 3mm).
pub fn matmul_sizes(dataset: Dataset) -> SizeSet {
    SizeSet::new(vec![
        ("NI", dataset.pick(12, 180, 800)),
        ("NJ", dataset.pick(14, 190, 900)),
        ("NK", dataset.pick(16, 200, 1000)),
        ("NL", dataset.pick(18, 210, 1100)),
        ("NM", dataset.pick(20, 220, 1200)),
    ])
}

/// Sizes of the matrix-vector kernels (atax, bicg, mvt, gemver, gesummv).
pub fn matvec_sizes(dataset: Dataset) -> SizeSet {
    SizeSet::new(vec![
        ("M", dataset.pick(14, 390, 1900)),
        ("N", dataset.pick(16, 410, 2100)),
    ])
}

/// Sizes of the rank-update kernels (syrk, syr2k).
pub fn rank_update_sizes(dataset: Dataset) -> SizeSet {
    SizeSet::new(vec![
        ("N", dataset.pick(12, 240, 1200)),
        ("M", dataset.pick(10, 200, 1000)),
    ])
}

/// Sizes of the data-mining kernels (correlation, covariance).
pub fn datamining_sizes(dataset: Dataset) -> SizeSet {
    SizeSet::new(vec![
        ("M", dataset.pick(10, 240, 1200)),
        ("N", dataset.pick(12, 260, 1400)),
    ])
}

/// Sizes of the 2-D stencils (fdtd-2d, jacobi-2d).
pub fn stencil2d_sizes(dataset: Dataset) -> SizeSet {
    SizeSet::new(vec![
        ("TMAX", dataset.pick(4, 100, 500)),
        ("NX", dataset.pick(12, 500, 1000)),
        ("NY", dataset.pick(14, 600, 1200)),
        ("N", dataset.pick(13, 650, 1300)),
        ("TSTEPS", dataset.pick(4, 100, 500)),
    ])
}

/// Sizes of the 3-D stencil (heat-3d).
pub fn stencil3d_sizes(dataset: Dataset) -> SizeSet {
    SizeSet::new(vec![
        ("TSTEPS", dataset.pick(3, 100, 500)),
        ("N", dataset.pick(10, 40, 120)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_pick() {
        assert_eq!(Dataset::Mini.pick(1, 2, 3), 1);
        assert_eq!(Dataset::Medium.pick(1, 2, 3), 2);
        assert_eq!(Dataset::Large.pick(1, 2, 3), 3);
    }

    #[test]
    fn size_set_lookup() {
        let s = matmul_sizes(Dataset::Large);
        assert_eq!(s.get("NI"), 800);
        assert_eq!(s.get("NM"), 1200);
        assert_eq!(s.entries().len(), 5);
    }

    #[test]
    #[should_panic(expected = "unknown size parameter")]
    fn unknown_size_panics() {
        matmul_sizes(Dataset::Mini).get("ZZ");
    }

    #[test]
    fn large_sizes_match_polybench_large() {
        assert_eq!(matvec_sizes(Dataset::Large).get("M"), 1900);
        assert_eq!(rank_update_sizes(Dataset::Large).get("N"), 1200);
        assert_eq!(datamining_sizes(Dataset::Large).get("N"), 1400);
        assert_eq!(stencil2d_sizes(Dataset::Large).get("TMAX"), 500);
        assert_eq!(stencil3d_sizes(Dataset::Large).get("N"), 120);
    }

    #[test]
    fn mini_sizes_are_interpreter_friendly() {
        for s in [
            matmul_sizes(Dataset::Mini),
            matvec_sizes(Dataset::Mini),
            rank_update_sizes(Dataset::Mini),
            datamining_sizes(Dataset::Mini),
            stencil2d_sizes(Dataset::Mini),
            stencil3d_sizes(Dataset::Mini),
        ] {
            assert!(s.entries().iter().all(|(_, v)| *v <= 20));
        }
    }
}
