//! A Polly-like polyhedral scheduler baseline.
//!
//! Polly (LLVM's polyhedral optimizer with the Pluto-style ILP scheduler)
//! tiles permutable loop bands, parallelizes the outermost parallel band
//! dimension and strip-mine-vectorizes the innermost one. Crucially for this
//! paper, its ILP objective (minimizing dependence distances) does not
//! minimize access strides, so the quality of its output depends on the loop
//! structure the program arrives with — the sensitivity that Figure 6's A/B
//! comparison exposes. This baseline therefore works on the program *as
//! written* (no a priori normalization): it keeps the loop order, tiles
//! rectangular bands, parallelizes the outermost dependence-free loop and
//! vectorizes the innermost contiguous loop.

use dependence::{analyze, is_parallel_loop, DependenceGraph};
use loop_ir::expr::Var;
use loop_ir::nest::{Loop, Node};
use loop_ir::program::Program;
use transforms::{mark_parallel, mark_vectorize, perfect_chain, tile_band};

/// The tile size Polly uses by default (first and second level tiling merged
/// into one square tile here).
const POLLY_TILE: i64 = 32;

/// Schedules a program the way `-O3 -polly -polly-parallel -polly-tiling
/// -polly-vectorizer=stripmine` would: per top-level nest, tile the
/// rectangular perfectly nested band, parallelize the outermost loop without
/// carried dependences, vectorize the innermost contiguous loop.
pub fn polly_schedule(program: &Program) -> Program {
    let graph = analyze(program);
    let mut out = program.clone();
    out.body = program
        .body
        .iter()
        .map(|node| match node {
            Node::Loop(nest) => Node::Loop(schedule_nest(program, &graph, nest)),
            other => other.clone(),
        })
        .collect();
    out
}

fn schedule_nest(program: &Program, graph: &DependenceGraph, nest: &Loop) -> Loop {
    let chain: Vec<Var> = perfect_chain(nest).iter().map(|l| l.iter.clone()).collect();

    // 1. Tiling of the permutable band: only rectangular loops whose
    //    interchange with every other band member is legal are tiled (Polly
    //    tiles permutable bands only).
    let mut tiled = nest.clone();
    if chain.len() >= 2 {
        let band: Vec<(Var, i64)> = chain
            .iter()
            .filter(|iter| {
                // rectangular bound (no other chain iterator in the bounds)
                perfect_chain(nest)
                    .iter()
                    .find(|l| &l.iter == *iter)
                    .map(|l| {
                        let mut bound_vars = l.lower.vars();
                        bound_vars.extend(l.upper.vars());
                        bound_vars.iter().all(|v| !chain.contains(v))
                    })
                    .unwrap_or(false)
            })
            .map(|iter| (iter.clone(), POLLY_TILE))
            .collect();
        if band.len() >= 2 {
            if let Ok(t) = tile_band(nest, &band) {
                tiled = t;
            }
        }
    }

    // 2. Parallelize the outermost loop that carries no dependence.
    let mut scheduled = tiled.clone();
    let outer_candidates: Vec<Var> = perfect_chain(&tiled)
        .iter()
        .map(|l| l.iter.clone())
        .collect();
    for iter in &outer_candidates {
        // Tile loops inherit the parallelism of their point loop.
        let point = Var::new(iter.as_str().strip_suffix("_t").unwrap_or(iter.as_str()));
        if is_parallel_loop(graph, &point) {
            if let Ok(p) = mark_parallel(&scheduled, iter) {
                scheduled = p;
            }
            break;
        }
    }

    // 3. Strip-mine vectorization of the innermost loop when contiguous.
    if let Some(innermost) = scheduled.nested_iterators().last().cloned() {
        let contiguous = nest.computations().iter().all(|c| {
            c.accesses().iter().all(|access| {
                program
                    .array(&access.array_ref.array)
                    .ok()
                    .and_then(|a| access.array_ref.linear_offset(a, &program.params))
                    .map(|off| off.coefficient(&innermost).unsigned_abs() <= 1)
                    .unwrap_or(false)
            })
        });
        if contiguous {
            if let Ok(v) = mark_vectorize(&scheduled, &innermost) {
                scheduled = v;
            }
        }
    }
    scheduled
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;
    use machine::{CostModel, MachineConfig};

    fn gemm(order: &str, n: i64) -> Program {
        let l: Vec<char> = order.chars().collect();
        parse_program(&format!(
            "program gemm {{ param N = {n};
               array A[N][N]; array B[N][N]; array C[N][N];
               for {} in 0..N {{ for {} in 0..N {{ for {} in 0..N {{
                 C[i][j] += A[i][k] * B[k][j];
               }} }} }} }}",
            l[0], l[1], l[2]
        ))
        .unwrap()
    }

    #[test]
    fn polly_tiles_and_parallelizes_gemm() {
        let p = gemm("ijk", 512);
        let scheduled = polly_schedule(&p);
        let nest = scheduled.loop_nests()[0];
        // The band is tiled: 6 loops deep, tile loops outermost.
        assert_eq!(nest.nested_iterators().len(), 6);
        assert!(nest.iter.as_str().ends_with("_t"));
        // The outermost tile loop of a parallel dimension is parallelized.
        assert!(nest.schedule.parallel);
        assert!(scheduled.validate().is_ok());
    }

    #[test]
    fn polly_keeps_the_incoming_loop_order() {
        let good = polly_schedule(&gemm("ikj", 512));
        let bad = polly_schedule(&gemm("jki", 512));
        let order = |p: &Program| -> Vec<String> {
            p.loop_nests()[0]
                .nested_iterators()
                .iter()
                .map(|v| v.to_string())
                .collect()
        };
        assert_eq!(order(&good), vec!["i_t", "k_t", "j_t", "i", "k", "j"]);
        assert_eq!(order(&bad), vec!["j_t", "k_t", "i_t", "j", "k", "i"]);
        // ... and therefore its performance depends on the variant.
        let model = CostModel::new(MachineConfig::xeon_e5_2680v3(), 12);
        let t_good = model.estimate(&good).seconds;
        let t_bad = model.estimate(&bad).seconds;
        assert!(t_bad > t_good, "good {t_good}, bad {t_bad}");
    }

    #[test]
    fn polly_beats_plain_clang_on_gemm() {
        let p = gemm("ijk", 512);
        let model = CostModel::new(MachineConfig::xeon_e5_2680v3(), 12);
        let clang = model.estimate(&crate::compiler::clang_schedule(&p)).seconds;
        let polly = model.estimate(&polly_schedule(&p)).seconds;
        assert!(polly < clang);
    }

    #[test]
    fn triangular_nests_are_not_tiled_but_still_parallelized() {
        let p = parse_program(
            "program tri { param N = 256; array C[N][N];
               for i in 0..N { for j in 0..i + 1 { C[i][j] = 1.0; } } }",
        )
        .unwrap();
        let scheduled = polly_schedule(&p);
        let nest = scheduled.loop_nests()[0];
        assert_eq!(nest.nested_iterators().len(), 2);
        assert!(nest.schedule.parallel);
    }

    #[test]
    fn sequential_recurrences_stay_sequential() {
        let p = parse_program(
            "program rec { param N = 1000; array A[N];
               for i in 1..N { A[i] = A[i - 1] * 0.5; } }",
        )
        .unwrap();
        let scheduled = polly_schedule(&p);
        assert!(!scheduled.loop_nests()[0].schedule.parallel);
    }
}
