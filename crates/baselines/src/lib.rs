//! # baselines — the schedulers and frameworks the paper compares against
//!
//! The evaluation of the paper (§4, §4.3, §5) compares the daisy
//! auto-scheduler against:
//!
//! * **clang / icc** `-O3` ([`compiler`]) — no loop restructuring; clang
//!   vectorizes unit-stride innermost loops, icc additionally
//!   auto-parallelizes trivially parallel outer loops,
//! * **Polly** ([`polly`]) — a Pluto-style polyhedral scheduler: tiling of
//!   permutable bands, outer parallelization and strip-mine vectorization,
//!   applied to the loop structure *as written* (its ILP objective does not
//!   minimize strides, which is the sensitivity the paper exploits),
//! * **the Tiramisu auto-scheduler** ([`tiramisu`]) — a search over
//!   transformation sequences guided by an approximate cost model, restricted
//!   to perfectly nested parallel loops by the paper's adapter (the `X` marks
//!   in Fig. 6),
//! * **NumPy / Numba / DaCe** ([`python`]) — Python-framework execution
//!   models for the NPBench variants of the benchmarks (Fig. 9).
//!
//! All baselines return a scheduled [`loop_ir::Program`] (or a framework
//! runtime estimate) so they can be costed on the same machine model as
//! daisy.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compiler;
pub mod polly;
pub mod python;
pub mod tiramisu;

pub use compiler::{clang_schedule, icc_schedule};
pub use polly::polly_schedule;
pub use python::{dace_time, numba_time, numpy_time, python_framework_times, PythonFrameworkTimes};
pub use tiramisu::{tiramisu_schedule, TiramisuError};
