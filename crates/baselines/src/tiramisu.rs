//! A Tiramisu-auto-scheduler-like baseline.
//!
//! The paper runs the Tiramisu auto-scheduler as a standalone search (Monte
//! Carlo tree search guided by its learned cost model) through an adapter
//! that "applies the maximal loop fission criterion and restricts the
//! conversion to perfectly nested parallel loops"; benchmarks it cannot
//! convert are marked `X` in Figure 6, and the top three candidates of the
//! stochastic search are measured and the best one kept.
//!
//! This baseline mirrors that setup: maximal fission, an applicability check
//! (every resulting nest must be perfectly nested and carry a parallel loop),
//! a randomized search over transformation sequences guided by an
//! *approximate* cost model that ignores cache capacity (the learned model's
//! blind spot), and final selection of the best of the top three candidates
//! under the true machine model.

use dependence::{analyze, is_parallel_loop};
use loop_ir::nest::Node;
use loop_ir::program::Program;
use machine::{CostModel, MachineConfig};
use normalize::MaximalFission;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;
use transforms::Recipe;

use daisy::search::{apply_recipe_to_program, evaluate_recipe, EvolutionarySearch, SearchConfig};

/// Why the Tiramisu adapter rejected a program (the `X` marks in Figure 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TiramisuError {
    /// A loop nest is not perfectly nested after maximal fission.
    NotPerfectlyNested(String),
    /// A loop nest has no parallel loop at all (fully sequential kernels are
    /// outside the adapter's restriction).
    NoParallelLoop(String),
}

impl fmt::Display for TiramisuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TiramisuError::NotPerfectlyNested(nest) => {
                write!(f, "loop nest `{nest}` is not perfectly nested")
            }
            TiramisuError::NoParallelLoop(nest) => {
                write!(f, "loop nest `{nest}` has no parallel loop")
            }
        }
    }
}

impl std::error::Error for TiramisuError {}

/// A machine whose caches are effectively infinite: the approximate cost
/// model the search is guided by, standing in for the learned model's
/// insensitivity to capacity effects.
fn approximate_machine() -> MachineConfig {
    MachineConfig {
        l1_bytes: 1 << 30,
        l2_bytes: 1 << 30,
        l3_bytes: 1 << 34,
        ..MachineConfig::xeon_e5_2680v3()
    }
}

/// Runs the Tiramisu-like auto-scheduler on a program.
///
/// # Errors
/// Returns a [`TiramisuError`] when the adapter's restrictions reject the
/// program (imperfectly nested or fully sequential loop nests).
pub fn tiramisu_schedule(program: &Program, threads: usize) -> Result<Program, TiramisuError> {
    // The adapter applies maximal loop fission before conversion.
    let (fissioned, _) = MaximalFission::new().run(program);
    let graph = analyze(&fissioned);

    // Applicability: every nest must be perfectly nested and have at least
    // one parallel loop.
    for nest in fissioned.loop_nests() {
        if !nest.is_perfect_nest() {
            return Err(TiramisuError::NotPerfectlyNested(nest.iter.to_string()));
        }
        let has_parallel = nest
            .nested_iterators()
            .iter()
            .any(|iter| is_parallel_loop(&graph, iter));
        if !has_parallel {
            return Err(TiramisuError::NoParallelLoop(nest.iter.to_string()));
        }
    }

    let guide = CostModel::new(approximate_machine(), threads);
    let truth = CostModel::new(MachineConfig::xeon_e5_2680v3(), threads);
    let search = EvolutionarySearch::new(SearchConfig {
        epochs: 1,
        iterations_per_epoch: 2,
        population: 8,
        seed: 0x71AA,
    });
    let mut rng = StdRng::seed_from_u64(0x71AA);

    let mut current = fissioned.clone();
    let mut index = 0usize;
    while index < current.body.len() {
        let Node::Loop(nest) = current.body[index].clone() else {
            index += 1;
            continue;
        };
        // Candidate generation guided by the approximate model: the search
        // ranks candidates with the flawed model…
        let mut candidates: Vec<Recipe> = search.proposals(&nest);
        candidates.push(Recipe::identity());
        candidates.shuffle(&mut rng);
        let mut scored: Vec<(f64, Recipe)> = candidates
            .into_iter()
            .filter_map(|r| evaluate_recipe(&current, index, &r, &guide).map(|t| (t, r)))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        // …and the top three candidates are then measured (true model) and
        // the best one applied, as in the paper's experimental setup.
        let best = scored
            .into_iter()
            .take(3)
            .filter_map(|(_, r)| evaluate_recipe(&current, index, &r, &truth).map(|t| (t, r)))
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        match best {
            Some((_, recipe)) => {
                if let Some(next) = apply_recipe_to_program(&current, index, &recipe) {
                    let added = next.body.len() + 1 - current.body.len();
                    current = next;
                    index += added.max(1);
                } else {
                    index += 1;
                }
            }
            None => index += 1,
        }
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;

    fn gemm(order: &str, n: i64) -> Program {
        let l: Vec<char> = order.chars().collect();
        parse_program(&format!(
            "program gemm {{ param N = {n};
               array A[N][N]; array B[N][N]; array C[N][N];
               for {} in 0..N {{ for {} in 0..N {{ for {} in 0..N {{
                 C[i][j] += A[i][k] * B[k][j];
               }} }} }} }}",
            l[0], l[1], l[2]
        ))
        .unwrap()
    }

    #[test]
    fn schedules_a_perfect_parallel_nest() {
        let p = gemm("ijk", 256);
        let scheduled = tiramisu_schedule(&p, 12).unwrap();
        assert!(scheduled.validate().is_ok());
        let model = CostModel::new(MachineConfig::xeon_e5_2680v3(), 12);
        let before = model.estimate(&crate::compiler::clang_schedule(&p)).seconds;
        let after = model.estimate(&scheduled).seconds;
        assert!(after < before);
    }

    #[test]
    fn fused_statements_are_fissioned_first() {
        let p = parse_program(
            "program fused { param N = 256; scalar beta = 0.5;
               array A[N][N]; array B[N][N]; array C[N][N];
               for i in 0..N { for j in 0..N {
                 C[i][j] = C[i][j] * beta;
                 for k in 0..N { C[i][j] += A[i][k] * B[k][j]; }
               } } }",
        )
        .unwrap();
        // After maximal fission both nests are perfect, so the adapter
        // accepts the program.
        let scheduled = tiramisu_schedule(&p, 4).unwrap();
        assert_eq!(scheduled.loop_nests().len(), 2);
    }

    #[test]
    fn sequential_kernels_are_rejected() {
        // A pure time recurrence has no parallel loop anywhere.
        let p = parse_program(
            "program rec { param N = 1000; array A[N];
               for t in 1..N { A[t] = A[t - 1] * 0.5; } }",
        )
        .unwrap();
        assert_eq!(
            tiramisu_schedule(&p, 4),
            Err(TiramisuError::NoParallelLoop("t".to_string()))
        );
    }

    #[test]
    fn result_depends_on_the_incoming_variant() {
        let model = CostModel::new(MachineConfig::xeon_e5_2680v3(), 12);
        let a = model
            .estimate(&tiramisu_schedule(&gemm("ikj", 512), 12).unwrap())
            .seconds;
        let b = model
            .estimate(&tiramisu_schedule(&gemm("jki", 512), 12).unwrap())
            .seconds;
        // The search never interchanges loops, so the badly-ordered variant
        // stays slower.
        assert!(b >= a);
    }

    #[test]
    fn error_display() {
        let e = TiramisuError::NotPerfectlyNested("i".to_string());
        assert!(e.to_string().contains('i'));
    }
}
