//! `-O3` compiler baselines: clang and icc.
//!
//! A general-purpose compiler does not restructure loop nests: the loop order
//! stays exactly as written. What `-O3` does contribute is innermost-loop
//! auto-vectorization (clang and icc) and, for icc with `-parallel`,
//! conservative auto-parallelization of outer loops that carry no dependence.

use dependence::{analyze, is_parallel_loop};
use loop_ir::nest::Node;
use loop_ir::program::Program;
use loop_ir::visit::for_each_loop_mut;

/// Minimum trip count for icc's auto-parallelizer to consider a loop worth
/// spawning threads for.
const ICC_MIN_PARALLEL_TRIP: i64 = 64;

/// The clang `-O3` model: vectorize innermost loops whose accesses are unit
/// stride or loop invariant; change nothing else.
pub fn clang_schedule(program: &Program) -> Program {
    let mut out = program.clone();
    let params = out.params.clone();
    let arrays = out.arrays.clone();
    for_each_loop_mut(&mut out.body, &mut |l| {
        let is_innermost = !l.body.iter().any(|n| matches!(n, Node::Loop(_)));
        if !is_innermost || l.body.is_empty() {
            return;
        }
        let contiguous = l.body.iter().all(|n| match n {
            Node::Computation(c) => c.accesses().iter().all(|access| {
                arrays
                    .get(&access.array_ref.array)
                    .and_then(|a| access.array_ref.linear_offset(a, &params))
                    .map(|off| off.coefficient(&l.iter).unsigned_abs() <= 1)
                    .unwrap_or(false)
            }),
            _ => false,
        });
        if contiguous {
            l.schedule.vectorize = true;
        }
    });
    out
}

/// The icc `-O3 -parallel` model: clang's vectorization plus
/// auto-parallelization of the outermost loop of each nest when it carries no
/// dependence and has a large enough trip count.
pub fn icc_schedule(program: &Program) -> Program {
    let mut out = clang_schedule(program);
    let graph = analyze(program);
    let params = out.params.clone();
    for node in &mut out.body {
        if let Node::Loop(l) = node {
            let trip = l.trip_count(&params).unwrap_or(0);
            if trip >= ICC_MIN_PARALLEL_TRIP && is_parallel_loop(&graph, &l.iter) {
                l.schedule.parallel = true;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::parser::parse_program;
    use loop_ir::visit::walk_loops;
    use machine::{CostModel, MachineConfig};

    fn gemm(order: &str, n: i64) -> Program {
        let l: Vec<char> = order.chars().collect();
        parse_program(&format!(
            "program gemm {{ param N = {n};
               array A[N][N]; array B[N][N]; array C[N][N];
               for {} in 0..N {{ for {} in 0..N {{ for {} in 0..N {{
                 C[i][j] += A[i][k] * B[k][j];
               }} }} }} }}",
            l[0], l[1], l[2]
        ))
        .unwrap()
    }

    #[test]
    fn clang_vectorizes_contiguous_innermost_loops() {
        let p = gemm("ikj", 128);
        let scheduled = clang_schedule(&p);
        let loops = walk_loops(&scheduled.body);
        let j = loops.iter().find(|l| l.iter.as_str() == "j").unwrap();
        assert!(j.schedule.vectorize);
        // No loop is parallelized and the order is untouched.
        assert!(loops.iter().all(|l| !l.schedule.parallel));
        let order: Vec<String> = scheduled.loop_nests()[0]
            .nested_iterators()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(order, vec!["i", "k", "j"]);
    }

    #[test]
    fn clang_does_not_vectorize_strided_innermost_loops() {
        let p = gemm("jki", 128); // innermost i: column-major accesses
        let scheduled = clang_schedule(&p);
        let loops = walk_loops(&scheduled.body);
        let i = loops.iter().find(|l| l.iter.as_str() == "i").unwrap();
        assert!(!i.schedule.vectorize);
    }

    #[test]
    fn icc_parallelizes_clean_outer_loops() {
        let p = gemm("ikj", 128);
        let scheduled = icc_schedule(&p);
        assert!(scheduled.loop_nests()[0].schedule.parallel);
    }

    #[test]
    fn icc_does_not_parallelize_carried_outer_loops() {
        let p = parse_program(
            "program rec { param N = 1000; array A[N];
               for i in 1..N { A[i] = A[i - 1] + 1.0; } }",
        )
        .unwrap();
        let scheduled = icc_schedule(&p);
        assert!(!scheduled.loop_nests()[0].schedule.parallel);
    }

    #[test]
    fn icc_skips_tiny_loops() {
        let p = parse_program(
            "program tiny { param N = 8; array A[N];
               for i in 0..N { A[i] = 1.0; } }",
        )
        .unwrap();
        let scheduled = icc_schedule(&p);
        assert!(!scheduled.loop_nests()[0].schedule.parallel);
    }

    #[test]
    fn compiler_baselines_are_sensitive_to_loop_order() {
        // This is Figure 1 of the paper: structurally different GEMMs behave
        // very differently under a baseline compiler.
        let model = CostModel::new(MachineConfig::xeon_e5_2680v3(), 1);
        let good = model.estimate(&clang_schedule(&gemm("ikj", 512))).seconds;
        let bad = model.estimate(&clang_schedule(&gemm("jki", 512))).seconds;
        assert!(bad / good > 2.0, "bad order {bad}, good order {good}");
    }
}
