//! Execution models of the Python frameworks compared in Figure 9:
//! NumPy, Numba and DaCe.
//!
//! The figure compares capability classes rather than code generators:
//!
//! * **NumPy** executes one framework operation at a time (with temporaries),
//!   dispatches matrix products to a multi-threaded vendor BLAS, and runs
//!   everything else as single-threaded streaming kernels,
//! * **Numba** JIT-compiles the Python loops as written: no restructuring, no
//!   BLAS recognition for explicit loops, innermost vectorization only,
//! * **DaCe** converts the program to a dataflow graph: recognized matrix
//!   products become library nodes, the remaining maps are auto-parallelized
//!   and vectorized — but the loop structure inside a map stays as written.
//!
//! All three models consume the output of the NumPy-style frontend
//! ([`loop_ir::numpy`]): the lowered loop-nest program plus the trace of
//! framework-level operations.

use loop_ir::numpy::{FrameworkOp, FrameworkOpKind};
use loop_ir::program::Program;
use machine::blas::blas_call_time;
use machine::{CostModel, MachineConfig};

use daisy::idiom::detect_blas_idiom;
use loop_ir::nest::Node;

/// Per-operation dispatch overhead of the CPython interpreter + NumPy (time
/// to parse arguments, allocate the result, select the kernel).
const NUMPY_DISPATCH_OVERHEAD: f64 = 2.0e-6;

/// Estimated runtimes of the three frameworks for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct PythonFrameworkTimes {
    /// NumPy runtime in seconds.
    pub numpy: f64,
    /// Numba runtime in seconds.
    pub numba: f64,
    /// DaCe runtime in seconds.
    pub dace: f64,
}

/// The NumPy model: per framework operation, a dispatch overhead plus either
/// a vendor-BLAS call (matrix products) or a single-threaded streaming kernel
/// that materializes its output (and therefore moves three operands worth of
/// data for an elementwise operation).
pub fn numpy_time(program: &Program, ops: &[FrameworkOp], machine: &MachineConfig) -> f64 {
    let mut total = 0.0;
    for op in ops {
        let invocations = op.invocations.max(1) as f64;
        let elements = op.output_elements.max(1) as f64;
        let per_call = match op.kind {
            FrameworkOpKind::MatMul => {
                // NumPy dispatches to a multi-threaded BLAS. Estimate the
                // contraction length from the program's parameters is not
                // possible per-op, so assume a square contraction of the
                // output dimension (exact flop counts are recovered by the
                // figure harness from the lowered program when needed).
                let k = elements.sqrt().max(1.0);
                let flops = 2.0 * elements * k;
                let bytes = 3.0 * 8.0 * elements;
                blas_call_time(machine, flops, bytes, machine.cores)
            }
            FrameworkOpKind::Elementwise => {
                // read two operands, write one temporary, single thread.
                let bytes = 3.0 * 8.0 * elements;
                bytes / machine.dram_bandwidth
            }
            FrameworkOpKind::Reduction => {
                let bytes = 8.0 * elements;
                bytes / machine.dram_bandwidth
            }
        };
        total += invocations * (NUMPY_DISPATCH_OVERHEAD + per_call);
    }
    let _ = program;
    total
}

/// The Numba model: the lowered loops compiled as written, innermost
/// vectorization only, single threaded (no `prange` in the benchmark
/// sources), no BLAS recognition.
pub fn numba_time(program: &Program, machine: &MachineConfig) -> f64 {
    let scheduled = crate::compiler::clang_schedule(program);
    CostModel::new(machine.clone(), 1)
        .estimate(&scheduled)
        .seconds
}

/// The DaCe model: recognized matrix-product nests become library nodes,
/// remaining top-level maps are parallelized across cores and vectorized.
pub fn dace_time(program: &Program, machine: &MachineConfig, threads: usize) -> f64 {
    let mut scheduled = crate::compiler::clang_schedule(program);
    let graph = dependence::analyze(&scheduled);
    let body = scheduled.body.clone();
    scheduled.body = body
        .into_iter()
        .map(|node| match node {
            Node::Loop(nest) => {
                if let Some(call) = detect_blas_idiom(&scheduled, &nest) {
                    Node::Call(call)
                } else {
                    // Auto-parallelize the outermost dependence-free loop.
                    let mut out = nest;
                    if dependence::is_parallel_loop(&graph, &out.iter) {
                        out.schedule.parallel = true;
                    }
                    Node::Loop(out)
                }
            }
            other => other,
        })
        .collect();
    CostModel::new(machine.clone(), threads)
        .estimate(&scheduled)
        .seconds
}

/// Convenience: all three framework estimates for one lowered benchmark.
pub fn python_framework_times(
    program: &Program,
    ops: &[FrameworkOp],
    machine: &MachineConfig,
    threads: usize,
) -> PythonFrameworkTimes {
    PythonFrameworkTimes {
        numpy: numpy_time(program, ops, machine),
        numba: numba_time(program, machine),
        dace: dace_time(program, machine, threads),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::expr::{cst, var, Var};
    use loop_ir::numpy::{ArrayView, NpExpr, NpStmt, NumpyProgram, Range};

    /// NPBench-style GEMM: `C *= beta; C += alpha * (A @ B)`.
    fn gemm_py(n: i64) -> (Program, Vec<FrameworkOp>) {
        let p = NumpyProgram::new("gemm_py")
            .param("NI", n)
            .param("NJ", n)
            .param("NK", n)
            .scalar("alpha", 1.5)
            .scalar("beta", 1.2)
            .array("A", &["NI", "NK"])
            .array("B", &["NK", "NJ"])
            .array("C", &["NI", "NJ"]);
        let a = ArrayView::whole("A", &p.extents("A").unwrap());
        let b = ArrayView::whole("B", &p.extents("B").unwrap());
        let c = ArrayView::whole("C", &p.extents("C").unwrap());
        p.stmt(NpStmt::Assign {
            target: c.clone(),
            value: NpExpr::View(c.clone()).mul(NpExpr::Param(Var::new("beta"))),
        })
        .stmt(NpStmt::AugAssign {
            target: c,
            op: loop_ir::scalar::BinOp::Add,
            value: NpExpr::View(a).matmul(NpExpr::View(b)),
        })
        .lower()
        .unwrap()
    }

    /// NPBench-style SYRK prologue + update written with explicit Python
    /// loops and triangular slices (no BLAS operator available).
    fn syrk_py(n: i64, m: i64) -> (Program, Vec<FrameworkOp>) {
        let p = NumpyProgram::new("syrk_py")
            .param("N", n)
            .param("M", m)
            .scalar("alpha", 1.5)
            .scalar("beta", 1.2)
            .array("A", &["N", "M"])
            .array("C", &["N", "N"]);
        let scale = NpStmt::AugAssign {
            target: ArrayView::sliced(
                "C",
                vec![
                    Range::index(var("i")),
                    Range::new(cst(0), var("i") + cst(1)),
                ],
            ),
            op: loop_ir::scalar::BinOp::Mul,
            value: NpExpr::Param(Var::new("beta")),
        };
        let update = NpStmt::AugAssign {
            target: ArrayView::sliced(
                "C",
                vec![
                    Range::index(var("i")),
                    Range::new(cst(0), var("i") + cst(1)),
                ],
            ),
            op: loop_ir::scalar::BinOp::Add,
            value: NpExpr::View(ArrayView::sliced(
                "A",
                vec![Range::index(var("i")), Range::new(cst(0), var("M"))],
            ))
            .matmul(NpExpr::View(
                ArrayView::sliced(
                    "A",
                    vec![
                        Range::new(cst(0), var("i") + cst(1)),
                        Range::new(cst(0), var("M")),
                    ],
                )
                .t(),
            )),
        };
        p.stmt(NpStmt::For {
            iter: Var::new("i"),
            lower: cst(0),
            upper: var("N"),
            body: vec![scale, update],
        })
        .lower()
        .unwrap()
    }

    #[test]
    fn numpy_benefits_from_blas_on_gemm() {
        let machine = MachineConfig::xeon_e5_2680v3();
        let (program, ops) = gemm_py(1000);
        let times = python_framework_times(&program, &ops, &machine, 12);
        // NumPy (with BLAS) clearly beats Numba (explicit loops, no BLAS).
        assert!(times.numpy < times.numba);
        // DaCe recognizes the matmul nest and is at least as good as Numba.
        assert!(times.dace <= times.numba);
    }

    #[test]
    fn dace_recognizes_the_lowered_matmul() {
        let (program, _) = gemm_py(512);
        let machine = MachineConfig::xeon_e5_2680v3();
        let dace = dace_time(&program, &machine, 12);
        let numba = numba_time(&program, &machine);
        assert!(dace < numba);
    }

    #[test]
    fn frameworks_without_custom_operators_fall_behind_on_syrk() {
        // The paper observes that for syrk/syr2k no framework provides a
        // custom operator, so the explicit-loop fallbacks dominate the cost.
        let machine = MachineConfig::xeon_e5_2680v3();
        let (program, ops) = syrk_py(400, 300);
        let times = python_framework_times(&program, &ops, &machine, 12);
        assert!(times.numpy > 0.0);
        assert!(times.numba > 0.0);
        assert!(times.dace > 0.0);
    }

    #[test]
    fn numpy_dispatch_overhead_scales_with_invocations() {
        let machine = MachineConfig::xeon_e5_2680v3();
        let few = vec![FrameworkOp {
            kind: FrameworkOpKind::Elementwise,
            invocations: 1,
            output_elements: 1000,
        }];
        let many = vec![FrameworkOp {
            kind: FrameworkOpKind::Elementwise,
            invocations: 100_000,
            output_elements: 10,
        }];
        let p = gemm_py(8).0;
        assert!(numpy_time(&p, &many, &machine) > numpy_time(&p, &few, &machine) * 100.0);
    }
}
