//! A C-like pretty printer for programs and loop nests.
//!
//! The output mirrors the pseudocode style the paper uses in its figures and
//! round-trips through the textual frontend in [`crate::parser`].

use std::fmt::Write as _;

use crate::nest::{Loop, Node};
use crate::program::Program;

/// Pretty-prints a whole program, including its declarations.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {} {{", program.name);
    for (name, value) in &program.params {
        let _ = writeln!(out, "  param {name} = {value};");
    }
    for (name, value) in &program.scalar_params {
        let _ = writeln!(out, "  scalar {name} = {value};");
    }
    for array in program.arrays.values() {
        let mut dims = String::new();
        for d in &array.dims {
            let _ = write!(dims, "[{d}]");
        }
        let _ = writeln!(out, "  array {}{};", array.name, dims);
    }
    for node in &program.body {
        print_node(node, 1, &mut out);
    }
    out.push_str("}\n");
    out
}

/// Pretty-prints a sequence of nodes (without program declarations).
pub fn print_nodes(nodes: &[Node]) -> String {
    let mut out = String::new();
    for node in nodes {
        print_node(node, 0, &mut out);
    }
    out
}

/// Pretty-prints a single loop nest.
pub fn print_loop(l: &Loop) -> String {
    let mut out = String::new();
    print_node(&Node::Loop(l.clone()), 0, &mut out);
    out
}

fn print_node(node: &Node, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match node {
        Node::Loop(l) => {
            let mut annotations = Vec::new();
            if l.schedule.parallel {
                annotations.push("parallel".to_string());
            }
            if l.schedule.vectorize {
                annotations.push("simd".to_string());
            }
            if l.schedule.unroll > 1 {
                annotations.push(format!("unroll({})", l.schedule.unroll));
            }
            if !annotations.is_empty() {
                let _ = writeln!(out, "{pad}#pragma {}", annotations.join(" "));
            }
            let step = if l.step == 1 {
                format!("{} += 1", l.iter)
            } else {
                format!("{} += {}", l.iter, l.step)
            };
            let _ = writeln!(
                out,
                "{pad}for ({iter} = {lo}; {iter} < {hi}; {step}) {{",
                iter = l.iter,
                lo = l.lower,
                hi = l.upper,
            );
            for n in &l.body {
                print_node(n, indent + 1, out);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Node::Computation(c) => {
            let _ = writeln!(out, "{pad}{c};  // {}", c.name);
        }
        Node::Call(call) => {
            let _ = writeln!(out, "{pad}{call};");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{cst, var};
    use crate::nest::{for_loop, Computation, LoopSchedule};
    use crate::prelude::*;

    fn sample() -> Program {
        let s1 = Computation::reduction(
            "S1",
            ArrayRef::new("C", vec![var("i"), var("j")]),
            BinOp::Add,
            load("A", vec![var("i"), var("k")]) * load("B", vec![var("k"), var("j")]),
        );
        Program::builder("gemm")
            .param("NI", 4)
            .param("NJ", 4)
            .param("NK", 4)
            .array("A", &["NI", "NK"])
            .array("B", &["NK", "NJ"])
            .array("C", &["NI", "NJ"])
            .node(for_loop(
                "i",
                cst(0),
                var("NI"),
                vec![for_loop(
                    "j",
                    cst(0),
                    var("NJ"),
                    vec![for_loop(
                        "k",
                        cst(0),
                        var("NK"),
                        vec![Node::Computation(s1)],
                    )],
                )],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn program_printer_includes_declarations() {
        let text = print_program(&sample());
        assert!(text.contains("program gemm {"));
        assert!(text.contains("param NI = 4;"));
        assert!(text.contains("array A[NI][NK];"));
        assert!(text.contains("for (i = 0; i < NI; i += 1) {"));
        assert!(text.contains("C[i][j] += (A[i][k] * B[k][j]);"));
    }

    #[test]
    fn indentation_follows_nesting() {
        let text = print_program(&sample());
        assert!(text.contains("\n      for (k = 0"));
        assert!(text.contains("\n        C[i][j]"));
    }

    #[test]
    fn schedule_annotations_are_printed() {
        let mut p = sample();
        if let Node::Loop(l) = &mut p.body[0] {
            l.schedule = LoopSchedule::parallel();
            if let Node::Loop(inner) = &mut l.body[0] {
                inner.schedule.vectorize = true;
                inner.schedule.unroll = 4;
            }
        }
        let text = print_program(&p);
        assert!(text.contains("#pragma parallel"));
        assert!(text.contains("#pragma simd unroll(4)"));
    }

    #[test]
    fn node_printer_without_program() {
        let p = sample();
        let text = print_nodes(&p.body);
        assert!(text.starts_with("for (i = 0"));
        let l = p.loop_nests()[0];
        assert_eq!(print_loop(l), text);
    }

    #[test]
    fn strided_loop_prints_step() {
        let l = Loop {
            step: 32,
            ..match for_loop("i", cst(0), cst(128), vec![]) {
                Node::Loop(l) => l,
                _ => unreachable!(),
            }
        };
        assert!(print_loop(&l).contains("i += 32"));
    }
}
