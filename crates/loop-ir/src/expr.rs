//! Symbolic integer expressions used for loop bounds and array subscripts.
//!
//! The paper's lifted representation keeps loop iterators, domains and data
//! accesses as symbolic expressions (§3.1). [`Expr`] is that expression
//! language: integer arithmetic over loop iterators and symbolic size
//! parameters. [`AffineExpr`] is its affine normal form, which is what the
//! dependence analysis and the stride computation operate on.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An interned-by-value variable name: a loop iterator or a symbolic
/// parameter such as an array extent.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Var(String);

impl Var {
    /// Creates a variable with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Var(name.into())
    }

    /// Returns the variable name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Var {
    fn from(value: &str) -> Self {
        Var::new(value)
    }
}

impl From<String> for Var {
    fn from(value: String) -> Self {
        Var(value)
    }
}

impl From<&Var> for Var {
    fn from(value: &Var) -> Self {
        value.clone()
    }
}

/// A symbolic integer expression.
///
/// Expressions appear as loop bounds and as array subscripts. They are
/// deliberately small: the normalization passes only require affine
/// subscripts, but `Div`/`Mod`/`Min`/`Max` are kept so that tiled loops and
/// boundary conditions can be represented faithfully.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// An integer literal.
    Const(i64),
    /// A loop iterator or symbolic parameter.
    Var(Var),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two expressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Euclidean (floor) division.
    Div(Box<Expr>, Box<Expr>),
    /// Euclidean remainder.
    Mod(Box<Expr>, Box<Expr>),
    /// Minimum of two expressions.
    Min(Box<Expr>, Box<Expr>),
    /// Maximum of two expressions.
    Max(Box<Expr>, Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
}

/// Builds a variable reference expression.
///
/// ```
/// use loop_ir::expr::{var, Expr, Var};
/// assert_eq!(var("i"), Expr::Var(Var::new("i")));
/// ```
pub fn var(name: impl Into<Var>) -> Expr {
    Expr::Var(name.into())
}

/// Builds an integer constant expression.
///
/// ```
/// use loop_ir::expr::{cst, Expr};
/// assert_eq!(cst(4), Expr::Const(4));
/// ```
pub fn cst(value: i64) -> Expr {
    Expr::Const(value)
}

impl Expr {
    /// Evaluates the expression under the given variable bindings.
    ///
    /// Returns `None` if a variable is unbound or a division by zero occurs.
    pub fn eval(&self, bindings: &BTreeMap<Var, i64>) -> Option<i64> {
        match self {
            Expr::Const(c) => Some(*c),
            Expr::Var(v) => bindings.get(v).copied(),
            Expr::Add(a, b) => Some(a.eval(bindings)? + b.eval(bindings)?),
            Expr::Sub(a, b) => Some(a.eval(bindings)? - b.eval(bindings)?),
            Expr::Mul(a, b) => Some(a.eval(bindings)? * b.eval(bindings)?),
            Expr::Div(a, b) => {
                let d = b.eval(bindings)?;
                if d == 0 {
                    None
                } else {
                    Some(a.eval(bindings)?.div_euclid(d))
                }
            }
            Expr::Mod(a, b) => {
                let d = b.eval(bindings)?;
                if d == 0 {
                    None
                } else {
                    Some(a.eval(bindings)?.rem_euclid(d))
                }
            }
            Expr::Min(a, b) => Some(a.eval(bindings)?.min(b.eval(bindings)?)),
            Expr::Max(a, b) => Some(a.eval(bindings)?.max(b.eval(bindings)?)),
            Expr::Neg(a) => Some(-a.eval(bindings)?),
        }
    }

    /// Collects all variables referenced by the expression.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Neg(a) => a.collect_vars(out),
        }
    }

    /// Returns true if the expression references the given variable.
    pub fn uses_var(&self, v: &Var) -> bool {
        match self {
            Expr::Const(_) => false,
            Expr::Var(w) => w == v,
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Mod(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => a.uses_var(v) || b.uses_var(v),
            Expr::Neg(a) => a.uses_var(v),
        }
    }

    /// Substitutes every occurrence of `v` by `replacement`.
    pub fn substitute(&self, v: &Var, replacement: &Expr) -> Expr {
        match self {
            Expr::Const(_) => self.clone(),
            Expr::Var(w) => {
                if w == v {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Add(a, b) => Expr::Add(
                Box::new(a.substitute(v, replacement)),
                Box::new(b.substitute(v, replacement)),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(a.substitute(v, replacement)),
                Box::new(b.substitute(v, replacement)),
            ),
            Expr::Mul(a, b) => Expr::Mul(
                Box::new(a.substitute(v, replacement)),
                Box::new(b.substitute(v, replacement)),
            ),
            Expr::Div(a, b) => Expr::Div(
                Box::new(a.substitute(v, replacement)),
                Box::new(b.substitute(v, replacement)),
            ),
            Expr::Mod(a, b) => Expr::Mod(
                Box::new(a.substitute(v, replacement)),
                Box::new(b.substitute(v, replacement)),
            ),
            Expr::Min(a, b) => Expr::Min(
                Box::new(a.substitute(v, replacement)),
                Box::new(b.substitute(v, replacement)),
            ),
            Expr::Max(a, b) => Expr::Max(
                Box::new(a.substitute(v, replacement)),
                Box::new(b.substitute(v, replacement)),
            ),
            Expr::Neg(a) => Expr::Neg(Box::new(a.substitute(v, replacement))),
        }
    }

    /// Substitutes every variable that has a binding with its constant value
    /// and simplifies the result. Used to fold symbolic size parameters away
    /// before affine analysis.
    pub fn fold_params(&self, bindings: &BTreeMap<Var, i64>) -> Expr {
        let mut out = self.clone();
        for v in self.vars() {
            if let Some(value) = bindings.get(&v) {
                out = out.substitute(&v, &Expr::Const(*value));
            }
        }
        out.simplify()
    }

    /// Performs constant folding and identity simplifications.
    pub fn simplify(&self) -> Expr {
        match self {
            Expr::Const(_) | Expr::Var(_) => self.clone(),
            Expr::Add(a, b) => match (a.simplify(), b.simplify()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x + y),
                (Expr::Const(0), rhs) => rhs,
                (lhs, Expr::Const(0)) => lhs,
                (lhs, rhs) => Expr::Add(Box::new(lhs), Box::new(rhs)),
            },
            Expr::Sub(a, b) => match (a.simplify(), b.simplify()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x - y),
                (lhs, Expr::Const(0)) => lhs,
                (lhs, rhs) if lhs == rhs => Expr::Const(0),
                (lhs, rhs) => Expr::Sub(Box::new(lhs), Box::new(rhs)),
            },
            Expr::Mul(a, b) => match (a.simplify(), b.simplify()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x * y),
                (Expr::Const(0), _) | (_, Expr::Const(0)) => Expr::Const(0),
                (Expr::Const(1), rhs) => rhs,
                (lhs, Expr::Const(1)) => lhs,
                (lhs, rhs) => Expr::Mul(Box::new(lhs), Box::new(rhs)),
            },
            Expr::Div(a, b) => match (a.simplify(), b.simplify()) {
                (Expr::Const(x), Expr::Const(y)) if y != 0 => Expr::Const(x.div_euclid(y)),
                (lhs, Expr::Const(1)) => lhs,
                (lhs, rhs) => Expr::Div(Box::new(lhs), Box::new(rhs)),
            },
            Expr::Mod(a, b) => match (a.simplify(), b.simplify()) {
                (Expr::Const(x), Expr::Const(y)) if y != 0 => Expr::Const(x.rem_euclid(y)),
                (lhs, rhs) => Expr::Mod(Box::new(lhs), Box::new(rhs)),
            },
            Expr::Min(a, b) => match (a.simplify(), b.simplify()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.min(y)),
                (lhs, rhs) if lhs == rhs => lhs,
                (lhs, rhs) => Expr::Min(Box::new(lhs), Box::new(rhs)),
            },
            Expr::Max(a, b) => match (a.simplify(), b.simplify()) {
                (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.max(y)),
                (lhs, rhs) if lhs == rhs => lhs,
                (lhs, rhs) => Expr::Max(Box::new(lhs), Box::new(rhs)),
            },
            Expr::Neg(a) => match a.simplify() {
                Expr::Const(x) => Expr::Const(-x),
                Expr::Neg(inner) => *inner,
                other => Expr::Neg(Box::new(other)),
            },
        }
    }

    /// Attempts to convert the expression into its affine normal form.
    ///
    /// Returns `None` for non-affine expressions such as `i * j` or `i / 2`.
    pub fn as_affine(&self) -> Option<AffineExpr> {
        match self {
            Expr::Const(c) => Some(AffineExpr::constant(*c)),
            Expr::Var(v) => Some(AffineExpr::var(v.clone())),
            Expr::Add(a, b) => Some(a.as_affine()? + b.as_affine()?),
            Expr::Sub(a, b) => Some(a.as_affine()? - b.as_affine()?),
            Expr::Neg(a) => Some(-a.as_affine()?),
            Expr::Mul(a, b) => {
                let la = a.as_affine()?;
                let lb = b.as_affine()?;
                if let Some(c) = la.as_constant() {
                    Some(lb.scaled(c))
                } else {
                    lb.as_constant().map(|c| la.scaled(c))
                }
            }
            Expr::Div(_, _) | Expr::Mod(_, _) | Expr::Min(_, _) | Expr::Max(_, _) => None,
        }
    }

    /// Returns `Some` constant value if the expression is a literal after
    /// simplification.
    pub fn as_const(&self) -> Option<i64> {
        match self.simplify() {
            Expr::Const(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Mod(a, b) => write!(f, "({a} % {b})"),
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

impl From<i64> for Expr {
    fn from(value: i64) -> Self {
        Expr::Const(value)
    }
}

impl From<Var> for Expr {
    fn from(value: Var) -> Self {
        Expr::Var(value)
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

/// Affine normal form of an [`Expr`]: a sum of integer-scaled variables plus
/// a constant, `c0 + c1*v1 + c2*v2 + …`.
///
/// The dependence tests and the stride cost of the normalization pass operate
/// on this form because coefficients of loop iterators are exactly the access
/// strides along those iterators.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct AffineExpr {
    terms: BTreeMap<Var, i64>,
    constant: i64,
}

impl AffineExpr {
    /// The affine expression `c`.
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The affine expression `1 * v`.
    pub fn var(v: Var) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(v, 1);
        AffineExpr { terms, constant: 0 }
    }

    /// Builds an affine expression from explicit terms and a constant.
    pub fn from_terms(terms: impl IntoIterator<Item = (Var, i64)>, constant: i64) -> Self {
        let mut out = AffineExpr::constant(constant);
        for (v, c) in terms {
            out.add_term(v, c);
        }
        out
    }

    fn add_term(&mut self, v: Var, c: i64) {
        let entry = self.terms.entry(v).or_insert(0);
        *entry += c;
        if *entry == 0 {
            // Keep the map free of zero coefficients so equality is canonical.
            let key = self
                .terms
                .iter()
                .find(|(_, coeff)| **coeff == 0)
                .map(|(k, _)| k.clone());
            if let Some(key) = key {
                self.terms.remove(&key);
            }
        }
    }

    /// Returns the constant offset.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// Returns the coefficient of `v` (zero if absent).
    pub fn coefficient(&self, v: &Var) -> i64 {
        self.terms.get(v).copied().unwrap_or(0)
    }

    /// Iterates over the non-zero terms in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (&Var, i64)> {
        self.terms.iter().map(|(v, c)| (v, *c))
    }

    /// Returns the set of variables with non-zero coefficients.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.terms.keys().cloned().collect()
    }

    /// Returns `Some(c)` if the expression is the constant `c`.
    pub fn as_constant(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// Multiplies every coefficient and the constant by `factor`.
    pub fn scaled(&self, factor: i64) -> Self {
        if factor == 0 {
            return AffineExpr::constant(0);
        }
        AffineExpr {
            terms: self
                .terms
                .iter()
                .map(|(v, c)| (v.clone(), c * factor))
                .collect(),
            constant: self.constant * factor,
        }
    }

    /// Evaluates the affine expression under the given bindings.
    pub fn eval(&self, bindings: &BTreeMap<Var, i64>) -> Option<i64> {
        let mut acc = self.constant;
        for (v, c) in &self.terms {
            acc += c * bindings.get(v).copied()?;
        }
        Some(acc)
    }

    /// Converts back into a general [`Expr`].
    pub fn to_expr(&self) -> Expr {
        let mut acc = Expr::Const(self.constant);
        for (v, c) in &self.terms {
            let term = if *c == 1 {
                Expr::Var(v.clone())
            } else {
                Expr::Mul(Box::new(Expr::Const(*c)), Box::new(Expr::Var(v.clone())))
            };
            acc = Expr::Add(Box::new(acc), Box::new(term));
        }
        acc.simplify()
    }
}

impl Add for AffineExpr {
    type Output = AffineExpr;
    fn add(self, rhs: AffineExpr) -> AffineExpr {
        let mut out = self;
        out.constant += rhs.constant;
        for (v, c) in rhs.terms {
            out.add_term(v, c);
        }
        out
    }
}

impl Sub for AffineExpr {
    type Output = AffineExpr;
    fn sub(self, rhs: AffineExpr) -> AffineExpr {
        self + (-rhs)
    }
}

impl Neg for AffineExpr {
    type Output = AffineExpr;
    fn neg(self) -> AffineExpr {
        self.scaled(-1)
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                if *c == 1 {
                    write!(f, "{v}")?;
                } else {
                    write!(f, "{c}*{v}")?;
                }
                first = false;
            } else if *c >= 0 {
                write!(f, " + {c}*{v}")?;
            } else {
                write!(f, " - {}*{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(pairs: &[(&str, i64)]) -> BTreeMap<Var, i64> {
        pairs.iter().map(|(k, v)| (Var::new(*k), *v)).collect()
    }

    #[test]
    fn eval_basic_arithmetic() {
        let e = (var("i") + cst(3)) * cst(2) - var("j");
        assert_eq!(e.eval(&bind(&[("i", 5), ("j", 4)])), Some(12));
    }

    #[test]
    fn eval_unbound_variable_is_none() {
        assert_eq!(var("i").eval(&BTreeMap::new()), None);
    }

    #[test]
    fn eval_division_by_zero_is_none() {
        let e = Expr::Div(Box::new(cst(4)), Box::new(cst(0)));
        assert_eq!(e.eval(&BTreeMap::new()), None);
    }

    #[test]
    fn eval_min_max_mod() {
        let e = Expr::Min(Box::new(var("i")), Box::new(cst(10)));
        assert_eq!(e.eval(&bind(&[("i", 12)])), Some(10));
        let e = Expr::Max(Box::new(var("i")), Box::new(cst(10)));
        assert_eq!(e.eval(&bind(&[("i", 12)])), Some(12));
        let e = Expr::Mod(Box::new(var("i")), Box::new(cst(5)));
        assert_eq!(e.eval(&bind(&[("i", 12)])), Some(2));
    }

    #[test]
    fn simplify_constant_folds() {
        let e = (cst(2) + cst(3)) * var("i");
        assert_eq!(
            e.simplify(),
            Expr::Mul(Box::new(cst(5)), Box::new(var("i")))
        );
    }

    #[test]
    fn simplify_identities() {
        assert_eq!((var("i") + cst(0)).simplify(), var("i"));
        assert_eq!((var("i") * cst(1)).simplify(), var("i"));
        assert_eq!((var("i") * cst(0)).simplify(), cst(0));
        assert_eq!((var("i") - var("i")).simplify(), cst(0));
        assert_eq!((-(-var("i"))).simplify(), var("i"));
    }

    #[test]
    fn vars_are_collected() {
        let e = var("i") * var("NJ") + var("j");
        let vars = e.vars();
        assert!(vars.contains(&Var::new("i")));
        assert!(vars.contains(&Var::new("j")));
        assert!(vars.contains(&Var::new("NJ")));
        assert_eq!(vars.len(), 3);
    }

    #[test]
    fn substitution_replaces_all_occurrences() {
        let e = var("i") + var("i") * cst(2);
        let s = e.substitute(&Var::new("i"), &cst(3));
        assert_eq!(s.eval(&BTreeMap::new()), Some(9));
    }

    #[test]
    fn affine_conversion_of_affine_expression() {
        let e = var("i") * cst(4) + var("j") - cst(7);
        let aff = e.as_affine().expect("affine");
        assert_eq!(aff.coefficient(&Var::new("i")), 4);
        assert_eq!(aff.coefficient(&Var::new("j")), 1);
        assert_eq!(aff.constant_part(), -7);
    }

    #[test]
    fn affine_conversion_rejects_products_of_variables() {
        assert!((var("i") * var("j")).as_affine().is_none());
        let div = Expr::Div(Box::new(var("i")), Box::new(cst(2)));
        assert!(div.as_affine().is_none());
    }

    #[test]
    fn affine_addition_cancels_terms() {
        let a = (var("i") - var("j")).as_affine().unwrap();
        let b = var("j").as_affine().unwrap();
        let sum = a + b;
        assert_eq!(sum.coefficient(&Var::new("j")), 0);
        assert_eq!(sum.vars().len(), 1);
    }

    #[test]
    fn affine_round_trip_through_expr() {
        let e = var("i") * cst(3) + var("k") + cst(5);
        let aff = e.as_affine().unwrap();
        let back = aff.to_expr();
        let bindings = bind(&[("i", 2), ("k", 11)]);
        assert_eq!(e.eval(&bindings), back.eval(&bindings));
    }

    #[test]
    fn affine_eval_matches_expr_eval() {
        let e = var("i") * cst(100) + var("j") * cst(-3) + cst(17);
        let aff = e.as_affine().unwrap();
        let bindings = bind(&[("i", 7), ("j", 13)]);
        assert_eq!(aff.eval(&bindings), e.eval(&bindings));
    }

    #[test]
    fn display_round_trips_visually() {
        let e = var("i") * cst(2) + cst(1);
        assert_eq!(format!("{e}"), "((i * 2) + 1)");
        let aff = e.as_affine().unwrap();
        assert_eq!(format!("{aff}"), "2*i + 1");
    }

    #[test]
    fn scaled_by_zero_is_constant_zero() {
        let aff = var("i").as_affine().unwrap().scaled(0);
        assert_eq!(aff, AffineExpr::constant(0));
    }

    #[test]
    fn uses_var_detects_presence() {
        let e = var("i") + var("j") * cst(2);
        assert!(e.uses_var(&Var::new("i")));
        assert!(e.uses_var(&Var::new("j")));
        assert!(!e.uses_var(&Var::new("k")));
    }
}
