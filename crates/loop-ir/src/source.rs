//! Emits programs back into the textual mini-language of [`crate::parser`].
//!
//! The C-like pretty printer in [`crate::printer`] targets the pseudocode
//! style of the paper's figures and does *not* round-trip — `for (i = 0; …)`
//! headers are not part of the frontend grammar. This module is the inverse
//! of the parser instead: [`to_source`] produces a `program name { … }`
//! definition that [`crate::parser::parse_program`] accepts, which is how
//! the fuzz corpus serializes generated programs as plain text.
//!
//! Not every IR value has a source form. Constructs the grammar cannot
//! express — [`ScalarExpr::Select`], [`Node::Call`], `min`/`max` in index
//! expressions, unroll annotations, `Min`/`Div` reductions — are reported
//! as [`IrError::Invalid`] rather than silently mangled. Within the
//! expressible subset the round trip is exact up to statement names (the
//! parser renames statements `S0, S1, …` in program order): emitting
//! programs whose statements already follow that convention round-trips to
//! a structurally identical program, as the tests pin down.

use std::fmt::Write as _;

use crate::error::{IrError, Result};
use crate::expr::Expr;
use crate::nest::{Computation, Node};
use crate::program::Program;
use crate::scalar::{BinOp, ScalarExpr, UnaryOp};

/// Renders `program` in the textual mini-language accepted by
/// [`crate::parser::parse_program`].
pub fn to_source(program: &Program) -> Result<String> {
    let mut out = String::new();
    let _ = writeln!(out, "program {} {{", program.name);
    for (name, value) in &program.params {
        let _ = writeln!(out, "  param {name} = {value};");
    }
    for (name, value) in &program.scalar_params {
        let _ = writeln!(out, "  scalar {name} = {};", float(*value)?);
    }
    for array in program.arrays.values() {
        let mut dims = String::new();
        for d in &array.dims {
            let _ = write!(dims, "[{}]", index_expr(d)?);
        }
        let _ = writeln!(out, "  array {}{};", array.name, dims);
    }
    for node in &program.body {
        node_source(node, 1, &mut out)?;
    }
    out.push_str("}\n");
    Ok(out)
}

fn node_source(node: &Node, indent: usize, out: &mut String) -> Result<()> {
    let pad = "  ".repeat(indent);
    match node {
        Node::Loop(l) => {
            if l.schedule.unroll > 1 {
                return Err(IrError::Invalid(format!(
                    "loop {}: unroll annotations have no source form",
                    l.iter
                )));
            }
            let mut pragma = Vec::new();
            if l.schedule.parallel {
                pragma.push("parallel");
            }
            if l.schedule.vectorize {
                pragma.push("simd");
            }
            if !pragma.is_empty() {
                let _ = writeln!(out, "{pad}#pragma {}", pragma.join(" "));
            }
            let step = if l.step == 1 {
                String::new()
            } else {
                format!(" step {}", l.step)
            };
            let _ = writeln!(
                out,
                "{pad}for {} in {}..{}{step} {{",
                l.iter,
                index_expr(&l.lower)?,
                index_expr(&l.upper)?,
            );
            for n in &l.body {
                node_source(n, indent + 1, out)?;
            }
            let _ = writeln!(out, "{pad}}}");
            Ok(())
        }
        Node::Computation(c) => {
            let _ = writeln!(out, "{pad}{};", comp_source(c)?);
            Ok(())
        }
        Node::Call(call) => Err(IrError::Invalid(format!(
            "library call {call} has no source form"
        ))),
    }
}

fn comp_source(c: &Computation) -> Result<String> {
    let mut target = c.target.array.to_string();
    for idx in &c.target.indices {
        let _ = write!(target, "[{}]", index_expr(idx)?);
    }
    let op = match c.reduction {
        None => "=",
        Some(BinOp::Add) => "+=",
        Some(BinOp::Sub) => "-=",
        Some(BinOp::Mul) => "*=",
        Some(BinOp::Div) => "/=",
        Some(op) => {
            return Err(IrError::Invalid(format!(
                "reduction operator {op} has no source form"
            )))
        }
    };
    Ok(format!("{target} {op} {}", scalar_expr(&c.value)?))
}

/// Index expressions: the parser grammar covers `+ - * / %`, unary minus,
/// integers, identifiers and parentheses — but not `min`/`max`.
fn index_expr(e: &Expr) -> Result<String> {
    match e {
        Expr::Const(c) => Ok(c.to_string()),
        Expr::Var(v) => Ok(v.to_string()),
        Expr::Add(a, b) => Ok(format!("({} + {})", index_expr(a)?, index_expr(b)?)),
        Expr::Sub(a, b) => Ok(format!("({} - {})", index_expr(a)?, index_expr(b)?)),
        Expr::Mul(a, b) => Ok(format!("({} * {})", index_expr(a)?, index_expr(b)?)),
        Expr::Div(a, b) => Ok(format!("({} / {})", index_expr(a)?, index_expr(b)?)),
        Expr::Mod(a, b) => Ok(format!("({} % {})", index_expr(a)?, index_expr(b)?)),
        Expr::Neg(a) => Ok(format!("(-{})", index_expr(a)?)),
        Expr::Min(_, _) | Expr::Max(_, _) => Err(IrError::Invalid(format!(
            "index expression {e} has no source form (min/max are scalar-only)"
        ))),
    }
}

fn scalar_expr(e: &ScalarExpr) -> Result<String> {
    match e {
        ScalarExpr::Load(r) => {
            let mut s = r.array.to_string();
            for idx in &r.indices {
                let _ = write!(s, "[{}]", index_expr(idx)?);
            }
            Ok(s)
        }
        ScalarExpr::Const(c) => float(*c),
        ScalarExpr::Param(v) => Ok(v.to_string()),
        ScalarExpr::Index(idx) => Ok(format!("index({})", index_expr(idx)?)),
        ScalarExpr::Unary(UnaryOp::Neg, a) => Ok(format!("(-{})", scalar_expr(a)?)),
        ScalarExpr::Unary(op, a) => Ok(format!("{op}({})", scalar_expr(a)?)),
        ScalarExpr::Binary(BinOp::Min, a, b) => {
            Ok(format!("min({}, {})", scalar_expr(a)?, scalar_expr(b)?))
        }
        ScalarExpr::Binary(BinOp::Max, a, b) => {
            Ok(format!("max({}, {})", scalar_expr(a)?, scalar_expr(b)?))
        }
        ScalarExpr::Binary(BinOp::Pow, a, b) => {
            Ok(format!("pow({}, {})", scalar_expr(a)?, scalar_expr(b)?))
        }
        ScalarExpr::Binary(op, a, b) => {
            Ok(format!("({} {op} {})", scalar_expr(a)?, scalar_expr(b)?))
        }
        ScalarExpr::Select { .. } => Err(IrError::Invalid(
            "select expressions have no source form".to_string(),
        )),
    }
}

/// Formats a non-negative finite `f64` as a literal the lexer reads back
/// bit-exactly. Rust's `Display` prints the shortest round-tripping decimal
/// and never uses exponent notation, so a dotless rendering only needs
/// `.0` appended to lex as a `Float` rather than an `Int`.
fn float(v: f64) -> Result<String> {
    if !v.is_finite() || (v == 0.0 && v.is_sign_negative()) {
        return Err(IrError::Invalid(format!(
            "scalar constant {v} has no source form"
        )));
    }
    if v < 0.0 {
        // The grammar's unary minus parses to `Neg(Const)` — a different
        // tree than `Const(-c)` — so negative values are expressed as an
        // exact subtraction instead.
        return Ok(format!("(0.0 - {})", float(-v)?));
    }
    let plain = format!("{v}");
    if plain.contains('.') {
        Ok(plain)
    } else {
        Ok(format!("{plain}.0"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{cst, var};
    use crate::nest::for_loop;
    use crate::parser::parse_program;
    use crate::prelude::*;

    fn sample() -> Program {
        let s0 = Computation::assign(
            "S0",
            ArrayRef::new("B", vec![var("i")]),
            load("A", vec![var("N") - cst(1) - var("i")]) * param("alpha") + fconst(1.5),
        );
        let s1 = Computation::reduction(
            "S1",
            ArrayRef::new("acc", vec![cst(0)]),
            BinOp::Add,
            load("B", vec![var("j")]) * load("B", vec![var("j")]),
        );
        Program::builder("roundtrip")
            .param("N", 7)
            .scalar("alpha", 0.5)
            .array("A", &["N"])
            .array("B", &["N"])
            .array_with_dims("acc", vec![cst(1)])
            .node(for_loop("i", cst(0), var("N"), vec![Node::Computation(s0)]))
            .node(for_loop("j", cst(1), var("N"), vec![Node::Computation(s1)]))
            .build()
            .unwrap()
    }

    #[test]
    fn emitted_source_reparses_to_the_same_program() {
        let p = sample();
        let text = to_source(&p).unwrap();
        let back = parse_program(&text).unwrap();
        assert_eq!(p, back, "round trip must be exact:\n{text}");
    }

    #[test]
    fn strided_and_pragma_loops_round_trip() {
        let body = vec![Node::Computation(Computation::assign(
            "S0",
            ArrayRef::new("A", vec![var("i")]),
            fconst(2.0),
        ))];
        let mut nest = match for_loop("i", cst(0), cst(9), body) {
            Node::Loop(l) => l,
            _ => unreachable!(),
        };
        nest.step = 3;
        nest.schedule.parallel = true;
        nest.schedule.vectorize = true;
        let p = Program::builder("strided")
            .array_with_dims("A", vec![cst(9)])
            .node(Node::Loop(nest))
            .build()
            .unwrap();
        let text = to_source(&p).unwrap();
        assert!(text.contains("step 3"));
        assert!(text.contains("#pragma parallel simd"));
        assert_eq!(p, parse_program(&text).unwrap());
    }

    #[test]
    fn floats_survive_bit_exactly() {
        for v in [0.0, 1.0, 0.1, 2.5, 1.0 / 3.0, -0.75, 6.02e23, 1e-300] {
            let p = Program::builder("floats")
                .array_with_dims("A", vec![cst(1)])
                .node(Node::Computation(Computation::assign(
                    "S0",
                    ArrayRef::new("A", vec![cst(0)]),
                    fconst(v),
                )))
                .build()
                .unwrap();
            let text = to_source(&p).unwrap();
            let back = parse_program(&text).unwrap();
            let value = match &back.computations()[0].value {
                ScalarExpr::Const(c) => *c,
                ScalarExpr::Binary(BinOp::Sub, a, b) => match (a.as_ref(), b.as_ref()) {
                    (ScalarExpr::Const(a), ScalarExpr::Const(b)) => a - b,
                    other => panic!("unexpected negative encoding {other:?}"),
                },
                other => panic!("unexpected constant encoding {other:?}"),
            };
            assert_eq!(value.to_bits(), v.to_bits(), "value {v} mangled:\n{text}");
        }
    }

    #[test]
    fn inexpressible_constructs_are_rejected_not_mangled() {
        // min() in an index expression.
        let p = Program::builder("bad")
            .param("N", 4)
            .array("A", &["N"])
            .node(Node::Computation(Computation::assign(
                "S0",
                ArrayRef::new("A", vec![Expr::Min(Box::new(cst(0)), Box::new(var("N")))]),
                fconst(1.0),
            )))
            .build_unchecked();
        assert!(matches!(to_source(&p), Err(IrError::Invalid(_))));
        // select in a scalar expression.
        let p = Program::builder("bad2")
            .param("N", 4)
            .array("A", &["N"])
            .node(Node::Computation(Computation::assign(
                "S0",
                ArrayRef::new("A", vec![cst(0)]),
                ScalarExpr::select(
                    fconst(1.0),
                    CmpOp::Lt,
                    fconst(2.0),
                    fconst(3.0),
                    fconst(4.0),
                ),
            )))
            .build_unchecked();
        assert!(matches!(to_source(&p), Err(IrError::Invalid(_))));
    }
}
